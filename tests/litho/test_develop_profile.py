"""Mack development model, exposure model, resist profile and CD measurement."""

import numpy as np
import pytest

from repro.config import DevelopConfig, ExposureConfig, GridConfig
from repro.litho import develop, exposure, profile
from repro.litho.mask import Contact

DEV = DevelopConfig()


class TestExposure:
    def test_range(self):
        image = np.linspace(0.0, 2.0, 10)
        acid = exposure.initial_photoacid(image, ExposureConfig())
        assert np.all((acid >= 0.0) & (acid < 1.0))

    def test_monotone(self):
        image = np.linspace(0.0, 1.0, 10)
        acid = exposure.initial_photoacid(image, ExposureConfig())
        assert np.all(np.diff(acid) > 0.0)

    def test_zero_intensity_zero_acid(self):
        assert exposure.initial_photoacid(np.zeros(3), ExposureConfig())[0] == 0.0

    def test_negative_intensity_raises(self):
        with pytest.raises(ValueError):
            exposure.initial_photoacid(np.array([-0.1]), ExposureConfig())


class TestMackModel:
    def test_limits(self):
        rate = develop.development_rate(np.array([0.0, 1.0]), DEV)
        assert np.isclose(rate[1], DEV.r_min_nm_s, atol=1e-9)
        assert rate[0] > 0.9 * DEV.r_max_nm_s

    def test_monotone_decreasing_in_inhibitor(self):
        inhibitor = np.linspace(0.0, 1.0, 50)
        rate = develop.development_rate(inhibitor, DEV)
        assert np.all(np.diff(rate) <= 1e-12)

    def test_threshold_switch(self):
        """Rate collapses by orders of magnitude across the Mack threshold."""
        rate = develop.development_rate(np.array([0.2, 0.8]), DEV)
        assert rate[0] / rate[1] > 1e3

    def test_out_of_range_inputs_clipped(self):
        rate = develop.development_rate(np.array([-0.5, 1.5]), DEV)
        assert np.all(np.isfinite(rate)) and np.all(rate > 0.0)

    def test_mack_a_value(self):
        n = DEV.reaction_order
        expected = (1.0 - DEV.threshold) ** n * (n + 1.0) / (n - 1.0)
        assert np.isclose(develop.mack_a(DEV), expected)


def synthetic_inhibitor(grid: GridConfig, contact: Contact, depth_taper: float = 0.0):
    """Inhibitor volume: ~0 inside the contact cylinder, 1 outside."""
    x = (np.arange(grid.nx) + 0.5) * grid.dx_nm
    y = (np.arange(grid.ny) + 0.5) * grid.dy_nm
    inside_x = np.abs(x - contact.center_x_nm) <= contact.width_nm / 2.0
    inside_y = np.abs(y - contact.center_y_nm) <= contact.height_nm / 2.0
    opening = np.outer(inside_y, inside_x)
    volume = np.ones(grid.shape)
    for k in range(grid.nz):
        level = min(0.05 + depth_taper * k, 0.95)
        volume[k] = np.where(opening, level, 1.0)
    return volume


class TestProfileAndCD:
    GRID = GridConfig(nx=40, ny=40, nz=4, size_um=0.8)  # 20 nm pixels

    def test_contact_opens_and_resist_remains(self):
        contact = Contact(400.0, 400.0, 120.0, 120.0)
        inhibitor = synthetic_inhibitor(self.GRID, contact)
        arrival = profile.development_arrival(inhibitor, self.GRID, DEV)
        kept = profile.resist_mask(arrival, DEV)
        center = (slice(None), self.GRID.ny // 2, self.GRID.nx // 2)
        assert not kept[center].any()       # contact fully develops
        assert kept[:, 2, 2].all()          # far corner stays

    def test_measured_cd_close_to_geometry(self):
        contact = Contact(400.0, 400.0, 120.0, 80.0)
        inhibitor = synthetic_inhibitor(self.GRID, contact)
        arrival = profile.development_arrival(inhibitor, self.GRID, DEV)
        cd_x = profile.measure_cd(arrival, contact, self.GRID, DEV, "x")
        cd_y = profile.measure_cd(arrival, contact, self.GRID, DEV, "y")
        assert abs(cd_x - 120.0) < 2.5 * self.GRID.dx_nm
        assert abs(cd_y - 80.0) < 2.5 * self.GRID.dy_nm
        assert cd_x > cd_y

    def test_unopened_contact_reports_zero(self):
        contact = Contact(400.0, 400.0, 120.0, 120.0)
        inhibitor = np.ones(self.GRID.shape)  # fully protected resist
        arrival = profile.development_arrival(inhibitor, self.GRID, DEV)
        assert profile.measure_cd(arrival, contact, self.GRID, DEV, "x") == 0.0

    def test_invalid_axis_raises(self):
        contact = Contact(400.0, 400.0, 120.0, 120.0)
        arrival = np.zeros(self.GRID.shape)
        with pytest.raises(ValueError):
            profile.measure_cd(arrival, contact, self.GRID, DEV, "diagonal")

    def test_contact_cds_batches(self):
        contacts = [Contact(250.0, 250.0, 120.0, 120.0), Contact(550.0, 550.0, 100.0, 140.0)]
        inhibitor = np.ones(self.GRID.shape)
        for contact in contacts:
            inhibitor = np.minimum(inhibitor, synthetic_inhibitor(self.GRID, contact))
        arrival = profile.development_arrival(inhibitor, self.GRID, DEV)
        cds = profile.contact_cds(arrival, contacts, self.GRID, DEV)
        assert cds["x"].shape == (2,) and cds["y"].shape == (2,)
        assert np.all(cds["x"] > 0.0)

    def test_solver_selection(self):
        contact = Contact(400.0, 400.0, 120.0, 120.0)
        inhibitor = synthetic_inhibitor(self.GRID, contact)
        fim = profile.development_arrival(inhibitor, self.GRID, DEV, solver="fim")
        fmm = profile.development_arrival(inhibitor, self.GRID, DEV, solver="fmm")
        finite = np.isfinite(fmm)
        assert np.allclose(fim[finite], fmm[finite], rtol=1e-6)
        with pytest.raises(ValueError):
            profile.development_arrival(inhibitor, self.GRID, DEV, solver="laser")


class TestCDErrorMetric:
    def test_rms(self):
        predicted = np.array([100.0, 102.0])
        reference = np.array([101.0, 100.0])
        assert np.isclose(profile.cd_error_rms(predicted, reference), np.sqrt((1 + 4) / 2))

    def test_zero_error(self):
        cds = np.array([50.0, 60.0])
        assert profile.cd_error_rms(cds, cds) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            profile.cd_error_rms(np.zeros(2), np.zeros(3))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            profile.cd_error_rms(np.zeros(0), np.zeros(0))
