"""Evaluation metrics (Section II-C of the paper).

RMSE (Eq. 12), NRMSE (Eq. 13) over inhibitor and development-rate
volumes, and the CD-error RMS (Eq. 14) which lives with the profile
code in :mod:`repro.litho.profile`.
"""

from __future__ import annotations

import numpy as np


def rmse(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Root mean squared error over all voxels (Eq. 12)."""
    predicted, reference = np.asarray(predicted), np.asarray(reference)
    if predicted.shape != reference.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {reference.shape}")
    return float(np.sqrt(np.mean((predicted - reference) ** 2)))


def nrmse(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Frobenius-normalized RMSE (Eq. 13), as a fraction (not %)."""
    predicted, reference = np.asarray(predicted), np.asarray(reference)
    if predicted.shape != reference.shape:
        raise ValueError(f"shape mismatch: {predicted.shape} vs {reference.shape}")
    denominator = float(np.linalg.norm(reference.reshape(-1)))
    if denominator == 0.0:
        raise ValueError("reference volume has zero norm")
    return float(np.linalg.norm((predicted - reference).reshape(-1)) / denominator)


def batch_mean(metric, predicted_batch, reference_batch) -> float:
    """Average a per-volume metric over a batch of volumes."""
    if len(predicted_batch) != len(reference_batch):
        raise ValueError("batch lengths differ")
    if len(predicted_batch) == 0:
        raise ValueError("empty batch")
    values = [metric(p, r) for p, r in zip(predicted_batch, reference_batch)]
    return float(np.mean(values))
