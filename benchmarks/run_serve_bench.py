#!/usr/bin/env python
"""Load-test harness for the ``repro.serve`` inference service.

Spins a :class:`~repro.serve.PredictServer` in-process on a loopback
ephemeral port over a tiny published checkpoint, then drives it with
concurrent ``http.client`` workers issuing npz ``POST /v1/predict``
requests.  Records per-request wall latency and derives:

* ``latency_p50_s`` / ``latency_p95_s`` / ``latency_p99_s`` — client-
  observed percentiles across all successful requests;
* ``throughput_rps`` — completed requests per second of driving time;
* ``mean_batch_size`` / ``cache_hit_rate`` — how well the micro-batcher
  coalesced and memoized under the offered load;
* ``rejected`` — 503 responses observed when the bounded queue pushed
  back (the overload probe drives a deliberately tiny queue to prove
  rejection instead of unbounded growth).

Results land in the ``serving`` section of ``BENCH_perf.json`` (merged
into an existing file so the other sections survive), and
``--check`` gates the latency percentiles against
``benchmarks/reference_perf.json`` exactly like ``run_benchmarks.py``.

Usage:
    PYTHONPATH=src python benchmarks/run_serve_bench.py [--smoke] [--check]
        [--clients N] [--requests-per-client M] [--out PATH]
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (REPO_ROOT / "src", REPO_ROOT / "benchmarks"):
    if str(entry) not in sys.path:
        sys.path.insert(0, str(entry))

import numpy as np

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.obs import (
    HealthConfig, disable_tracing, enable_tracing, metrics_snapshot,
    reset_metrics,
)
from repro.serve import (
    BatchPolicy, PredictServer, ServeConfig, ServedModel, load_checkpoint,
    save_checkpoint,
)

REFERENCE_PATH = REPO_ROOT / "benchmarks" / "reference_perf.json"
BENCH_GRID = GridConfig(size_um=1.0, nx=16, ny=16, nz=2)
BENCH_METHOD = "DeepCNN"


def _bench_server(tmp_dir: Path, policy: BatchPolicy,
                  health: HealthConfig | None = None,
                  engine: str | None = None,
                  method: str = BENCH_METHOD,
                  workers: int = 1,
                  serve_kwargs: dict | None = None) -> PredictServer:
    """A server over a freshly published tiny checkpoint (untrained weights —
    serving latency does not depend on what the parameters converged to)."""
    tmp_dir.mkdir(parents=True, exist_ok=True)
    nn.init.seed(0)
    model, _ = build_method(method, BENCH_GRID)
    model.set_output_stats(0.5, 1.0)
    save_checkpoint(model, tmp_dir / "bench.npz", method=method,
                    grid=BENCH_GRID, name="bench")
    loaded, manifest = load_checkpoint(tmp_dir / "bench.npz")
    served = ServedModel(loaded, manifest, policy, health=health, engine=engine,
                         workers=workers)
    # telemetry + flight default ON in ServeConfig; benchmarks measure the
    # bare serving path unless a leg opts back in through serve_kwargs
    # (bench_obs_overhead's sampler leg), so every section's baseline is
    # comparable across configurations
    config_kwargs = {"telemetry": False, "flight": False}
    config_kwargs.update(serve_kwargs or {})
    config = ServeConfig(port=0, policy=policy, **config_kwargs)
    return PredictServer(served, config).start()


def _npz_payload(acid: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, acid=acid)
    return buffer.getvalue()


class _Client(threading.Thread):
    """One closed-loop client: POSTs its payloads back-to-back."""

    def __init__(self, host: str, port: int, payloads: list[bytes]):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.payloads = payloads
        self.latencies_s: list[float] = []
        self.rejected = 0
        self.errors = 0

    def run(self) -> None:
        conn = HTTPConnection(self.host, self.port, timeout=120)
        headers = {"Content-Type": "application/octet-stream"}
        for payload in self.payloads:
            start = time.perf_counter()
            try:
                conn.request("POST", "/v1/predict", body=payload, headers=headers)
                response = conn.getresponse()
                response.read()
            except OSError:
                self.errors += 1
                conn.close()
                continue
            elapsed = time.perf_counter() - start
            if response.status == 200:
                self.latencies_s.append(elapsed)
            elif response.status == 503:
                self.rejected += 1
            else:
                self.errors += 1
        conn.close()


def _drive(server: PredictServer, num_clients: int, requests_per_client: int,
           repeat_fraction: float = 0.25, seed: int = 7) -> dict:
    """Run the client fleet; returns raw latencies + outcome counts."""
    host, port = server.address
    rng = np.random.default_rng(seed)
    # a shared pool of distinct clips plus deliberate repeats so the
    # response cache sees realistic re-query traffic
    distinct = max(4, int(num_clients * requests_per_client * (1.0 - repeat_fraction)))
    pool = [_npz_payload(rng.random(BENCH_GRID.shape)) for _ in range(min(distinct, 256))]
    clients = []
    for _ in range(num_clients):
        picks = rng.integers(0, len(pool), size=requests_per_client)
        clients.append(_Client(host, port, [pool[i] for i in picks]))
    start = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    wall_s = time.perf_counter() - start
    latencies = sorted(lat for client in clients for lat in client.latencies_s)
    return {
        "wall_s": wall_s,
        "latencies_s": latencies,
        "rejected": sum(c.rejected for c in clients),
        "errors": sum(c.errors for c in clients),
    }


def _percentile(latencies: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(latencies), q)) if latencies else 0.0


def bench_serving(smoke: bool, engine: str | None = None) -> dict:
    """The ``serving`` section of ``BENCH_perf.json``."""
    import tempfile

    num_clients = 8
    requests_per_client = 6 if smoke else 25
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=4.0, max_queue=64,
                         cache_entries=128)
    reset_metrics()
    with tempfile.TemporaryDirectory() as tmp:
        server = _bench_server(Path(tmp), policy, engine=engine)
        try:
            # warm-up: first forward pays one-time lazy-init costs
            _drive(server, 2, 2, repeat_fraction=0.0, seed=1)
            reset_metrics()
            run = _drive(server, num_clients, requests_per_client)
            snapshot = metrics_snapshot()
            stats = server.health()["queues"]
        finally:
            server.shutdown()

        # overload probe: a one-slot queue under a stalled-size burst must
        # reject with 503 rather than queue without bound
        overload_policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0,
                                      max_queue=1, cache_entries=0)
        overload_server = _bench_server(Path(tmp) / "overload", overload_policy)
        try:
            overload = _drive(overload_server, num_clients, 4, repeat_fraction=0.0,
                              seed=3)
        finally:
            overload_server.shutdown()

    latencies = run["latencies_s"]
    completed = len(latencies)
    batch_hist = snapshot.get("serve.batch_size", {})
    hits = snapshot.get("serve.cache.hits", {}).get("value", 0)
    misses = snapshot.get("serve.cache.misses", {}).get("value", 0)
    queue_stats = next(iter(stats.values()))
    return {
        "clients": num_clients,
        "requests_per_client": requests_per_client,
        "engine": engine or "tape",
        "grid": list(BENCH_GRID.shape),
        "completed": completed,
        "rejected": run["rejected"],
        "errors": run["errors"],
        "wall_clock_s": run["wall_s"],
        "throughput_rps": completed / run["wall_s"] if run["wall_s"] > 0 else 0.0,
        "latency_p50_s": _percentile(latencies, 50),
        "latency_p95_s": _percentile(latencies, 95),
        "latency_p99_s": _percentile(latencies, 99),
        "latency_mean_s": float(np.mean(latencies)) if latencies else 0.0,
        "mean_batch_size": batch_hist.get("mean", 0.0),
        "batches_run": queue_stats["batches_run"],
        "cache_hit_rate": hits / (hits + misses) if (hits + misses) else 0.0,
        "overload_rejected": overload["rejected"],
        "overload_completed": len(overload["latencies_s"]),
        "policy": {"max_batch_size": policy.max_batch_size,
                   "max_wait_ms": policy.max_wait_ms,
                   "max_queue": policy.max_queue},
        "worker_scaling": bench_worker_scaling(smoke),
    }


def bench_worker_scaling(smoke: bool) -> dict:
    """The ``serving.worker_scaling`` subsection: the same closed-loop
    fleet driven against process pools of 1/2/4/8 batcher workers.

    Distinct payloads with the response cache off force every request
    through a worker forward, so throughput measures the pool, not
    memoization.  ``speedup_2v1`` is throughput at 2 workers over
    throughput at 1; ``check_gates`` holds it above
    ``gates.serving_scaling_min_speedup_2v1`` — but only on multi-core
    runners (``cpu_count`` travels with the curve so single-core CI
    skips the gate instead of recording a meaningless ratio).
    """
    import os
    import tempfile

    counts = (1, 2, 4, 8)
    num_clients = 8
    requests_per_client = 4 if smoke else 12
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=2.0, max_queue=256,
                         cache_entries=0)
    curve: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for workers in counts:
            server = _bench_server(Path(tmp) / f"w{workers}", policy,
                                   workers=workers)
            try:
                # warm-up covers fork, shm attach and lazy model init
                _drive(server, 2, 2, repeat_fraction=0.0, seed=1)
                run = _drive(server, num_clients, requests_per_client,
                             repeat_fraction=0.0, seed=5)
                pool_stats = (server.health().get("pools") or {})
            finally:
                server.shutdown()
            latencies = run["latencies_s"]
            point = {
                "workers": workers,
                "completed": len(latencies),
                "errors": run["errors"],
                "throughput_rps": (len(latencies) / run["wall_s"]
                                   if run["wall_s"] > 0 else 0.0),
                "latency_p50_s": _percentile(latencies, 50),
                "latency_p95_s": _percentile(latencies, 95),
            }
            if pool_stats:
                entry = next(iter(pool_stats.values()))
                point["restarts"] = entry["restarts"]
                point["per_worker_batches"] = [w["batches_done"]
                                               for w in entry["per_worker"]]
            curve[f"w{workers}"] = point
    t1 = curve["w1"]["throughput_rps"]
    t2 = curve["w2"]["throughput_rps"]
    return {
        "cpu_count": os.cpu_count() or 1,
        "clients": num_clients,
        "requests_per_client": requests_per_client,
        "curve": curve,
        "speedup_2v1": t2 / t1 if t1 > 0 else 0.0,
    }


def bench_inference_plan(smoke: bool) -> dict:
    """The ``inference_plan`` section: served p50 with the compiled-plan
    engine vs the tape engine at a matched batch composition.

    One closed-loop client with ``max_batch_size=1`` pins every forward
    to the same batch shape — the only variable between the two runs is
    the engine.  The plan run's warm-up drive pays the one-time capture
    cost; the measured window is pure replay.  ``p50_speedup`` is gated
    (lower bound) through ``gates.inference_plan_min_speedup`` in
    ``reference_perf.json``.
    """
    import tempfile

    from repro.serve import clear_plan_cache, plan_cache_stats

    requests = 30 if smoke else 60
    method = "SDM-PEB"
    policy = BatchPolicy(max_batch_size=1, max_wait_ms=0.0, max_queue=64,
                         cache_entries=0)
    runs: dict[str, dict] = {}
    reset_metrics()
    clear_plan_cache()
    with tempfile.TemporaryDirectory() as tmp:
        for engine in ("tape", "plan"):
            server = _bench_server(Path(tmp) / engine, policy, engine=engine,
                                   method=method)
            try:
                # warm-up: lazy init; for the plan engine the first
                # request of the shape pays capture + validation here
                _drive(server, 1, 6, repeat_fraction=0.0, seed=2)
                runs[engine] = _drive(server, 1, requests,
                                      repeat_fraction=0.0, seed=21)
            finally:
                server.shutdown()
    plans = plan_cache_stats()
    clear_plan_cache()
    tape_p50 = _percentile(runs["tape"]["latencies_s"], 50)
    plan_p50 = _percentile(runs["plan"]["latencies_s"], 50)
    return {
        "method": method,
        "grid": list(BENCH_GRID.shape),
        "requests": requests,
        "completed_tape": len(runs["tape"]["latencies_s"]),
        "completed_plan": len(runs["plan"]["latencies_s"]),
        "tape_p50_s": tape_p50,
        "plan_p50_s": plan_p50,
        "tape_p95_s": _percentile(runs["tape"]["latencies_s"], 95),
        "plan_p95_s": _percentile(runs["plan"]["latencies_s"], 95),
        "p50_speedup": tape_p50 / plan_p50 if plan_p50 > 0 else 0.0,
        "plans_compiled": plans["plans"],
        "plan_capture_failures": plans["capture_failures"],
        "plan_fallbacks": plans["fallbacks"],
        "plan_replays": plans["replays"],
        "plan_arena_bytes": plans["arena_bytes"],
        "plan_capture_total_s": plans["capture_s_total"],
    }


def _obs_session(tmp_dir: Path, policy: BatchPolicy,
                 health: HealthConfig | None, trace_path: Path | None,
                 num_clients: int, requests_per_client: int,
                 serve_kwargs: dict | None = None) -> dict:
    """One warmed measurement session with the given observability setup."""
    if trace_path is not None:
        enable_tracing(trace_path)
    try:
        server = _bench_server(tmp_dir, policy, health=health,
                               serve_kwargs=serve_kwargs)
        try:
            _drive(server, 2, 2, repeat_fraction=0.0, seed=1)   # warm-up
            return _drive(server, num_clients, requests_per_client,
                          repeat_fraction=0.0, seed=11)
        finally:
            server.shutdown()
    finally:
        if trace_path is not None:
            disable_tracing()


def bench_obs_overhead(smoke: bool) -> dict:
    """The ``obs_overhead`` section: served-request latency under three
    observability configurations against the bare serving path:

    * ``baseline`` — telemetry, flight recorder, tracing and health
      monitors all off;
    * ``monitored`` — request tracing + physics health monitors on (the
      hot-path cost of span recording plus inline invariant checks);
    * ``telemetry`` — the production default: background telemetry
      sampler (sub-second interval so it actually fires during the
      measured window) + flight recorder rings on every request.

    The cache is disabled so the monitor sees every request, and shadow
    audits stay off (they run off-thread by design).  The sampler leg is
    gated: ``sampler_overhead_p50_pct`` must stay under
    ``gates.obs_overhead_max_p50_pct`` — the telemetry tentpole promises
    observation-only monitoring, so its served-p50 cost is a quality bar,
    not just a recorded number.
    """
    import tempfile

    num_clients = 4
    requests_per_client = 6 if smoke else 25
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=4.0, max_queue=64,
                         cache_entries=0)
    reset_metrics()
    with tempfile.TemporaryDirectory() as tmp:
        baseline = _obs_session(Path(tmp) / "off", policy, None, None,
                                num_clients, requests_per_client)
        trace_path = Path(tmp) / "trace.jsonl"
        monitored = _obs_session(Path(tmp) / "on", policy, HealthConfig(),
                                 trace_path, num_clients, requests_per_client)
        trace_events = sum(1 for line in trace_path.read_text().splitlines()
                           if line.strip())
        telemetry = _obs_session(
            Path(tmp) / "sampler", policy, None, None,
            num_clients, requests_per_client,
            serve_kwargs={"telemetry": True, "flight": True,
                          "telemetry_interval_s": 0.2,
                          "flight_dump_dir": str(Path(tmp) / "flight")})
    reset_metrics()
    p50_off = _percentile(baseline["latencies_s"], 50)
    p95_off = _percentile(baseline["latencies_s"], 95)
    p95_on = _percentile(monitored["latencies_s"], 95)
    p50_telemetry = _percentile(telemetry["latencies_s"], 50)
    return {
        "clients": num_clients,
        "requests_per_client": requests_per_client,
        "grid": list(BENCH_GRID.shape),
        "completed_baseline": len(baseline["latencies_s"]),
        "completed_monitored": len(monitored["latencies_s"]),
        "completed_telemetry": len(telemetry["latencies_s"]),
        "baseline_p50_s": p50_off,
        "monitored_p50_s": _percentile(monitored["latencies_s"], 50),
        "baseline_p95_s": p95_off,
        "monitored_p95_s": p95_on,
        "telemetry_p50_s": p50_telemetry,
        "telemetry_p95_s": _percentile(telemetry["latencies_s"], 95),
        "overhead_p95_pct": (100.0 * (p95_on - p95_off) / p95_off
                             if p95_off > 0 else 0.0),
        "sampler_overhead_p50_pct": (100.0 * (p50_telemetry - p50_off) / p50_off
                                     if p50_off > 0 else 0.0),
        "trace_events": trace_events,
    }


def bench_sanitize_overhead(smoke: bool) -> dict:
    """The ``sanitize_overhead`` section: served-request latency with the
    runtime lock sanitizer instrumenting every serve/obs lock vs off.

    The sanitizer is scoped around server construction so the batcher,
    registry, response-cache and health locks are all the instrumented
    wrappers — the exact configuration ``REPRO_SANITIZE=1`` produces.
    The run double-checks that the serve path is violation-free while
    measuring what the instrumentation costs on the request path.
    """
    import tempfile

    from repro.runtime.sync import (
        reset_sync_state, sanitize_locks, sync_violations,
    )

    num_clients = 4
    requests_per_client = 6 if smoke else 25
    policy = BatchPolicy(max_batch_size=8, max_wait_ms=4.0, max_queue=64,
                         cache_entries=0)
    reset_metrics()
    with tempfile.TemporaryDirectory() as tmp:
        baseline = _obs_session(Path(tmp) / "off", policy, None, None,
                                num_clients, requests_per_client)
        reset_sync_state()
        with sanitize_locks(enabled=True, raise_on_violation=False):
            sanitized = _obs_session(Path(tmp) / "on", policy, None, None,
                                     num_clients, requests_per_client)
        violations = [v.kind for v in sync_violations()]
        snapshot = metrics_snapshot()
        acquisitions = int(sum(m.get("value", 0) for name, m in snapshot.items()
                               if name.startswith("sync.acquire.")))
        contended = int(sum(m.get("value", 0) for name, m in snapshot.items()
                            if name.startswith("sync.contention.")))
        reset_sync_state()
    reset_metrics()
    p50_off = _percentile(baseline["latencies_s"], 50)
    p50_on = _percentile(sanitized["latencies_s"], 50)
    p95_off = _percentile(baseline["latencies_s"], 95)
    p95_on = _percentile(sanitized["latencies_s"], 95)
    return {
        "clients": num_clients,
        "requests_per_client": requests_per_client,
        "grid": list(BENCH_GRID.shape),
        "completed_baseline": len(baseline["latencies_s"]),
        "completed_sanitized": len(sanitized["latencies_s"]),
        "baseline_p50_s": p50_off,
        "sanitized_p50_s": p50_on,
        "baseline_p95_s": p95_off,
        "sanitized_p95_s": p95_on,
        "overhead_p50_pct": (100.0 * (p50_on - p50_off) / p50_off
                             if p50_off > 0 else 0.0),
        "overhead_p95_pct": (100.0 * (p95_on - p95_off) / p95_off
                             if p95_off > 0 else 0.0),
        "lock_acquisitions": acquisitions,
        "contended_acquisitions": contended,
        "violations": len(violations),
    }


def merge_into_bench_json(section: dict, out_path: Path,
                          name: str = "serving") -> dict:
    """Insert/replace one section, preserving the others."""
    if out_path.exists():
        payload = json.loads(out_path.read_text())
    else:
        payload = {"meta": {}, "sections": {}, "timings": {}}
    payload.setdefault("sections", {})[name] = section
    timings = payload.setdefault("timings", {})
    keys = {"serving": ("latency_p50_s", "latency_p95_s", "latency_p99_s"),
            "obs_overhead": ("baseline_p95_s", "monitored_p95_s",
                             "telemetry_p50_s"),
            "sanitize_overhead": ("baseline_p50_s", "sanitized_p50_s"),
            "inference_plan": ("tape_p50_s", "plan_p50_s")}[name]
    for key in keys:
        timings[f"{name}.{key}"] = section[key]
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer requests per client)")
    parser.add_argument("--check", action="store_true",
                        help="gate serving latencies against reference_perf.json")
    parser.add_argument("--clients", type=int, default=None,
                        help="override concurrent client count (default 8)")
    parser.add_argument("--requests-per-client", type=int, default=None)
    parser.add_argument("--engine", choices=("tape", "plan"), default=None,
                        help="forward-pass engine for the serving section "
                             "(default: tape; the inference_plan section "
                             "always measures both)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_perf.json"))
    args = parser.parse_args(argv)

    section = bench_serving(args.smoke, engine=args.engine) \
        if args.clients is None else _custom(args)
    for key, value in section.items():
        print(f"    {key}: {value}")
    payload = merge_into_bench_json(section, Path(args.out))
    print(f"wrote serving section to {args.out}")

    if args.clients is None:
        overhead = bench_obs_overhead(args.smoke)
        for key, value in overhead.items():
            print(f"    {key}: {value}")
        payload = merge_into_bench_json(overhead, Path(args.out),
                                        name="obs_overhead")
        print(f"wrote obs_overhead section to {args.out}")

        sanitize = bench_sanitize_overhead(args.smoke)
        for key, value in sanitize.items():
            print(f"    {key}: {value}")
        payload = merge_into_bench_json(sanitize, Path(args.out),
                                        name="sanitize_overhead")
        print(f"wrote sanitize_overhead section to {args.out}")

        plan_section = bench_inference_plan(args.smoke)
        for key, value in plan_section.items():
            print(f"    {key}: {value}")
        payload = merge_into_bench_json(plan_section, Path(args.out),
                                        name="inference_plan")
        print(f"wrote inference_plan section to {args.out}")

    if args.check:
        from run_benchmarks import check_gates, check_regressions

        print("checking serving timings against reference:")
        failures = check_regressions(payload["timings"], REFERENCE_PATH)
        gated = [f for f in failures
                 if f.startswith(("serving.", "obs_overhead.",
                                  "sanitize_overhead.", "inference_plan."))]
        gated += check_gates(payload.get("sections", {}), REFERENCE_PATH)
        if gated:
            print(f"SERVING PERF REGRESSION: {', '.join(gated)}")
            return 1
        print("no serving regressions")
    return 0


def _custom(args) -> dict:
    """bench_serving with CLI-overridden fleet shape."""
    import tempfile

    policy = BatchPolicy(max_batch_size=8, max_wait_ms=4.0, max_queue=64)
    reset_metrics()
    with tempfile.TemporaryDirectory() as tmp:
        server = _bench_server(Path(tmp), policy)
        try:
            run = _drive(server, args.clients,
                         args.requests_per_client or (6 if args.smoke else 25))
        finally:
            server.shutdown()
    latencies = run["latencies_s"]
    return {
        "clients": args.clients,
        "requests_per_client": args.requests_per_client,
        "completed": len(latencies),
        "rejected": run["rejected"],
        "errors": run["errors"],
        "wall_clock_s": run["wall_s"],
        "throughput_rps": len(latencies) / run["wall_s"] if run["wall_s"] else 0.0,
        "latency_p50_s": _percentile(latencies, 50),
        "latency_p95_s": _percentile(latencies, 95),
        "latency_p99_s": _percentile(latencies, 99),
    }


if __name__ == "__main__":
    raise SystemExit(main())
