"""Dense layers."""

from __future__ import annotations


from repro import tensor as T
from repro.tensor import functional as F
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W^T + b`` applied to the last dimension."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), fan_in=in_features, gain=1.0))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x):
        out = T.matmul(x, T.transpose(self.weight))
        if self.bias is not None:
            out = out + self.bias
        return out


class MLP(Module):
    """Two-layer feed-forward block with GELU, used as the encoder FFN."""

    def __init__(self, dim: int, hidden_dim: int, out_dim: int | None = None):
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim)
        self.fc2 = Linear(hidden_dim, out_dim if out_dim is not None else dim)

    def forward(self, x):
        return self.fc2(F.gelu(self.fc1(x)))
