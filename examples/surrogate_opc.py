"""Surrogate-in-the-loop OPC: the paper's acceleration story, end to end.

Optical proximity correction needs many PEB simulations per mask — the
exact workload the SDM-PEB surrogate is built to accelerate.  This
example:

1. trains an SDM-PEB surrogate on rigorous data,
2. runs rule-based mask-bias OPC twice — once with the rigorous solver
   in the loop, once with the surrogate —
3. compares the corrected masks, the residual CD errors, and the
   wall-clock time of the two loops.

    python examples/surrogate_opc.py
"""

import time

import numpy as np

from repro import nn
from repro.config import GridConfig, LithoConfig
from repro.experiments import ExperimentSettings, build_method, prepare_data, train_method
from repro.litho import (
    RigorousPEBBackend, SurrogatePEBBackend, calibrate_mask_bias, generate_clip,
)

config = LithoConfig(grid=GridConfig(size_um=1.0, nx=32, ny=32, nz=4))
settings = ExperimentSettings(num_clips=10, epochs=15, lr_step_size=6,
                              config=config, cache_dir=".repro_cache")

print("1) training the SDM-PEB surrogate on rigorous data...")
train_set, _ = prepare_data(settings)
nn.init.seed(0)
model, loss_config = build_method("SDM-PEB", config.grid)
trainer = train_method(model, loss_config, train_set, settings)
print(f"   trained ({model.num_parameters()} parameters)")

clip = generate_clip(seed=777, grid=config.grid)  # unseen mask
print(f"\n2) OPC on an unseen clip with {len(clip.contacts)} contacts")

start = time.perf_counter()
rigorous_result = calibrate_mask_bias(
    clip, config, RigorousPEBBackend(config, time_step_s=0.5), iterations=3)
rigorous_time = time.perf_counter() - start
print(f"   rigorous-in-the-loop : CD RMS {rigorous_result.initial_rms_nm:.1f} -> "
      f"{rigorous_result.final_rms_nm:.1f} nm in {rigorous_time:.1f}s")

start = time.perf_counter()
surrogate_result = calibrate_mask_bias(
    clip, config, SurrogatePEBBackend(model), iterations=3)
surrogate_time = time.perf_counter() - start
print(f"   surrogate-in-the-loop: CD RMS {surrogate_result.initial_rms_nm:.1f} -> "
      f"{surrogate_result.final_rms_nm:.1f} nm in {surrogate_time:.1f}s")

bias_gap = np.abs(surrogate_result.biases_nm - rigorous_result.biases_nm)
print(f"\n3) agreement: mean |bias difference| {bias_gap.mean():.1f} nm, "
      f"worst {bias_gap.max():.1f} nm")
print(f"   loop speedup from the surrogate: {rigorous_time / surrogate_time:.1f}x")
print("   (the surrogate's value compounds: production OPC runs thousands "
      "of such loops)")
