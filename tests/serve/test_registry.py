"""Registry: manifest round-trips, integrity verification, versioning."""

import json

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.serve import (
    IntegrityError, ModelManifest, ModelRegistry, RegistryError,
    import_legacy_sidecar, load_checkpoint, manifest_path_for, read_manifest,
    save_checkpoint, verify_checkpoint,
)
from repro.tensor import Tensor, no_grad

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)


def tiny_model(seed: int = 0):
    nn.init.seed(seed)
    model, _ = build_method("DeepCNN", GRID)
    model.set_output_stats(0.25, 2.0)
    return model


def forward(model, x: np.ndarray) -> np.ndarray:
    with no_grad():
        return model(Tensor(x[None])).numpy()


class TestStandaloneCheckpoint:
    def test_manifest_written_and_parsable(self, tmp_path):
        manifest = save_checkpoint(tiny_model(), tmp_path / "m.npz",
                                   method="DeepCNN", grid=GRID)
        sidecar = manifest_path_for(tmp_path / "m.npz")
        assert sidecar.exists()
        reread = ModelManifest.from_json(sidecar.read_text())
        assert reread == manifest
        assert reread.model_class == "DeepCNN"
        assert reread.dtype == "float64"
        assert reread.content_hash.startswith("sha256:")
        assert reread.param_count == tiny_model().num_parameters()
        assert reread.grid_config() == GRID

    def test_load_round_trip_bitwise(self, tmp_path):
        model = tiny_model(3)
        save_checkpoint(model, tmp_path / "m.npz", method="DeepCNN", grid=GRID)
        loaded, manifest = load_checkpoint(tmp_path / "m.npz")
        assert manifest.output_mean == model.output_mean
        assert manifest.output_std == model.output_std
        x = np.random.default_rng(0).random(GRID.shape)
        assert np.array_equal(forward(model, x), forward(loaded, x))

    def test_extensionless_path_round_trips(self, tmp_path):
        save_checkpoint(tiny_model(), tmp_path / "bare", method="DeepCNN", grid=GRID)
        assert (tmp_path / "bare.npz").exists()
        loaded, _ = load_checkpoint(tmp_path / "bare")
        assert loaded.num_parameters() == tiny_model().num_parameters()

    def test_hash_tamper_detected(self, tmp_path):
        save_checkpoint(tiny_model(), tmp_path / "m.npz", method="DeepCNN", grid=GRID)
        weights = tmp_path / "m.npz"
        tampered = bytearray(weights.read_bytes())
        tampered[-1] ^= 0xFF
        weights.write_bytes(bytes(tampered))
        with pytest.raises(IntegrityError, match="integrity"):
            load_checkpoint(weights)
        with pytest.raises(IntegrityError):
            verify_checkpoint(weights)

    def test_tampered_manifest_hash_detected(self, tmp_path):
        manifest = save_checkpoint(tiny_model(), tmp_path / "m.npz",
                                   method="DeepCNN", grid=GRID)
        sidecar = manifest_path_for(tmp_path / "m.npz")
        payload = json.loads(sidecar.read_text())
        payload["content_hash"] = "sha256:" + "0" * 64
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(IntegrityError):
            load_checkpoint(tmp_path / "m.npz")
        assert manifest.content_hash != payload["content_hash"]

    def test_verify_skippable(self, tmp_path):
        save_checkpoint(tiny_model(), tmp_path / "m.npz", method="DeepCNN", grid=GRID)
        sidecar = manifest_path_for(tmp_path / "m.npz")
        payload = json.loads(sidecar.read_text())
        payload["content_hash"] = "sha256:" + "f" * 64
        sidecar.write_text(json.dumps(payload))
        loaded, _ = load_checkpoint(tmp_path / "m.npz", verify=False)
        assert loaded is not None

    def test_missing_manifest_is_clear(self, tmp_path):
        tiny_model().save(tmp_path / "m.npz")
        with pytest.raises(RegistryError, match="no manifest"):
            read_manifest(tmp_path / "m.npz")

    def test_newer_schema_rejected(self, tmp_path):
        save_checkpoint(tiny_model(), tmp_path / "m.npz", method="DeepCNN", grid=GRID)
        sidecar = manifest_path_for(tmp_path / "m.npz")
        payload = json.loads(sidecar.read_text())
        payload["schema_version"] = 99
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(RegistryError, match="schema"):
            read_manifest(tmp_path / "m.npz")


class TestRegistry:
    def test_publish_and_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        first = registry.publish(tiny_model(1), "DeepCNN", GRID, "peb")
        second = registry.publish(tiny_model(2), "DeepCNN", GRID, "peb")
        assert (first.version, second.version) == (1, 2)
        assert registry.versions("peb") == [1, 2]
        assert registry.latest("peb") == 2
        assert registry.names() == ["peb"]

    def test_latest_resolution_loads_newest(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(tiny_model(1), "DeepCNN", GRID, "peb")
        newest = tiny_model(2)
        registry.publish(newest, "DeepCNN", GRID, "peb")
        loaded, manifest = registry.load("peb")
        assert manifest.version == 2
        x = np.random.default_rng(1).random(GRID.shape)
        assert np.array_equal(forward(loaded, x), forward(newest, x))

    def test_versions_immutable(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(tiny_model(), "DeepCNN", GRID, "peb", version=3)
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish(tiny_model(), "DeepCNN", GRID, "peb", version=3)

    def test_unknown_name_is_clear(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="no model named"):
            registry.load("nope")

    def test_models_listing_marks_latest(self, tmp_path):
        registry = ModelRegistry(tmp_path / "reg")
        registry.publish(tiny_model(1), "DeepCNN", GRID, "peb")
        registry.publish(tiny_model(2), "DeepCNN", GRID, "peb")
        listing = registry.models()
        assert [(m["version"], m["latest"]) for m in listing] == [(1, False), (2, True)]


class TestLegacyImport:
    def test_sidecar_synthesized(self, tmp_path):
        model = tiny_model()
        weights = model.save(tmp_path / "legacy.npz")
        weights.with_suffix(".json").write_text(json.dumps(
            {"method": "DeepCNN", "output_mean": 0.25, "output_std": 2.0,
             "epochs": 5}))
        manifest = import_legacy_sidecar(weights, GRID)
        assert manifest.model_class == "DeepCNN"
        assert manifest.extra["epochs"] == 5
        loaded, _ = load_checkpoint(weights)
        x = np.random.default_rng(2).random(GRID.shape)
        assert np.array_equal(forward(loaded, x), forward(model, x))
