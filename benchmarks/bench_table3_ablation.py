"""Table III bench: SDM-PEB component ablations.

Trains every Table III variant once per session (shared fixture),
benchmarks their forward passes, and prints the regenerated ablation
table.  Also covers the Fig. 3 overlapped-vs-non-overlapped merging
design choice called out in DESIGN.md.
"""

import numpy as np
import pytest

from repro.experiments import table3
from repro.experiments.table3 import ABLATIONS
from repro.tensor import Tensor, no_grad


@pytest.mark.parametrize("name", ABLATIONS)
def test_bench_variant_inference(benchmark, name, trained_ablations, data):
    trainer, _ = trained_ablations[name]
    _, test_set = data
    x = Tensor(test_set.inputs()[:1])
    trainer.model.eval()

    def forward():
        with no_grad():
            return trainer.model(x)

    out = benchmark(forward)
    assert np.all(np.isfinite(out.numpy()))


def test_regenerated_ablation_table(trained_ablations):
    results = [trained_ablations[name][1] for name in ABLATIONS]
    print("\n" + table3.format_table(results))
    for result in results:
        assert np.isfinite(result.inhibitor_nrmse)


def test_two_direction_scan_is_cheaper(trained_ablations):
    """The 2-D scan variant drops one of three scan directions, so it
    must have fewer parameters than the full model."""
    full = trained_ablations["SDM-PEB"][1]
    two_d = trained_ablations["2-D Scan"][1]
    assert two_d.num_parameters < full.num_parameters


def test_single_stage_is_smallest(trained_ablations):
    full = trained_ablations["SDM-PEB"][1]
    single = trained_ablations["Single Layer Encoder"][1]
    assert single.num_parameters < full.num_parameters
