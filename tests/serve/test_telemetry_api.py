"""Telemetry over HTTP: /v1/telemetry, /dashboard, /healthz alerts and
process blocks, and the flight recorder's request ring — end to end."""

import json
from http.client import HTTPConnection

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.obs import current_recorder
from repro.serve import (
    BatchPolicy, ModelRegistry, PredictServer, ServeConfig, ServedModel,
)

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)


def make_served(registry):
    nn.init.seed(0)
    model, _ = build_method("DeepCNN", GRID)
    model.set_output_stats(0.5, 1.0)
    registry.publish(model, "DeepCNN", GRID, "peb")
    loaded, manifest = registry.load("peb")
    return ServedModel(loaded, manifest, BatchPolicy(max_wait_ms=2.0))


@pytest.fixture(scope="module")
def registry(tmp_path_factory):
    return ModelRegistry(tmp_path_factory.mktemp("registry"))


@pytest.fixture(scope="module")
def server(registry, tmp_path_factory):
    config = ServeConfig(port=0, telemetry_interval_s=3600.0,
                         flight_dump_dir=str(tmp_path_factory.mktemp("fl")))
    instance = PredictServer(make_served(registry), config).start()
    yield instance
    instance.shutdown()


def get(server, path, parse=True):
    host, port = server.address
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read()
        return response.status, (json.loads(body) if parse else body)
    finally:
        connection.close()


def predict(server):
    host, port = server.address
    acid = np.random.default_rng(0).random(GRID.shape)
    connection = HTTPConnection(host, port, timeout=30)
    try:
        connection.request("POST", "/v1/predict",
                           body=json.dumps({"acid": acid.tolist()}),
                           headers={"Content-Type": "application/json"})
        assert connection.getresponse().status == 200
    finally:
        connection.close()


class TestTelemetryRoute:
    def test_payload_shape_after_sampling(self, server):
        predict(server)
        server.sampler.sample_once()     # interval is huge: tick by hand
        predict(server)
        server.sampler.sample_once()
        status, payload = get(server, "/v1/telemetry")
        assert status == 200
        assert payload["enabled"]
        assert payload["samples"] >= 2
        assert payload["interval_s"] == 3600.0
        series = payload["series"]
        assert series["serve.http.predict"]["kind"] == "counter"
        assert sum(series["serve.http.predict"]["rate_per_s"]) > 0
        latency = series["serve.request_latency_s"]
        assert set(latency["quantiles"]) == {"p50", "p99"}
        assert payload["alerts"]["state"] in ("ok", "pending", "firing")

    def test_prefix_filter(self, server):
        server.sampler.sample_once()
        _, payload = get(server, "/v1/telemetry?prefix=process.")
        assert payload["series"]
        assert all(name.startswith("process.")
                   for name in payload["series"])

    def test_window_arg_validated(self, server):
        status, payload = get(server, "/v1/telemetry?window_s=bogus")
        assert status == 400
        assert "window_s" in payload["error"]

    def test_process_gauges_sampled(self, server):
        server.sampler.sample_once()
        _, payload = get(server, "/v1/telemetry?prefix=process.rss_bytes")
        values = payload["series"]["process.rss_bytes"]["values"]
        assert values[-1] > 0


class TestDashboard:
    def test_selfcontained_html(self, server):
        predict(server)
        server.sampler.sample_once()
        server.sampler.sample_once()
        status, body = get(server, "/dashboard", parse=False)
        assert status == 200
        html = body.decode("utf-8")
        assert html.lstrip().lower().startswith("<!doctype html")
        assert "<svg" in html                 # inline sparklines
        assert "availability" in html         # the SLO table
        assert "serve.http.predict" in html
        # self-contained: no external scripts, stylesheets or images
        for needle in ("src=\"http", "href=\"http", "<script src"):
            assert needle not in html


class TestHealthz:
    def test_alerts_and_process_blocks(self, server):
        server.sampler.sample_once()
        status, health = get(server, "/healthz")
        assert status == 200
        alerts = health["alerts"]
        assert alerts["state"] in ("ok", "pending", "firing")
        assert {s["name"] for s in alerts["slos"]} == {
            "availability", "served_latency", "shadow_cd_error",
            "job_success"}
        process = health["process"]
        assert process["rss_bytes"] > 0
        assert process["open_fds"] > 0
        assert process["uptime_s"] >= 0
        assert "shm_segments" in process
        assert health["telemetry"]["samples"] >= 1
        assert health["flight"]["installed"]

    def test_slo_gauges_reach_metrics(self, server):
        get(server, "/healthz")          # evaluation publishes the gauges
        _, body = get(server, "/metrics", parse=False)
        text = body.decode()
        assert "# TYPE repro_slo_availability_state gauge" in text
        assert "repro_slo_availability_burn_fast" in text

    def test_process_gauges_reach_metrics(self, server):
        _, body = get(server, "/metrics", parse=False)
        text = body.decode()
        assert "# TYPE repro_process_rss_bytes gauge" in text
        assert "# TYPE repro_process_open_fds gauge" in text
        assert "# TYPE repro_process_uptime_s gauge" in text
        assert "# TYPE repro_process_shm_segments gauge" in text


class TestFlightIntegration:
    def test_requests_land_in_flight_ring(self, server):
        predict(server)
        get(server, "/healthz")
        paths = [r["path"] for r in server.flight._requests]
        assert "/v1/predict" in paths
        assert "/healthz" in paths
        latest = list(server.flight._requests)[-1]
        assert set(latest) >= {"t_wall_s", "method", "path", "status",
                               "dur_ms"}

    def test_server_recorder_is_process_recorder(self, server):
        assert current_recorder() is server.flight

    def test_spans_tapped_without_tracing(self, server):
        predict(server)
        names = {s["name"] for s in server.flight._spans}
        assert "serve.request" in names


class TestDisabled:
    def test_telemetry_off_still_serves(self, registry, tmp_path):
        config = ServeConfig(port=0, telemetry=False, flight=False,
                             flight_dump_dir=str(tmp_path))
        instance = PredictServer(make_served(registry), config).start()
        try:
            predict(instance)
            status, payload = get(instance, "/v1/telemetry")
            assert status == 200
            assert payload == {"enabled": False, "series": {}}
            status, body = get(instance, "/dashboard", parse=False)
            assert status == 200
            assert b"telemetry disabled" in body
            _, health = get(instance, "/healthz")
            assert health["alerts"]["state"] == "disabled"
            assert "telemetry" not in health
            assert instance.flight is None
        finally:
            instance.shutdown()
