"""REP006 fixture: a config float field with no unit anywhere (line 16).

Linted under the virtual path ``src/repro/litho/fixture_config.py``.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class FixtureConfig:
    """Config with one well-annotated field and one naked one."""

    width_nm: float = 12.0
    #: dimensionless blending factor
    eta: float = 0.5
    mystery: float = 2.0
    count: int = 3
