"""Spatial-Depthwise Mamba-based attention unit (Section III-C, Fig. 5).

The SDM unit reshapes an encoder feature map into a sequence, projects
it into a gated pair (x, z), and runs three parallel selective scans:

* **spatial scan** — along the depth axis at each spatial position;
* **depth-forward scan** — raster order, shallow layers first;
* **depth-backward scan** — the reverse raster order.

Each direction has its own depthwise Conv1d + SiLU pre-processing and
its own selective SSM.  The direction outputs are summed, gated by
SiLU(z), projected back to the feature dimension and refined with a
kernel-3 depthwise Conv3d.
"""

from __future__ import annotations

from repro import tensor as T
from repro.tensor import functional as F
from repro.nn.conv import Conv1d, DepthwiseConv3d
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList
from repro.nn.norm import LayerNorm
from repro.ssm.mamba import SelectiveSSM
from repro.ssm.s4d import LTISSM

THREE_DIRECTIONS = ("spatial", "depth_forward", "depth_backward")
#: Table III's "2-D Scan" ablation (bidirectional scan adapted from [24])
TWO_DIRECTIONS = ("depth_forward", "depth_backward")


def _to_direction(seq, direction: str, dims: tuple[int, int, int]):
    """Reorder a canonical (B, D*H*W, C) sequence for one scan direction.

    Returns the reordered sequence, shaped (B', L', C) where the spatial
    scan folds spatial positions into the batch.
    """
    depth, height, width = dims
    if direction == "depth_forward":
        return seq
    if direction == "depth_backward":
        return seq.flip(1)
    if direction == "spatial":
        batch, _, channels = seq.shape
        volume = T.reshape(seq, (batch, depth, height, width, channels))
        spatial_major = T.transpose(volume, (0, 2, 3, 1, 4))
        return T.reshape(spatial_major, (batch * height * width, depth, channels))
    raise ValueError(f"unknown scan direction {direction!r}")


def _from_direction(seq, direction: str, dims: tuple[int, int, int], batch: int):
    """Invert :func:`_to_direction` back to canonical order."""
    depth, height, width = dims
    if direction == "depth_forward":
        return seq
    if direction == "depth_backward":
        return seq.flip(1)
    if direction == "spatial":
        channels = seq.shape[-1]
        volume = T.reshape(seq, (batch, height, width, depth, channels))
        depth_major = T.transpose(volume, (0, 3, 1, 2, 4))
        return T.reshape(depth_major, (batch, depth * height * width, channels))
    raise ValueError(f"unknown scan direction {direction!r}")


class SDMUnit(Module):
    """The spatial-depthwise Mamba attention unit.

    Parameters
    ----------
    channels:
        Feature dimension C of the incoming (B, C, D, H, W) map.
    hidden_channels:
        Inner gated dimension Ch (defaults to ``channels``).
    state_dim:
        SSM state size N per channel.
    directions:
        Scan directions; ``TWO_DIRECTIONS`` gives the 2-D scan ablation.
    conv_kernel:
        Depthwise Conv1d kernel applied before each scan.
    """

    def __init__(self, channels: int, hidden_channels: int | None = None,
                 state_dim: int = 8, directions=THREE_DIRECTIONS,
                 conv_kernel: int = 3, scan_mode: str = "chunked",
                 discretization: str = "zoh", ssm_type: str = "selective"):
        super().__init__()
        if ssm_type not in ("selective", "lti"):
            raise ValueError(f"unknown ssm_type {ssm_type!r}")
        if not directions:
            raise ValueError("at least one scan direction is required")
        for direction in directions:
            if direction not in THREE_DIRECTIONS:
                raise ValueError(f"unknown scan direction {direction!r}")
        hidden = hidden_channels if hidden_channels is not None else channels
        self.channels = channels
        self.hidden = hidden
        self.directions = tuple(directions)
        self.norm = LayerNorm(channels)
        self.in_proj = Linear(channels, 2 * hidden)
        self.convs = ModuleList([
            Conv1d(hidden, hidden, conv_kernel, padding=(conv_kernel - 1) // 2, groups=hidden)
            for _ in directions
        ])
        if ssm_type == "selective":
            self.ssms = ModuleList([
                SelectiveSSM(hidden, state_dim=state_dim, discretization=discretization,
                             scan_mode=scan_mode)
                for _ in directions
            ])
        else:
            self.ssms = ModuleList([
                LTISSM(hidden, state_dim=state_dim, scan_mode=scan_mode)
                for _ in directions
            ])
        self.ssm_type = ssm_type
        self.out_proj = Linear(hidden, channels)
        self.refine = DepthwiseConv3d(channels, kernel_size=3, padding=1)

    def forward(self, x):
        """(B, C, D, H, W) -> (B, C, D, H, W); add residually outside."""
        batch, channels, depth, height, width = x.shape
        dims = (depth, height, width)
        tokens = T.reshape(T.moveaxis(x, 1, 4), (batch, depth * height * width, channels))
        tokens = self.norm(tokens)
        projected = self.in_proj(tokens)
        gate_in = projected[:, :, self.hidden:]
        scan_in = projected[:, :, :self.hidden]
        combined = None
        for direction, conv, ssm in zip(self.directions, self.convs, self.ssms):
            ordered = _to_direction(scan_in, direction, dims)
            convolved = conv(ordered.swapaxes(1, 2)).swapaxes(1, 2)
            scanned = ssm(F.silu(convolved))
            restored = _from_direction(scanned, direction, dims, batch)
            combined = restored if combined is None else combined + restored
        gated = combined * F.silu(gate_in)
        out = self.out_proj(gated)
        volume = T.moveaxis(T.reshape(out, (batch, depth, height, width, channels)), 4, 1)
        return self.refine(volume)
