"""Baseline learned PEB surrogates compared against SDM-PEB (Table II)."""

from .common import SurrogateBase
from .spectral import SpectralConv3d, spectral_conv3d
from .deepcnn import DeepCNN, DeepCNNConfig, ResidualBlock
from .tempo import TempoResist, TempoResistConfig
from .fno import FNO3d, FNOConfig, FourierLayer, coordinate_channels
from .deepeb import DeePEB, DeePEBConfig

__all__ = [
    "SurrogateBase",
    "SpectralConv3d", "spectral_conv3d",
    "DeepCNN", "DeepCNNConfig", "ResidualBlock",
    "TempoResist", "TempoResistConfig",
    "FNO3d", "FNOConfig", "FourierLayer", "coordinate_channels",
    "DeePEB", "DeePEBConfig",
]
