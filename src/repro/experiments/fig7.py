"""Fig. 7: distribution of per-contact CD errors per method.

Bins |CD error| into the paper's 0-1 / 1-2 / 2-3 / 3-4 / >4 nm buckets
for each Table II method (x and y directions).  Reuses the Table II run
so models are trained once.

Run:  python -m repro.experiments.fig7 [--quick]
"""

from __future__ import annotations

import numpy as np

from .harness import ExperimentSettings, MethodResult
from . import table2

EDGES = np.array([0.0, 1.0, 2.0, 3.0, 4.0, np.inf])
BUCKET_LABELS = ("0~1", "1~2", "2~3", "3~4", ">4")


def bucket_percentages(abs_errors: np.ndarray) -> np.ndarray:
    """Percentage of contacts falling in each |CD error| bucket."""
    if abs_errors.size == 0:
        return np.full(len(BUCKET_LABELS), np.nan)
    counts, _ = np.histogram(abs_errors, bins=EDGES)
    return 100.0 * counts / abs_errors.size


def run(settings: ExperimentSettings | None = None,
        results: list[MethodResult] | None = None) -> dict[str, dict[str, np.ndarray]]:
    """CD-error bucket percentages per method, for x and y directions."""
    if results is None:
        results = table2.run(settings)
    return {
        result.name: {
            "x": bucket_percentages(result.cd_abs_errors_x),
            "y": bucket_percentages(result.cd_abs_errors_y),
        }
        for result in results
    }


def format_figure(buckets: dict[str, dict[str, np.ndarray]]) -> str:
    lines = []
    for axis in ("x", "y"):
        lines.append(f"\n(Fig. 7{'a' if axis == 'x' else 'b'}) CD error in "
                     f"{axis} direction, % of contacts per bucket (nm):")
        header = f"{'method':<16}" + "".join(f"{label:>8}" for label in BUCKET_LABELS)
        lines.append(header)
        lines.append("-" * len(header))
        for name, axes in buckets.items():
            row = f"{name:<16}" + "".join(f"{v:>8.1f}" for v in axes[axis])
            lines.append(row)
    return "\n".join(lines)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    buckets = run(settings)
    print(format_figure(buckets))
    return buckets


if __name__ == "__main__":
    main()
