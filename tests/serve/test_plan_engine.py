"""Plan engine on the serving path: identity, fallback, stats surfaces.

The served contract: `engine="plan"` changes wall time only.  Every
response body is bitwise identical to the tape engine's, across batch
shapes and submit concurrency; models the compiler cannot capture fall
back to the tape silently and the fallback is observable.
"""

import io
import json
import threading
from dataclasses import asdict
from http.client import HTTPConnection

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.serve import (
    BatchPolicy, ModelManifest, ModelRegistry, PredictServer, ServeConfig,
    ServedModel, clear_plan_cache, plan_cache_stats, resolve_engine,
)
from repro.tensor import Tensor, no_grad

GRID = GridConfig(size_um=1.0, nx=8, ny=8, nz=2)


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    nn.init.seed(0)
    model, _ = build_method("SDM-PEB", GRID)
    model.set_output_stats(0.5, 1.0)
    registry.publish(model, "SDM-PEB", GRID, "peb")
    return registry


def make_served(registry, engine, max_batch=4, max_wait_ms=1.0,
                cache_entries=0):
    model, manifest = registry.load("peb")
    policy = BatchPolicy(max_batch_size=max_batch, max_wait_ms=max_wait_ms,
                         cache_entries=cache_entries)
    # workers=1 pinned: these tests assert THIS process's plan cache;
    # pooled workers own their plan caches in their own processes
    return ServedModel(model, manifest, policy, engine=engine, workers=1)


class TestEngineResolution:
    def test_explicit_choice_wins(self):
        assert resolve_engine("tape") == "tape"
        assert resolve_engine("plan") == "plan"
        with pytest.raises(ValueError):
            resolve_engine("jit")

    @pytest.mark.parametrize("raw,expected", [
        ("", "tape"), ("0", "tape"), ("false", "tape"),
        ("1", "plan"), ("true", "plan"),
    ])
    def test_env_var_opt_in(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_INFER_PLAN", raw)
        assert resolve_engine(None) == expected

    def test_served_model_defaults_from_env(self, monkeypatch, checkpoint):
        monkeypatch.setenv("REPRO_INFER_PLAN", "1")
        served = make_served(checkpoint, engine=None)
        try:
            assert served.engine == "plan"
        finally:
            served.close()


class TestBatchIdentity:
    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    def test_predict_batch_bitwise_identical(self, checkpoint, batch):
        tape = make_served(checkpoint, "tape")
        plan = make_served(checkpoint, "plan")
        try:
            x = np.random.default_rng(batch).random((batch, 1) + GRID.shape)
            expected = tape._predict_batch(x)
            # first call captures + replays, second replays from cache
            assert np.array_equal(plan._predict_batch(x), expected)
            assert np.array_equal(plan._predict_batch(x), expected)
        finally:
            tape.close()
            plan.close()
        stats = plan_cache_stats()
        assert stats["plans"] == 1
        assert stats["capture_failures"] == 0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_concurrent_submits_match_tape(self, checkpoint, workers):
        # identity is defined per batch composition (BLAS blocking differs
        # across batch sizes), so pin every batch to size 1 and let the
        # worker threads race on the shared plan cache instead
        tape = make_served(checkpoint, "tape", max_batch=1)
        plan = make_served(checkpoint, "plan", max_batch=1)
        rng = np.random.default_rng(77)
        clips = [rng.random(GRID.shape) for _ in range(workers * 3)]
        try:
            expected = [tape.batcher.submit(clip, timeout_s=60) for clip in clips]
            results: list = [None] * len(clips)

            def submit(indices):
                for i in indices:
                    results[i] = plan.batcher.submit(clips[i], timeout_s=60)

            threads = [threading.Thread(target=submit,
                                        args=(range(w, len(clips), workers),))
                       for w in range(workers)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            tape.close()
            plan.close()
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)


class _UnplannableModel(nn.Module):
    """Forward uses an op the plan compiler has no kernel for."""

    def __init__(self):
        super().__init__()
        self.scale = nn.Parameter(np.ones((1,), dtype=np.float64))

    def forward(self, x):
        data = np.sort(x.data, axis=-1)
        return Tensor.from_op(data, [(x, lambda g: g)], op="sort") * self.scale


def _fake_manifest() -> ModelManifest:
    return ModelManifest(
        name="unplannable", version=1, model_class="DeepCNN",
        grid=asdict(GRID), dtype="float64", param_count=1,
        content_hash="sha256:unplannable", output_mean=0.0, output_std=1.0,
        created_unix_s=0.0)


class TestFallback:
    def test_capture_failure_falls_back_to_tape(self):
        # workers=1: the fake manifest cannot rebuild _UnplannableModel
        # in a pool worker (the pooled backend needs registry-faithful
        # manifests); this test is about THIS process's plan fallback
        served = ServedModel(_UnplannableModel(), _fake_manifest(),
                             BatchPolicy(max_wait_ms=0.5, cache_entries=0),
                             engine="plan", workers=1)
        try:
            x = np.random.default_rng(5).random((2, 1) + GRID.shape)
            with no_grad():
                expected = served.model(Tensor(x)).numpy()
            # every call is served correctly despite the failed capture
            assert np.array_equal(served._predict_batch(x), expected)
            assert np.array_equal(served._predict_batch(x), expected)
        finally:
            served.close()
        stats = plan_cache_stats()
        assert stats["capture_failures"] == 1
        assert stats["failed"] == 1
        assert stats["fallbacks"] >= 2
        assert stats["plans"] == 0


class TestHTTPSurfaces:
    @pytest.fixture()
    def server(self, checkpoint):
        served = make_served(checkpoint, "plan", cache_entries=4)
        instance = PredictServer(served,
                                 ServeConfig(port=0, policy=served.batcher.policy))
        instance.start()
        yield instance
        instance.shutdown()

    def _request(self, server, method, path, body=None, headers=None):
        host, port = server.address
        conn = HTTPConnection(host, port, timeout=30)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def test_healthz_reports_plan_and_cache_stats(self, server):
        rng = np.random.default_rng(9)
        buffer = io.BytesIO()
        np.savez(buffer, acid=rng.random(GRID.shape))
        status, _ = self._request(
            server, "POST", "/v1/predict", body=buffer.getvalue(),
            headers={"Content-Type": "application/octet-stream"})
        assert status == 200
        status, body = self._request(server, "GET", "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["engines"] == ["plan"]
        assert payload["plan_cache"]["plans"] == 1
        assert payload["plan_cache"]["replays"] >= 1
        caches = payload["caches"]
        assert "hit_rate" in caches["propagator"]
        response_stats = next(iter(caches["response"].values()))
        assert {"capacity", "entries", "hit_rate", "evictions"} <= set(response_stats)
        queue_stats = next(iter(payload["queues"].values()))
        assert "cache_evictions" in queue_stats

    def test_metrics_exposes_plan_series(self, server):
        rng = np.random.default_rng(10)
        buffer = io.BytesIO()
        np.savez(buffer, acid=rng.random(GRID.shape))
        status, _ = self._request(
            server, "POST", "/v1/predict", body=buffer.getvalue(),
            headers={"Content-Type": "application/octet-stream"})
        assert status == 200
        status, body = self._request(server, "GET", "/metrics")
        assert status == 200
        text = body.decode()
        # refresh-on-scrape levels are real gauges now (no _total suffix);
        # cumulative families keep their counter rendering
        for needle in ("repro_serve_plan_captures_total",
                       "# TYPE repro_serve_plan_cached_plans gauge",
                       "# TYPE repro_serve_plan_arena_bytes gauge",
                       "repro_serve_plan_capture_seconds_count",
                       "repro_serve_plan_replay_seconds_count",
                       "# TYPE repro_serve_cache_entries gauge",
                       "# TYPE repro_serve_cache_evictions gauge",
                       "repro_cache_propagator_hits_total"):
            assert needle in text, f"missing {needle} in /metrics"
