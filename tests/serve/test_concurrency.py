"""Regression tests for the races the REP100 rules surfaced in serve/obs.

Each test here pins a bug the concurrency linter or the lock sanitizer
found: concurrent registry publishes racing on ``latest + 1``, batcher
stat increments outside the batcher lock, and the unbounded
``ShadowAuditor`` shutdown.  They run with the sanitizer active so any
reintroduced lock-order or fork hazard in these paths fails loudly.
"""

import threading

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig, PEBConfig
from repro.experiments import build_method
from repro.obs import HealthConfig, ShadowAuditor
from repro.runtime.sync import reset_sync_state, sanitize_locks, sync_violations
from repro.serve import BatchPolicy, MicroBatcher, ModelRegistry, RegistryError

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)


@pytest.fixture(autouse=True)
def _sanitized():
    reset_sync_state()
    with sanitize_locks():
        yield
    assert sync_violations() == [], [v.message for v in sync_violations()]
    reset_sync_state()


def tiny_model(seed: int = 0):
    nn.init.seed(seed)
    model, _ = build_method("DeepCNN", GRID)
    model.set_output_stats(0.25, 2.0)
    return model


class TestRegistryPublishRace:
    def test_concurrent_publishes_get_distinct_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = tiny_model()
        manifests, errors = [], []
        barrier = threading.Barrier(4)

        def publish():
            barrier.wait(5.0)
            try:
                manifests.append(
                    registry.publish(model, method="DeepCNN", grid=GRID, name="m"))
            except Exception as error:  # noqa: BLE001 - collected for assertion
                errors.append(error)

        threads = [threading.Thread(target=publish) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        assert errors == []
        versions = sorted(m.version for m in manifests)
        assert versions == [1, 2, 3, 4]
        assert registry.versions("m") == [1, 2, 3, 4]
        assert registry.latest("m") == 4

    def test_explicit_version_collision_still_raises(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish(tiny_model(), method="DeepCNN", grid=GRID,
                         name="m", version=1)
        with pytest.raises(RegistryError, match="immutable"):
            registry.publish(tiny_model(), method="DeepCNN", grid=GRID,
                             name="m", version=1)

    def test_leftover_claimed_dir_raises_instead_of_reusing(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        (tmp_path / "m" / "v1").mkdir(parents=True)
        with pytest.raises(RegistryError, match="claimed"):
            registry.publish(tiny_model(), method="DeepCNN", grid=GRID,
                             name="m", version=1)


class TestBatcherStatConsistency:
    def test_stats_are_consistent_under_concurrent_submits(self):
        batcher = MicroBatcher(lambda batch: batch * 2.0,
                               BatchPolicy(max_wait_ms=1.0, cache_entries=8))
        try:
            total = 48
            done = []

            def client(index):
                value = batcher.submit(np.full((4,), float(index % 6)))
                done.append(float(value[0]))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(total)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30.0)
            assert len(done) == total
            stats = batcher.stats()
            # every submit is either a cache hit or a completed request
            assert stats["cache_hits"] + stats["requests_done"] == total
            assert stats["cache_misses"] == stats["requests_done"]
            assert stats["batches_run"] >= 1
        finally:
            batcher.close()


class TestAuditorBoundedShutdown:
    def _auditor(self, backlog: int = 8) -> ShadowAuditor:
        config = HealthConfig(shadow_every=1, shadow_backlog=backlog,
                              shadow_time_step_s=2.0)
        return ShadowAuditor(GRID, peb=PEBConfig(), config=config)

    def test_close_joins_worker_within_deadline(self):
        auditor = self._auditor()
        acid = np.zeros(GRID.shape)
        auditor.offer(acid, np.ones(GRID.shape))
        assert auditor.close(timeout_s=30.0) is True
        assert not auditor._thread.is_alive()

    def test_close_without_drain_discards_backlog(self):
        auditor = self._auditor()
        acid = np.zeros(GRID.shape)
        for _ in range(6):
            auditor.offer(acid, np.ones(GRID.shape))
        auditor.close(timeout_s=30.0, drain=False)
        # nothing left queued and the worker is not stuck on it
        assert len(auditor._items) == 0

    def test_close_is_idempotent(self):
        auditor = self._auditor()
        assert auditor.close(timeout_s=10.0) is True
        assert auditor.close(timeout_s=10.0) is True

    def test_offer_after_close_is_dropped(self):
        auditor = self._auditor()
        auditor.close(timeout_s=10.0)
        accepted = auditor.offer(np.zeros(GRID.shape), np.ones(GRID.shape))
        assert accepted is False
