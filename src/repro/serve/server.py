"""HTTP front end for the batched inference service.

Stdlib-only (``http.server.ThreadingHTTPServer``) so the serving path
carries zero dependencies beyond what the substrate already needs.
Routes:

* ``POST /v1/predict`` — one photoacid clip in, one label-space
  prediction out.  Payloads are either a JSON object
  ``{"acid": [[[...]]]}`` or an ``.npz`` archive with an ``acid`` array
  (``Content-Type: application/octet-stream``); the response mirrors
  the request format.  ``?model=NAME`` and ``?version=N`` select a
  served checkpoint; ``?deadline_ms=`` bounds queue wait.
* ``GET /v1/models`` — manifest summaries of every served checkpoint.
* ``POST /v1/jobs`` / ``GET /v1/jobs[/<id>]`` / ``DELETE /v1/jobs/<id>``
  — the async job queue (:mod:`repro.serve.jobs`): submit returns an id
  immediately, GET reports per-iteration progress or the final result,
  DELETE requests cancellation.  Long-running work (gradient-based OPC)
  runs behind this instead of holding a request thread.
* ``GET /healthz`` — liveness plus queue depth, cache hit rate and
  in-flight counts (what a load balancer sheds on).
* ``GET /metrics`` — the :mod:`repro.obs` registry rendered in the
  Prometheus text exposition format, including cumulative
  ``_bucket``/``_sum``/``_count`` histogram series.

Every request gets a request-scoped trace identity: the handler mints
(or adopts, from a well-formed ``X-Request-Id`` request header) a
request id, returns it in the ``X-Request-Id`` response header, and —
when tracing is enabled — opens a ``serve.request`` root span whose
context follows the request across the micro-batcher's worker thread
and any forked solver workers, so one request reads back from the
trace as one connected span tree.  Each response also produces a
structured JSON access-log line on stderr (info lines only with
``verbose``; 503/504 warning lines always).

Failure mapping: malformed payloads are 400, unknown models 404,
oversized bodies 413, queue backpressure 503 (with ``Retry-After``),
queue-deadline expiry 504.  Shutdown is graceful: the listener stops,
in-flight handler threads finish (``block_on_close``), and each
batcher drains its queue before the process exits.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
import zipfile
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.config import PEBConfig
from repro.jobs import JobNotFound, JobTypeError
from repro.obs import (
    FlightRecorder, HealthConfig, HealthMonitor, SLOEvaluator,
    TelemetrySampler, TimeSeriesDB, TraceContext, counter, default_slos,
    gauge, histogram, metrics_snapshot, new_request_context,
    process_info, refresh_process_gauges, span, timer, use_context,
)
from repro.obs.dashboard import render_dashboard
from repro.runtime.sync import make_lock
from repro.tensor import Tensor, no_grad

from .batcher import (
    BatcherClosedError, BatchPolicy, DeadlineExceededError, MicroBatcher,
    QueueFullError, ServeError,
)
from .engine import PlanExecutor, plan_cache_stats, resolve_engine
from .jobs import JobService
from .pool import PoolConfig, WorkerCrashedError, WorkerPool, resolve_serve_workers
from .registry import ModelManifest
from .router import ShardRouter
from .shm import publish_weights, release_weights, shm_stats

__all__ = ["ServeConfig", "ServedModel", "PredictServer", "render_prometheus",
           "escape_label_value"]

NPZ_CONTENT_TYPES = ("application/octet-stream", "application/x-npz", "application/zip")

#: default latency-histogram bucket bounds in seconds (Prometheus `le`)
DEFAULT_LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                           0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass(frozen=True)
class ServeConfig:
    """Front-end configuration (batching policy lives in BatchPolicy)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests, benches)
    port: int = 8080
    policy: BatchPolicy = field(default_factory=BatchPolicy)
    #: request bodies above this many bytes are rejected with 413
    max_body_bytes: int = 64 * 1024 * 1024
    #: per-request wall-clock cap while waiting for a result
    request_timeout_s: float = 120.0
    #: `serve.request_latency_s` histogram bucket bounds, seconds
    latency_buckets: tuple = DEFAULT_LATENCY_BUCKETS
    #: rolling-window telemetry sampler (``/v1/telemetry``, ``/dashboard``)
    telemetry: bool = True
    telemetry_interval_s: float = 10.0
    telemetry_slots: int = 360
    #: SLO burn-rate windows (seconds); tests shrink these to the
    #: sampling interval so alerts respond within a few samples
    slo_fast_window_s: float = 300.0
    slo_slow_window_s: float = 3600.0
    #: black-box flight recorder (span/log/request rings + crash dumps)
    flight: bool = True
    flight_dump_dir: str = "."
    flight_min_dump_interval_s: float = 30.0


class ServedModel:
    """One checkpoint behind its own micro-batcher.

    ``health`` attaches a physics :class:`~repro.obs.HealthMonitor` as
    the batcher's post-forward observer: invariant checks run inline on
    the worker thread, sampled shadow audits on their own daemon
    thread.  The monitor only ever reads the batch — served outputs are
    bitwise identical with and without it.

    ``engine`` selects how batched forwards run: ``"tape"`` is the
    ordinary autograd tape under ``no_grad``; ``"plan"`` compiles one
    inference plan per batch shape on first use and replays it (bitwise
    identical, falling back to tape on capture failure or while a
    capture is in flight).  ``None`` consults ``REPRO_INFER_PLAN``.

    ``workers`` selects the execution backend: 1 (the default, also via
    ``REPRO_SERVE_WORKERS``) keeps the historical in-process path — one
    micro-batcher thread running the forward under the GIL.  More than
    one publishes the weights into a shared-memory segment, forks that
    many worker processes (each with its own core and plan cache) and
    routes requests across per-shard batchers by content hash; outputs
    are bitwise identical either way.
    """

    def __init__(self, model, manifest: ModelManifest, policy: BatchPolicy,
                 health: HealthConfig | None = None,
                 peb: PEBConfig | None = None, engine: str | None = None,
                 workers: int | None = None,
                 pool_config: PoolConfig | None = None):
        self.model = model
        self.manifest = manifest
        self.model.eval()
        self._cast_params_once()
        self.engine = resolve_engine(engine)
        label = f"{manifest.name}-v{manifest.version}"
        self.workers = resolve_serve_workers(workers)
        self._executor = None
        self.pool = None
        self._store = None
        if self.workers == 1 and self.engine == "plan":
            self._executor = PlanExecutor(
                self.model, manifest.content_hash, label=label)
        peb = peb if peb is not None else PEBConfig()
        self.monitor = None
        if health is not None:
            self.monitor = HealthMonitor(
                manifest.grid_config(), peb.catalysis_rate, config=health,
                peb=peb, name=label)
        if self.workers > 1:
            # publish once; the pool owns (and on close releases) the ref
            self._store = publish_weights(model.state_dict(),
                                          manifest.content_hash)
            try:
                self.pool = WorkerPool(manifest, self._store, self.engine,
                                       self.workers, config=pool_config,
                                       name=label)
            except Exception:
                release_weights(self._store)
                raise
            self.batcher = ShardRouter(
                self._shard_predict_fn, self.workers, policy, name=label,
                observer=self._observe_batch)
        else:
            self.batcher = MicroBatcher(self._predict_batch, policy,
                                        name=label,
                                        observer=self._observe_batch)
        self.clip_shape = tuple(manifest.grid_config().shape)

    def _cast_params_once(self) -> None:
        # weights are cast to the serving dtype exactly once, at load —
        # the per-request hot path asserts instead of re-casting
        for _, param in self.model.named_parameters():
            if param.data.dtype != np.float64:
                param.data = param.data.astype(np.float64)

    def _predict_batch(self, batch: np.ndarray) -> np.ndarray:
        # validate_input already cast each clip to float64 and np.stack
        # preserved it, so the batch needs no per-request conversion
        batch = np.asarray(batch)
        if batch.dtype != np.float64:
            raise ServeError(f"batch reached the forward path as {batch.dtype}; "
                             "inputs must be cast to float64 at validation")
        with span("serve.forward", size=len(batch), engine=self.engine):
            if self._executor is not None:
                output = self._executor.run(batch)
                if output is not None:
                    return output
            with no_grad():
                return self.model(Tensor(batch)).numpy()

    def _shard_predict_fn(self, shard: int):
        """Per-shard predict callable for the router's batchers."""
        def predict(batch: np.ndarray) -> np.ndarray:
            batch = np.asarray(batch)
            if batch.dtype != np.float64:
                raise ServeError(
                    f"batch reached the forward path as {batch.dtype}; "
                    "inputs must be cast to float64 at validation")
            return self.pool.forward(shard, batch)
        return predict

    def _observe_batch(self, batch, outputs, request_ids, ctxs) -> None:
        if self.monitor is not None:
            self.monitor.observe_batch(batch, outputs,
                                       request_ids=request_ids, ctxs=ctxs)

    def close(self, drain: bool = True) -> None:
        self.batcher.close(drain=drain)
        if self.pool is not None:
            self.pool.close(drain=drain)
        if self.monitor is not None:
            self.monitor.close()

    def validate_input(self, acid: np.ndarray) -> np.ndarray:
        acid = np.asarray(acid, dtype=np.float64)
        if acid.shape == (1,) + self.clip_shape:
            acid = acid[0]
        if acid.shape != self.clip_shape:
            raise ValueError(
                f"expected one clip of shape {self.clip_shape} (nz, ny, nx), "
                f"got {acid.shape}")
        if not np.all(np.isfinite(acid)):
            raise ValueError("input contains NaN/Inf")
        return acid


class _HTTPError(Exception):
    def __init__(self, status: int, message: str, retry_after_s: int | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value (backslash, quote, newline)."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def render_prometheus(snapshot: dict | None = None) -> str:
    """Render a :func:`repro.obs.metrics_snapshot` in Prometheus text format.

    Each family is one ``# HELP``/``# TYPE`` pair followed by its sample
    lines (the exposition-format ordering scrapers validate); the help
    string is the dotted registry name, which is the one piece of
    provenance the flat name loses.
    """
    snapshot = metrics_snapshot() if snapshot is None else snapshot
    lines: list[str] = []

    def family(flat: str, kind: str, source: str) -> None:
        lines.append(f"# HELP {flat} repro metric {source}")
        lines.append(f"# TYPE {flat} {kind}")

    for name, metric in sorted(snapshot.items()):
        flat = "repro_" + name.replace(".", "_").replace("-", "_")
        kind = metric.get("type")
        if kind == "counter":
            # OpenMetrics style: the family is the base name, the sample
            # carries the _total suffix
            family(flat, "counter", name)
            lines.append(f"{flat}_total {metric['value']}")
        elif kind == "gauge":
            family(flat, "gauge", name)
            lines.append(f"{flat} {metric['value']}")
        elif kind == "timer":
            family(f"{flat}_seconds", "summary", name)
            lines.append(f"{flat}_seconds_count {metric['count']}")
            lines.append(f"{flat}_seconds_sum {metric['total_s']:.9f}")
        elif kind == "histogram":
            family(flat, "histogram", name)
            cumulative = 0
            for bound, bucket in zip(metric["bounds"], metric["bucket_counts"]):
                cumulative += bucket
                le = escape_label_value(f"{bound:g}")
                lines.append(f'{flat}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{flat}_bucket{{le="+Inf"}} {metric["count"]}')
            lines.append(f"{flat}_count {metric['count']}")
            lines.append(f"{flat}_sum {metric['total']:.9f}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"
    #: idle keep-alive connections are dropped after this many seconds so
    #: abandoned clients cannot pin handler threads forever
    timeout = 30
    #: status+headers and the body leave in separate writes; with Nagle
    #: on, the body write stalls until the client ACKs the header packet
    #: (~40ms of delayed-ACK floor per loopback request), which would
    #: swamp a single-digit-millisecond model forward
    disable_nagle_algorithm = True

    # the PredictServer that owns this handler's ThreadingHTTPServer
    @property
    def app(self) -> "PredictServer":
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.app.config_verbose:
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------
    def _begin_request(self) -> TraceContext:
        """Per-request setup: trace identity + timing for the access log."""
        self._started_s = time.perf_counter()
        self._status = None
        ctx = new_request_context(self.headers.get("X-Request-Id"))
        self._request_id = ctx.request_id
        return ctx

    def _finish_request(self, path: str) -> None:
        """Emit the structured access-log line for the completed exchange."""
        elapsed = time.perf_counter() - getattr(self, "_started_s", time.perf_counter())
        status = getattr(self, "_status", None) or 0
        counter(f"serve.http.status.{status}").inc()
        record = {
            "method": self.command,
            "path": path,
            "status": status,
            "dur_ms": round(elapsed * 1e3, 3),
            "request_id": getattr(self, "_request_id", None),
            "client": self.client_address[0] if self.client_address else None,
        }
        flight = self.app.flight
        if flight is not None:
            flight.record_request({"t_wall_s": round(time.time(), 3),
                                   **record})
        self.app.access_log(record, warn=status in (503, 504))

    def _send(self, status: int, body: bytes, content_type: str,
              extra_headers: dict | None = None) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        for key, value in (extra_headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self._send(status, body, "application/json", extra_headers)

    def _send_error_json(self, error: _HTTPError) -> None:
        headers = {}
        if error.retry_after_s is not None:
            headers["Retry-After"] = error.retry_after_s
        self._send_json(error.status, {"error": error.message}, headers)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise _HTTPError(400, "empty request body")
        if length > self.app.config.max_body_bytes:
            raise _HTTPError(413, f"request body of {length} bytes exceeds "
                                  f"limit {self.app.config.max_body_bytes}")
        return self.rfile.read(length)

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        ctx = self._begin_request()
        try:
            with use_context(ctx):
                if parsed.path == "/healthz":
                    self._send_json(200, self.app.health())
                elif parsed.path == "/metrics":
                    self.app.refresh_cache_metrics()
                    self._send(200, render_prometheus().encode(),
                               "text/plain; version=0.0.4")
                elif parsed.path == "/v1/telemetry":
                    query = parse_qs(parsed.query)
                    self._send_json(200, self.app.telemetry(
                        prefix=query.get("prefix", [""])[0],
                        window_s=_float_arg(query, "window_s")))
                elif parsed.path == "/dashboard":
                    self._send(200, self.app.dashboard().encode(),
                               "text/html; charset=utf-8")
                elif parsed.path == "/v1/models":
                    self._send_json(200, {"models": self.app.list_models()})
                elif parsed.path == "/v1/jobs":
                    jobs = self._require_jobs()
                    self._send_json(200, {"jobs": [
                        _job_summary(record) for record in jobs.list()]})
                elif parsed.path.startswith("/v1/jobs/"):
                    jobs = self._require_jobs()
                    record = self._lookup_job(jobs, parsed.path)
                    self._send_json(200, _job_payload(record))
                else:
                    raise _HTTPError(404, f"no route {parsed.path}")
        except _HTTPError as error:
            self._send_error_json(error)
        finally:
            self._finish_request(parsed.path)

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        ctx = self._begin_request()
        try:
            with use_context(ctx):
                if parsed.path == "/v1/predict":
                    self._predict(parse_qs(parsed.query))
                elif parsed.path == "/v1/jobs":
                    self._submit_job()
                else:
                    raise _HTTPError(404, f"no route {parsed.path}")
        except _HTTPError as error:
            self._send_error_json(error)
        finally:
            self._finish_request(parsed.path)

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib casing
        parsed = urlparse(self.path)
        ctx = self._begin_request()
        try:
            with use_context(ctx):
                if not parsed.path.startswith("/v1/jobs/"):
                    raise _HTTPError(404, f"no route {parsed.path}")
                jobs = self._require_jobs()
                record = self._lookup_job(jobs, parsed.path)
                record = jobs.cancel(record.id)
                self._send_json(202, _job_payload(record))
        except _HTTPError as error:
            self._send_error_json(error)
        finally:
            self._finish_request(parsed.path)

    # -- job routes ----------------------------------------------------
    def _require_jobs(self) -> JobService:
        jobs = self.app.jobs
        if jobs is None:
            raise _HTTPError(404, "job queue is not enabled on this server")
        return jobs

    @staticmethod
    def _lookup_job(jobs: JobService, path: str):
        job_id = path[len("/v1/jobs/"):].strip("/")
        if not job_id or "/" in job_id:
            raise _HTTPError(404, f"no route {path}")
        try:
            return jobs.get(job_id)
        except JobNotFound as error:
            raise _HTTPError(404, str(error)) from error

    def _submit_job(self) -> None:
        jobs = self._require_jobs()
        counter("serve.http.jobs_submit").inc()
        with span("serve.request", route="/v1/jobs",
                  request_id=self._request_id):
            body = self._read_body()
            try:
                payload = json.loads(body)
            except json.JSONDecodeError as error:
                raise _HTTPError(400, f"invalid JSON body: {error}") from error
            if not isinstance(payload, dict) or "type" not in payload:
                raise _HTTPError(
                    400, 'JSON body must be an object with a "type" field')
            params = payload.get("params") or {}
            if not isinstance(params, dict):
                raise _HTTPError(400, '"params" must be an object')
            try:
                record = jobs.submit(str(payload["type"]), params)
            except JobTypeError as error:
                raise _HTTPError(400, str(error)) from error
            self._send_json(202, _job_payload(record),
                            {"Location": f"/v1/jobs/{record.id}"})

    def _predict(self, query: dict) -> None:
        app = self.app
        app.inflight_inc()
        counter("serve.http.predict").inc()
        started = time.perf_counter()
        try:
            with span("serve.request", route="/v1/predict",
                      request_id=self._request_id), \
                    timer("serve.request").time():
                served = app.resolve_model(query.get("model", [None])[0],
                                           query.get("version", [None])[0])
                body = self._read_body()
                content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
                as_json = content_type == "application/json"
                acid, deadline_ms = _parse_predict_payload(body, as_json, query)
                try:
                    acid = served.validate_input(acid)
                except ValueError as error:
                    raise _HTTPError(400, str(error)) from error
                try:
                    prediction = served.batcher.submit(
                        acid, deadline_ms=deadline_ms,
                        timeout_s=app.config.request_timeout_s)
                except QueueFullError as error:
                    raise _HTTPError(503, str(error), retry_after_s=1) from error
                except BatcherClosedError as error:
                    raise _HTTPError(503, str(error)) from error
                except DeadlineExceededError as error:
                    raise _HTTPError(504, str(error)) from error
                except WorkerCrashedError as error:
                    # the worker died mid-batch: the request was never
                    # answered, the pool is respawning — fail fast,
                    # tell the client to retry, never serve garbage
                    raise _HTTPError(503, str(error), retry_after_s=1) from error
                except ServeError as error:
                    raise _HTTPError(500, str(error)) from error
                headers = {
                    "X-Repro-Model": served.manifest.name,
                    "X-Repro-Model-Version": served.manifest.version,
                }
                if as_json:
                    self._send_json(200, {
                        "model": served.manifest.name,
                        "version": served.manifest.version,
                        "request_id": self._request_id,
                        "shape": list(prediction.shape),
                        "prediction": prediction.tolist(),
                    }, headers)
                else:
                    buffer = io.BytesIO()
                    np.savez_compressed(buffer, prediction=prediction)
                    self._send(200, buffer.getvalue(), "application/octet-stream",
                               headers)
        finally:
            histogram("serve.request_latency_s",
                      bounds=app.config.latency_buckets).observe(
                time.perf_counter() - started)
            app.inflight_dec()


def _float_arg(query: dict, key: str) -> float | None:
    if key not in query:
        return None
    try:
        return float(query[key][0])
    except ValueError as error:
        raise _HTTPError(400, f"{key} must be a number") from error


def _job_summary(record) -> dict:
    return {
        "id": record.id,
        "type": record.type,
        "state": record.state,
        "attempts": record.attempts,
        "created_s": record.created_s,
        "updated_s": record.updated_s,
        "cancel_requested": record.cancel_requested,
    }


def _job_payload(record) -> dict:
    payload = record.to_dict()
    payload["href"] = f"/v1/jobs/{record.id}"
    return payload


def _parse_predict_payload(body: bytes, as_json: bool,
                           query: dict) -> tuple[np.ndarray, float | None]:
    deadline_ms: float | None = None
    if "deadline_ms" in query:
        try:
            deadline_ms = float(query["deadline_ms"][0])
        except ValueError as error:
            raise _HTTPError(400, "deadline_ms must be a number") from error
    if as_json:
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HTTPError(400, f"invalid JSON body: {error}") from error
        if not isinstance(payload, dict) or "acid" not in payload:
            raise _HTTPError(400, 'JSON body must be an object with an "acid" array')
        if deadline_ms is None and "deadline_ms" in payload:
            deadline_ms = float(payload["deadline_ms"])
        try:
            acid = np.asarray(payload["acid"], dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise _HTTPError(400, f'"acid" is not a numeric array: {error}') from error
        return acid, deadline_ms
    try:
        with np.load(io.BytesIO(body)) as archive:
            if "acid" not in archive.files:
                raise _HTTPError(400, 'npz payload must contain an "acid" array '
                                      f"(found {archive.files})")
            return np.asarray(archive["acid"], dtype=np.float64), deadline_ms
    except (zipfile.BadZipFile, ValueError, OSError) as error:
        if isinstance(error, _HTTPError):
            raise
        raise _HTTPError(400, f"body is not a readable npz archive: {error}") from error


class _Server(ThreadingHTTPServer):
    # Handler threads are daemons and server_close does not join them:
    # idle keep-alive connections would otherwise block shutdown
    # indefinitely.  Graceful drain is done explicitly by
    # PredictServer.shutdown, which waits for the *in-flight request*
    # count (not connection count) to reach zero.
    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True


class PredictServer:
    """Owns the HTTP listener and one :class:`ServedModel` per checkpoint."""

    def __init__(self, served: list[ServedModel] | ServedModel,
                 config: ServeConfig | None = None, verbose: bool = False,
                 jobs: JobService | None = None):
        self.config = config if config is not None else ServeConfig()
        self.config_verbose = verbose
        # the job service arrives constructed-but-not-started; the server
        # owns its lifecycle so shutdown drains exactly once
        self.jobs = jobs
        if jobs is not None:
            jobs.start()
        served = [served] if isinstance(served, ServedModel) else list(served)
        if not served:
            raise ValueError("PredictServer needs at least one ServedModel")
        self._models: dict[str, dict[int, ServedModel]] = {}
        for entry in served:
            versions = self._models.setdefault(entry.manifest.name, {})
            versions[entry.manifest.version] = entry
        self.default_name = served[0].manifest.name
        self._inflight = 0
        self._inflight_lock = make_lock("serve.server.inflight")
        # telemetry / SLO / flight recorder (all observation-only; each
        # individually disableable through ServeConfig)
        self.telemetry_db: TimeSeriesDB | None = None
        self.sampler: TelemetrySampler | None = None
        self.slo: SLOEvaluator | None = None
        if self.config.telemetry:
            self.telemetry_db = TimeSeriesDB(self.config.telemetry_interval_s,
                                             self.config.telemetry_slots)
            self.sampler = TelemetrySampler(
                self.telemetry_db,
                snapshot_fn=self._sampler_snapshot).start()
            self.slo = SLOEvaluator(self.telemetry_db, default_slos(
                fast_window_s=self.config.slo_fast_window_s,
                slow_window_s=self.config.slo_slow_window_s))
        self.flight: FlightRecorder | None = None
        if self.config.flight:
            self.flight = FlightRecorder(
                dump_dir=self.config.flight_dump_dir,
                min_dump_interval_s=self.config.flight_min_dump_interval_s,
            ).install()
            # the dump carries the same context an operator would curl
            self.flight.context_providers["health"] = self.health
            self.flight.context_providers["alerts"] = self.alerts
        self._http = _Server((self.config.host, self.config.port), _Handler)
        self._http.app = self
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # -- model resolution ---------------------------------------------
    def resolve_model(self, name: str | None, version: str | None) -> ServedModel:
        name = name or self.default_name
        versions = self._models.get(name)
        if not versions:
            raise _HTTPError(404, f"no served model named {name!r} "
                                  f"(serving: {sorted(self._models)})")
        if version is None:
            return versions[max(versions)]
        try:
            numeric = int(version)
        except ValueError as error:
            raise _HTTPError(400, "version must be an integer") from error
        if numeric not in versions:
            raise _HTTPError(404, f"model {name!r} has no served version {numeric} "
                                  f"(serving: {sorted(versions)})")
        return versions[numeric]

    def list_models(self) -> list[dict]:
        out = []
        for name in sorted(self._models):
            latest = max(self._models[name])
            for version in sorted(self._models[name]):
                entry = self._models[name][version]
                summary = entry.manifest.summary()
                summary["latest"] = version == latest
                summary["default"] = name == self.default_name
                out.append(summary)
        return out

    def health(self) -> dict:
        queues = {
            f"{name}:v{version}": entry.batcher.stats()
            for name, versions in self._models.items()
            for version, entry in versions.items()
        }
        monitors = {
            f"{name}:v{version}": entry.monitor.stats()
            for name, versions in self._models.items()
            for version, entry in versions.items()
            if entry.monitor is not None
        }
        pools = {
            f"{name}:v{version}": entry.pool.stats()
            for name, versions in self._models.items()
            for version, entry in versions.items()
            if entry.pool is not None
        }
        total_depth = sum(stats["queue_depth"] for stats in queues.values())
        hits = sum(stats["cache_hits"] for stats in queues.values())
        lookups = hits + sum(stats["cache_misses"] for stats in queues.values())
        refresh_process_gauges()
        alerts = self.alerts()
        payload = {
            "status": "ok",
            "alerts": alerts,
            "process": process_info(),
            "models": sorted(self._models),
            "inflight": self.inflight,
            "engines": sorted({entry.engine for versions in self._models.values()
                               for entry in versions.values()}),
            "serve_workers": max(entry.workers
                                 for versions in self._models.values()
                                 for entry in versions.values()),
            # top-level shed signals for load balancers: total queued
            # requests and the combined batcher cache hit rate
            "queue_depth": total_depth,
            "cache_hit_rate": round(hits / lookups, 6) if lookups else 0.0,
            "queues": queues,
            "caches": self.cache_stats(),
            "plan_cache": plan_cache_stats(),
            "shm": shm_stats(),
        }
        if pools:
            payload["pools"] = pools
            payload["worker_restarts"] = sum(p["restarts"]
                                             for p in pools.values())
        if monitors:
            payload["health_monitors"] = monitors
        if self.jobs is not None:
            payload["jobs"] = self.jobs.stats()
        if self.sampler is not None:
            payload["telemetry"] = self.sampler.stats()
        if self.flight is not None:
            payload["flight"] = self.flight.stats()
        return payload

    def alerts(self) -> dict:
        """Current SLO burn-rate alert states (the ``/healthz`` block)."""
        if self.slo is None:
            return {"state": "disabled", "slos": []}
        return self.slo.evaluate()

    def telemetry(self, prefix: str = "",
                  window_s: float | None = None) -> dict:
        """The ``/v1/telemetry`` payload: retained series + derived views."""
        if self.telemetry_db is None:
            return {"enabled": False, "series": {}}
        payload = self.telemetry_db.series(prefix=prefix, window_s=window_s)
        payload["enabled"] = True
        payload["alerts"] = self.alerts()
        return payload

    def dashboard(self) -> str:
        """The self-contained ``/dashboard`` HTML page."""
        if self.telemetry_db is None:
            return ("<!doctype html><html><body><p>telemetry disabled "
                    "(ServeConfig.telemetry=False)</p></body></html>")
        return render_dashboard(self.telemetry_db, alerts=self.alerts())

    def _sampler_snapshot(self) -> dict:
        """What the telemetry sampler records each tick: the registry,
        with scrape-time gauges (caches, pool, jobs, process) refreshed
        first so their history lands in the TSDB too."""
        try:
            self.refresh_cache_metrics()
        except Exception:  # noqa: BLE001 - a closing batcher mid-sample
            # must not kill the sampler thread
            pass
        refresh_process_gauges()
        return metrics_snapshot()

    def cache_stats(self) -> dict:
        """Size/hit-rate/eviction snapshot of every cache on the serve path."""
        from repro.obs import propagator_cache_stats

        response = {
            f"{name}:v{version}": entry.batcher.response_cache_stats()
            for name, versions in self._models.items()
            for version, entry in versions.items()
        }
        return {
            "propagator": propagator_cache_stats(record=True),
            "response": response,
        }

    def refresh_cache_metrics(self) -> None:
        """Mirror cache gauges into the metric registry (``/metrics``)."""
        from repro.obs import propagator_cache_stats

        propagator_cache_stats(record=True)
        entries = evictions = 0
        for versions in self._models.values():
            for entry in versions.values():
                stats = entry.batcher.response_cache_stats()
                entries += stats["entries"]
                evictions += stats["evictions"]
        gauge("serve.cache.entries").set(entries)
        gauge("serve.cache.evictions").set(evictions)
        plans = plan_cache_stats()
        gauge("serve.plan.cached_plans").set(plans["plans"])
        gauge("serve.plan.arena_bytes").set(plans["arena_bytes"])
        segments = shm_stats()
        gauge("serve.shm.segments").set(segments["segment_count"])
        gauge("serve.shm.bytes").set(segments["total_bytes"])
        workers = alive = restarts = 0
        for versions in self._models.values():
            for entry in versions.values():
                if entry.pool is None:
                    continue
                stats = entry.pool.stats()
                workers += stats["workers"]
                alive += stats["alive"]
                restarts += stats["restarts"]
        gauge("serve.pool.workers").set(workers)
        gauge("serve.pool.alive").set(alive)
        gauge("serve.pool.restart_total").set(restarts)
        if self.jobs is not None:
            stats = self.jobs.stats()
            for state, count in stats["counts"].items():
                gauge(f"serve.jobs.{state}").set(count)
            gauge("serve.jobs.total").set(stats["total"])
            age = stats.get("oldest_checkpoint_age_s")
            gauge("serve.jobs.oldest_checkpoint_age_s").set(
                round(age, 3) if age is not None else 0)
            executor = stats["executor"]
            gauge("serve.jobs.executor_busy").set(int(executor["busy"]))
            gauge("serve.jobs.step_crashes").set(executor["crashes"])
            gauge("serve.jobs.requeued").set(executor["requeued"])

    def access_log(self, record: dict, warn: bool = False) -> None:
        """One structured JSON access-log line on stderr.

        Warning lines (503/504 — the load-shedding outcomes an operator
        must see) are always emitted; info lines only with ``verbose``.
        """
        if not warn and not self.config_verbose:
            return
        record = {"kind": "access", "level": "warning" if warn else "info",
                  "ts_unix_s": round(time.time(), 6), **record}
        print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)

    # -- in-flight accounting -----------------------------------------
    def inflight_inc(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def inflight_dec(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """Bound (host, port) — resolves port 0 to the real ephemeral port."""
        return self._http.server_address[:2]

    def serve_forever(self) -> None:
        """Blocking accept loop; returns after :meth:`shutdown`."""
        try:
            self._http.serve_forever(poll_interval=0.1)
        finally:
            self._stopped.set()

    def start(self) -> "PredictServer":
        """Run the accept loop on a background thread (tests, benches)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True,
                                        name="repro-serve-http")
        self._thread.start()
        return self

    def shutdown(self, drain: bool = True, timeout_s: float | None = None) -> None:
        """Stop accepting, finish in-flight requests, drain the batchers."""
        timeout_s = self.config.request_timeout_s if timeout_s is None else timeout_s
        with span("serve.shutdown", drain=drain):
            self._http.shutdown()          # stops the accept loop
            if drain:
                deadline = time.monotonic() + timeout_s
                while self.inflight > 0 and time.monotonic() < deadline:
                    time.sleep(0.01)
            self._http.server_close()
            if self.jobs is not None:
                # in-flight jobs park back in the queue at their latest
                # checkpoint; the next boot's recover() resumes them
                self.jobs.close(drain=drain, timeout_s=timeout_s)
            for versions in self._models.values():
                for entry in versions.values():
                    entry.close(drain=drain)
            if self.sampler is not None:
                self.sampler.close()
            if self.flight is not None:
                # uninstall the process-global span tap so a later server
                # in the same process (tests) starts with a clean hook
                self.flight.close()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
        self._stopped.set()
