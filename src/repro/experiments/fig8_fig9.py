"""Figs. 8 & 9: qualitative prediction visualizations.

Fig. 8 compares ground-truth vs predicted inhibitor at the top and
bottom resist surfaces (plus the difference map); Fig. 9 compares
vertical (x-z) cuts through a center contact and a corner contact.
This experiment trains an SDM-PEB model, produces the corresponding 2D
arrays, reports the error statistics the paper highlights (|diff|
mostly within 0.1), and renders coarse ASCII heat maps.

Run:  python -m repro.experiments.fig8_fig9 [--quick] [--save PATH.npz]
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core import label_to_inhibitor
from .harness import ExperimentSettings, build_method, prepare_data, train_method


@dataclass
class VisualizationResult:
    """Arrays backing Figs. 8 and 9 for one test clip."""

    truth: np.ndarray           # (nz, ny, nx) rigorous inhibitor
    prediction: np.ndarray      # (nz, ny, nx) SDM-PEB inhibitor
    center_row: int             # y index of the Fig. 9 center cut
    corner_row: int             # y index of the Fig. 9 corner cut

    @property
    def difference(self) -> np.ndarray:
        return self.prediction - self.truth

    def panel(self, which: str) -> dict[str, np.ndarray]:
        """Fig. 8 panels: 'top' or 'bottom' surface maps."""
        index = 0 if which == "top" else -1
        return {"truth": self.truth[index], "prediction": self.prediction[index],
                "difference": self.difference[index]}

    def vertical_cut(self, which: str) -> dict[str, np.ndarray]:
        """Fig. 9 panels: (nz, nx) x-z slices at center/corner contact rows."""
        row = self.center_row if which == "center" else self.corner_row
        return {"truth": self.truth[:, row], "prediction": self.prediction[:, row],
                "difference": self.difference[:, row]}


def _contact_rows(sample, grid) -> tuple[int, int]:
    """y indices of the most central and most cornerward contacts."""
    extent = grid.size_um * 1000.0
    centers = np.array([[c.center_x_nm, c.center_y_nm] for c in sample.contacts])
    distance = np.linalg.norm(centers - extent / 2.0, axis=1)
    center_contact = sample.contacts[int(np.argmin(distance))]
    corner_contact = sample.contacts[int(np.argmax(distance))]
    to_row = lambda c: int(np.clip(c.center_y_nm / grid.dy_nm - 0.5, 0, grid.ny - 1))
    return to_row(center_contact), to_row(corner_contact)


def from_trainer(trainer, test_set, settings: ExperimentSettings,
                 clip_index: int = 0) -> VisualizationResult:
    """Extract the Fig. 8/9 arrays from an already-fitted surrogate."""
    sample = test_set.samples[clip_index]
    label = trainer.predict(sample.acid[None], batch_size=1)[0]
    prediction = label_to_inhibitor(label, settings.config.peb.catalysis_rate)
    center_row, corner_row = _contact_rows(sample, settings.config.grid)
    return VisualizationResult(truth=sample.inhibitor, prediction=prediction,
                               center_row=center_row, corner_row=corner_row)


def run(settings: ExperimentSettings | None = None, clip_index: int = 0,
        verbose: bool = False) -> VisualizationResult:
    """Train SDM-PEB and extract the Fig. 8/9 arrays for one test clip."""
    settings = settings if settings is not None else ExperimentSettings()
    train_set, test_set = prepare_data(settings, verbose=verbose)
    nn.init.seed(settings.init_seed)
    model, loss_config = build_method("SDM-PEB", settings.config.grid)
    trainer = train_method(model, loss_config, train_set, settings, verbose=verbose)
    sample = test_set.samples[clip_index]
    label = trainer.predict(sample.acid[None], batch_size=1)[0]
    prediction = label_to_inhibitor(label, settings.config.peb.catalysis_rate)
    center_row, corner_row = _contact_rows(sample, settings.config.grid)
    return VisualizationResult(truth=sample.inhibitor, prediction=prediction,
                               center_row=center_row, corner_row=corner_row)


_SHADES = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, width: int = 48, lo: float = 0.0,
                  hi: float = 1.0) -> str:
    """Coarse character rendering of a 2D array."""
    rows, cols = values.shape
    step = max(1, cols // width)
    scaled = values[::max(1, rows // 24), ::step]
    normalized = np.clip((scaled - lo) / (hi - lo + 1e-12), 0.0, 1.0)
    indices = np.minimum((normalized * len(_SHADES)).astype(int), len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[i] for i in row) for row in indices)


def format_figures(result: VisualizationResult) -> str:
    lines = []
    diff = np.abs(result.difference)
    lines.append(f"(Fig. 8) |prediction - truth|: mean {diff.mean():.4f}, "
                 f"p99 {np.percentile(diff, 99):.4f}, max {diff.max():.4f}")
    lines.append(f"fraction of voxels within 0.1: {(diff <= 0.1).mean() * 100:.2f}%")
    for which in ("top", "bottom"):
        panel = result.panel(which)
        lines.append(f"\n-- Fig. 8 {which} surface: truth | prediction --")
        truth_map = ascii_heatmap(panel["truth"]).split("\n")
        pred_map = ascii_heatmap(panel["prediction"]).split("\n")
        lines.extend(f"{t}   {p}" for t, p in zip(truth_map, pred_map))
    for which in ("center", "corner"):
        cut = result.vertical_cut(which)
        lines.append(f"\n-- Fig. 9 {which} contact x-z cut: truth | prediction --")
        truth_map = ascii_heatmap(cut["truth"]).split("\n")
        pred_map = ascii_heatmap(cut["prediction"]).split("\n")
        lines.extend(f"{t}   {p}" for t, p in zip(truth_map, pred_map))
    return "\n".join(lines)


def main(argv=None) -> VisualizationResult:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--save", default=None, help="save arrays to this .npz path")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    result = run(settings)
    print(format_figures(result))
    if args.save:
        np.savez_compressed(args.save, truth=result.truth, prediction=result.prediction,
                            difference=result.difference,
                            center_row=result.center_row, corner_row=result.corner_row)
        print(f"\narrays saved to {args.save}")
    return result


if __name__ == "__main__":
    main()
