"""Spectral (DCT) and finite-difference lateral diffusion operators.

The PEB reaction-diffusion system uses zero-flux (Neumann) boundary
conditions in x-y (Eq. 4 of the paper).  The Neumann Laplacian is
diagonalized by the type-II discrete cosine transform, so lateral
diffusion over a time step can be integrated *exactly* (at the level of
the spatial discretization) by one DCT round-trip — this is the default
"rigorous" integrator.  An explicit-Euler finite-difference step is
kept for the solver-mode ablation bench.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as spfft

from repro.config import GridConfig
from repro.runtime.fft import fft_workers


def neumann_laplacian_eigenvalues(n: int, spacing: float) -> np.ndarray:
    """Eigenvalues of the 1D Neumann (zero-flux) discrete Laplacian.

    Under DCT-II, the standard 3-point Laplacian with mirrored boundaries
    has eigenvalues ``-4 sin^2(pi k / 2n) / h^2``.
    """
    k = np.arange(n)
    return -4.0 * np.sin(np.pi * k / (2.0 * n)) ** 2 / spacing ** 2


class LateralDiffusionPropagator:
    """Exact integrator of lateral diffusion on a (nz, ny, nx) field."""

    def __init__(self, grid: GridConfig, diffusivity: float, dt: float):
        self.grid = grid
        self.diffusivity = diffusivity
        self.dt = dt
        lam_y = neumann_laplacian_eigenvalues(grid.ny, grid.dy_nm)
        lam_x = neumann_laplacian_eigenvalues(grid.nx, grid.dx_nm)
        self._factor = np.exp(dt * diffusivity * (lam_y[:, None] + lam_x[None, :]))

    def apply(self, field: np.ndarray) -> np.ndarray:
        """Advance the field by one time step (axes (1, 2) are y, x)."""
        workers = fft_workers()
        coefficients = spfft.dctn(field, axes=(1, 2), type=2, norm="ortho", workers=workers)
        coefficients *= self._factor[None, :, :]
        return spfft.idctn(coefficients, axes=(1, 2), type=2, norm="ortho", workers=workers)


def lateral_step_fdm(field: np.ndarray, diffusivity: float, dt: float,
                     dx: float, dy: float) -> np.ndarray:
    """One explicit-Euler lateral diffusion step with zero-flux boundaries.

    Stability requires ``dt * D * (1/dx^2 + 1/dy^2) <= 1/2``.
    """
    padded = np.pad(field, ((0, 0), (1, 1), (1, 1)), mode="edge")
    lap = (
        (padded[:, 2:, 1:-1] - 2.0 * field + padded[:, :-2, 1:-1]) / dy ** 2
        + (padded[:, 1:-1, 2:] - 2.0 * field + padded[:, 1:-1, :-2]) / dx ** 2
    )
    return field + dt * diffusivity * lap
