"""Batched inference serving: model registry, micro-batcher, HTTP front end.

``repro.serve`` is the deployment shape the paper's pitch implies: a
learned PEB surrogate answering many clip-sized requests in
milliseconds each, instead of the rigorous solver's minutes.  The
subsystem is stdlib + numpy only:

* :mod:`repro.serve.registry` — versioned checkpoint manifests (model
  class, grid, dtype, param count, SHA-256 content hash) wrapping
  ``Module.save/load``, with integrity verification on load;
* :mod:`repro.serve.batcher` — a bounded queue coalescing concurrent
  single-clip requests into batched forward passes under a
  max-batch/max-wait policy, with deadlines, backpressure and an LRU
  response cache;
* :mod:`repro.serve.server` — ``POST /v1/predict``, ``GET /v1/models``,
  ``GET /healthz`` and ``GET /metrics`` on a threading HTTP server with
  graceful draining shutdown;
* :mod:`repro.serve.jobs` — the async job queue behind ``/v1/jobs``:
  long-running checkpointed work (gradient-based OPC/ILT) submitted
  over HTTP, surviving worker crashes and server restarts
  (``--jobs-dir``; see ``docs/jobs.md``);
* :mod:`repro.serve.shm` / :mod:`repro.serve.pool` /
  :mod:`repro.serve.router` — the multi-process backend: weights
  published once into shared memory, N forked workers each owning a
  core and its own plan cache, and a content-hash shard router keeping
  the per-shard response caches coherent (``--serve-workers`` /
  ``REPRO_SERVE_WORKERS``).

Entry point: ``python -m repro.cli serve --ckpt model.npz``; load-test
with ``benchmarks/run_serve_bench.py``.  See ``docs/serving.md``.
"""

from .batcher import (
    BatcherClosedError, BatchPolicy, DeadlineExceededError, MicroBatcher,
    QueueFullError, ServeError, content_hash,
)
from .engine import (
    ENGINES, PlanExecutor, clear_plan_cache, plan_cache_stats, resolve_engine,
)
from .jobs import JobService
from .pool import PoolConfig, WorkerCrashedError, WorkerPool, resolve_serve_workers
from .registry import (
    IntegrityError, ModelManifest, ModelRegistry, RegistryError,
    import_legacy_sidecar, load_checkpoint, manifest_path_for, read_manifest,
    save_checkpoint, verify_checkpoint,
)
from .router import ShardRouter, shard_for
from .server import (
    DEFAULT_LATENCY_BUCKETS, PredictServer, ServeConfig, ServedModel,
    escape_label_value, render_prometheus,
)
from .shm import (
    ShmSpec, WeightStore, attach_views, live_segments, publish_weights,
    release_weights, segment_name, shm_stats,
)

__all__ = [
    "ENGINES", "PlanExecutor", "resolve_engine", "plan_cache_stats",
    "clear_plan_cache",
    "BatchPolicy", "MicroBatcher", "ServeError", "QueueFullError",
    "DeadlineExceededError", "BatcherClosedError", "content_hash",
    "ModelManifest", "ModelRegistry", "RegistryError", "IntegrityError",
    "save_checkpoint", "load_checkpoint", "read_manifest", "verify_checkpoint",
    "manifest_path_for", "import_legacy_sidecar",
    "PredictServer", "ServeConfig", "ServedModel", "render_prometheus",
    "escape_label_value", "DEFAULT_LATENCY_BUCKETS", "JobService",
    "PoolConfig", "WorkerPool", "WorkerCrashedError", "resolve_serve_workers",
    "ShardRouter", "shard_for",
    "ShmSpec", "WeightStore", "segment_name", "publish_weights",
    "release_weights", "attach_views", "live_segments", "shm_stats",
]
