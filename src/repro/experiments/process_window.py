"""Process-window study (extension): CD through dose and focus.

A classic lithography characterization the rigorous substrate makes
possible: sweep exposure dose and focus offset, run the full
mask→optics→PEB→develop chain at each condition, and report mean
printed CD — Bossung-style curves — plus the dose latitude and depth
of focus at a ±10% CD specification.  Not a table in the paper, but
the kind of downstream study the SDM-PEB surrogate is meant to
accelerate (DESIGN.md lists it as an extension bench).

Run:  python -m repro.experiments.process_window [--quick]
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import GridConfig, LithoConfig
from repro.litho import (
    aerial_image_stack, contact_cds, development_arrival, generate_clip,
    initial_photoacid, RigorousPEBSolver,
)


@dataclass
class ProcessWindowResult:
    """Mean printed CD (nm) over a dose x focus grid."""

    doses_mj: np.ndarray
    focus_offsets_nm: np.ndarray
    mean_cd_nm: np.ndarray        # (num_doses, num_foci); NaN = nothing printed
    target_cd_nm: float

    def dose_latitude(self, tolerance: float = 0.1) -> float:
        """Fractional dose range keeping CD within ±tolerance at best focus."""
        best_focus = int(np.nanargmin(
            np.nanmean(np.abs(self.mean_cd_nm - self.target_cd_nm), axis=0)))
        column = self.mean_cd_nm[:, best_focus]
        in_spec = np.abs(column - self.target_cd_nm) <= tolerance * self.target_cd_nm
        if not in_spec.any():
            return 0.0
        doses = self.doses_mj[in_spec]
        return float((doses.max() - doses.min()) / self.target_dose)

    @property
    def target_dose(self) -> float:
        return float(np.median(self.doses_mj))

    def depth_of_focus(self, tolerance: float = 0.1) -> float:
        """Focus range (nm) keeping CD within ±tolerance at centre dose."""
        dose_index = len(self.doses_mj) // 2
        row = self.mean_cd_nm[dose_index]
        in_spec = np.abs(row - self.target_cd_nm) <= tolerance * self.target_cd_nm
        if not in_spec.any():
            return 0.0
        foci = self.focus_offsets_nm[in_spec]
        return float(foci.max() - foci.min())


def run(config: LithoConfig | None = None, seed: int = 0,
        dose_span: float = 0.3, num_doses: int = 5,
        focus_span_nm: float = 120.0, num_foci: int = 5,
        time_step_s: float = 0.5) -> ProcessWindowResult:
    """Sweep dose and focus for one clip; returns the CD matrix."""
    config = config if config is not None else LithoConfig(
        grid=GridConfig(size_um=1.0, nx=32, ny=32, nz=4))
    clip = generate_clip(seed, grid=config.grid)
    nominal_dose = config.exposure.dose_mj_cm2
    nominal_focus = config.optics.focus_offset_nm
    doses = nominal_dose * np.linspace(1.0 - dose_span, 1.0 + dose_span, num_doses)
    foci = nominal_focus + np.linspace(-focus_span_nm / 2.0, focus_span_nm / 2.0, num_foci)
    target = float(np.mean([c.width_nm for c in clip.contacts]))
    cd_matrix = np.full((num_doses, num_foci), np.nan)
    for j, focus in enumerate(foci):
        optics = replace(config.optics, focus_offset_nm=float(focus))
        aerial = aerial_image_stack(clip.pattern, config.grid, optics)
        for i, dose in enumerate(doses):
            exposure = replace(config.exposure, dose_mj_cm2=float(dose))
            acid = initial_photoacid(aerial, exposure)
            solver = RigorousPEBSolver(config.grid, config.peb,
                                       splitting="strang", time_step_s=time_step_s)
            inhibitor = solver.solve(acid).inhibitor
            arrival = development_arrival(inhibitor, config.grid, config.develop)
            cds = contact_cds(arrival, clip.contacts, config.grid, config.develop)
            opened = cds["x"] > 0
            if opened.any():
                cd_matrix[i, j] = float(np.mean(
                    np.concatenate([cds["x"][opened], cds["y"][opened]])))
    return ProcessWindowResult(doses_mj=doses, focus_offsets_nm=foci,
                               mean_cd_nm=cd_matrix, target_cd_nm=target)


def format_result(result: ProcessWindowResult) -> str:
    corner = "dose / focus"
    lines = [f"mean printed CD (nm); design mean {result.target_cd_nm:.1f} nm",
             f"{corner:>14}" + "".join(
                 f"{f:>9.0f}" for f in result.focus_offsets_nm)]
    for dose, row in zip(result.doses_mj, result.mean_cd_nm):
        cells = "".join(f"{cd:>9.1f}" if np.isfinite(cd) else f"{'--':>9}" for cd in row)
        lines.append(f"{dose:>12.1f}  {cells}")
    lines.append(f"dose latitude (±10% CD): {result.dose_latitude() * 100:.0f}%")
    lines.append(f"depth of focus (±10% CD): {result.depth_of_focus():.0f} nm")
    return "\n".join(lines)


def main(argv=None) -> ProcessWindowResult:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    kwargs = dict(num_doses=3, num_foci=3) if args.quick else {}
    result = run(**kwargs)
    print(format_result(result))
    return result


if __name__ == "__main__":
    main()
