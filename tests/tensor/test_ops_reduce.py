"""Gradient and value checks for reduction primitives."""

import numpy as np

from repro import tensor as T
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(2)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestSumMean:
    def test_sum_all_grad(self):
        gradcheck(lambda ts: ts[0].sum(), [rand(2, 3)])

    def test_sum_axis_grad(self):
        w = rand(2)
        gradcheck(lambda ts: (ts[0].sum(axis=1) * w).sum(), [rand(2, 3)])

    def test_sum_axes_tuple_grad(self):
        w = rand(3)
        gradcheck(lambda ts: (ts[0].sum(axis=(0, 2)) * w).sum(), [rand(2, 3, 4)])

    def test_sum_keepdims_grad(self):
        w = rand(2, 1)
        gradcheck(lambda ts: (ts[0].sum(axis=1, keepdims=True) * w).sum(), [rand(2, 3)])

    def test_sum_negative_axis(self):
        x = T.Tensor(rand(2, 3))
        assert np.allclose(x.sum(axis=-1).data, x.data.sum(axis=-1))

    def test_mean_all_grad(self):
        gradcheck(lambda ts: ts[0].mean(), [rand(2, 3)])

    def test_mean_axis_grad(self):
        w = rand(3)
        gradcheck(lambda ts: (ts[0].mean(axis=0) * w).sum(), [rand(2, 3)])

    def test_mean_value(self):
        x = rand(3, 4)
        assert np.allclose(T.Tensor(x).mean(axis=1).data, x.mean(axis=1))


class TestMaxMin:
    def test_max_all_grad(self):
        gradcheck(lambda ts: ts[0].max(), [rand(2, 3)])

    def test_max_axis_grad(self):
        w = rand(2)
        gradcheck(lambda ts: (ts[0].max(axis=1) * w).sum(), [rand(2, 3)])

    def test_max_value(self):
        x = rand(4, 5)
        assert np.allclose(T.Tensor(x).max(axis=0).data, x.max(axis=0))

    def test_max_tie_splits_gradient(self):
        x = T.Tensor([2.0, 2.0, 1.0], requires_grad=True)
        x.max().backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])

    def test_min_grad(self):
        gradcheck(lambda ts: ts[0].min(), [rand(2, 3)])

    def test_min_value(self):
        x = rand(4)
        assert np.isclose(T.Tensor(x).min().data, x.min())


class TestVar:
    def test_var_value(self):
        x = rand(3, 4)
        assert np.allclose(T.Tensor(x).var(axis=1).data, x.var(axis=1))

    def test_var_grad(self):
        gradcheck(lambda ts: ts[0].var(), [rand(2, 3)])

    def test_var_axis_grad(self):
        w = rand(3)
        gradcheck(lambda ts: (ts[0].var(axis=0) * w).sum(), [rand(4, 3)])
