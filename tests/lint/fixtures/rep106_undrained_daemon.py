"""REP106 fixture: daemon thread with no join/drain path (line 11)."""

import threading


class Flusher:
    """Background flusher whose backlog dies with the interpreter."""

    def __init__(self):
        self._pending = []
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while self._pending:
            self._pending.pop()
