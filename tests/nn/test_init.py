"""Weight-initialization schemes."""

import numpy as np

from repro.nn import init


class TestSeeding:
    def test_seed_reproducible(self):
        init.seed(7)
        a = init.normal((4, 4))
        init.seed(7)
        b = init.normal((4, 4))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        init.seed(1)
        a = init.normal((4, 4))
        init.seed(2)
        b = init.normal((4, 4))
        assert not np.array_equal(a, b)

    def test_get_rng_is_current(self):
        init.seed(3)
        rng = init.get_rng()
        assert rng is init.get_rng()


class TestDistributions:
    def test_kaiming_bound(self):
        init.seed(0)
        fan_in = 64
        w = init.kaiming_uniform((1000,), fan_in=fan_in)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / fan_in)
        assert np.all(np.abs(w) <= bound)
        assert np.abs(w).max() > 0.8 * bound  # actually fills the range

    def test_xavier_bound(self):
        init.seed(0)
        w = init.xavier_uniform((1000,), fan_in=32, fan_out=64)
        bound = np.sqrt(6.0 / 96.0)
        assert np.all(np.abs(w) <= bound)

    def test_normal_std(self):
        init.seed(0)
        w = init.normal((10000,), std=0.05)
        assert abs(w.std() - 0.05) < 0.005

    def test_zeros_ones(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
        assert np.all(init.ones((3, 3)) == 1.0)

    def test_uniform_range(self):
        init.seed(0)
        w = init.uniform((1000,), -2.0, 5.0)
        assert w.min() >= -2.0 and w.max() <= 5.0


class TestModelDeterminism:
    def test_same_seed_same_model(self):
        from repro import nn
        from repro.tensor import Tensor

        init.seed(11)
        a = nn.Linear(8, 8)
        init.seed(11)
        b = nn.Linear(8, 8)
        x = Tensor(np.ones((1, 8)))
        assert np.array_equal(a(x).data, b(x).data)
