"""Black-box flight recorder: bounded recent-history rings + crash dumps.

Traces answer "what happened" only if tracing was on *before* the
incident.  The flight recorder closes that gap the way an aircraft black
box does: it is always recording into fixed-size ring buffers — recent
spans (tapped from :mod:`repro.obs.trace` via the flight hook, even when
the JSONL sink is off), structured log lines, and per-request summaries
— and dumps everything to a timestamped JSON file when something goes
wrong:

* ``SIGQUIT`` (``kill -QUIT <pid>``) — operator-triggered snapshot of a
  live server (the CLI installs the handler);
* an unhandled exception escaping a serving lane (batcher loop, pool
  monitor, jobs executor) — via :func:`FlightRecorder.record_crash`;
* worker-crash detection in the pool monitor.

Dumps are atomic (write-tmp + ``os.replace``) so a dump racing a reader
or a second signal never yields a torn file, and rate-limited so a
crash-looping worker cannot fill the disk.  ``repro flightdump FILE``
renders one for humans.

Memory bound: every buffer is a ``collections.deque(maxlen=...)``; with
defaults (256 spans, 256 logs, 128 requests) the recorder holds a few
hundred small dicts regardless of uptime.  Recording appends to a deque
under the GIL — no locks on the hot path, no simulation state touched.
"""

from __future__ import annotations

import collections
import json
import os
import threading
import time
import traceback

from .metrics import counter, metrics_snapshot
from .trace import set_flight_hook

__all__ = ["FlightRecorder", "current_recorder", "record_lane_crash",
           "render_flight_dump", "load_flight_dump"]

FLIGHT_DUMP_VERSION = 1

#: the process's installed recorder (what lane crash hooks reach for)
_CURRENT: "FlightRecorder | None" = None


def current_recorder() -> "FlightRecorder | None":
    """The installed recorder, or None when no black box is recording."""
    return _CURRENT


def record_lane_crash(lane: str, exc: BaseException) -> str | None:
    """Record an unhandled lane exception on the installed recorder.

    The one-liner the serving lanes (batcher loop, pool monitor, jobs
    executor) call from their outermost except clause before re-raising;
    a no-op when no recorder is installed.  Never raises.
    """
    recorder = _CURRENT
    if recorder is None:
        return None
    try:
        return recorder.record_crash(lane, exc)
    except Exception:  # noqa: BLE001 - the black box must never turn a
        # lane crash into a different crash
        return None


class FlightRecorder:
    """Always-on bounded recorder with atomic crash dumps.

    ``install()`` taps the span stream; ``record_log`` / ``record_request``
    are called by the serving layer; ``dump(reason)`` writes
    ``flightdump-<utc>-<pid>.json`` into ``dump_dir``.  One recorder per
    process; ``close()`` removes the tap (tests install/uninstall around
    each case so recorders never leak across tests).
    """

    def __init__(self, dump_dir: str | os.PathLike = ".",
                 max_spans: int = 256, max_logs: int = 256,
                 max_requests: int = 128,
                 min_dump_interval_s: float = 30.0):
        self.dump_dir = os.fspath(dump_dir)
        self._spans: collections.deque = collections.deque(maxlen=max_spans)
        self._logs: collections.deque = collections.deque(maxlen=max_logs)
        self._requests: collections.deque = collections.deque(
            maxlen=max_requests)
        self._crashes: collections.deque = collections.deque(maxlen=32)
        self.min_dump_interval_s = float(min_dump_interval_s)
        self._state_lock = threading.Lock()
        self._dump_lock = threading.Lock()
        self._last_dump_s = 0.0
        self._started_s = time.time()
        self._installed = False
        #: optional callables merged into the dump at write time
        #: (the server registers health/alert providers here)
        self.context_providers: dict[str, object] = {}

    # -- lifecycle ------------------------------------------------------
    def install(self) -> "FlightRecorder":
        """Start tapping the span stream and become the process's
        recorder (idempotent; a newer install wins)."""
        global _CURRENT
        with self._state_lock:
            if not self._installed:
                set_flight_hook(self._on_span)
                self._installed = True
            _CURRENT = self
        return self

    def close(self) -> None:
        """Remove the span tap; retained buffers stay readable."""
        global _CURRENT
        with self._state_lock:
            if self._installed:
                set_flight_hook(None)
                self._installed = False
            if _CURRENT is self:
                _CURRENT = None

    # -- recording (hot paths; must never raise) ------------------------
    def _on_span(self, payload: dict) -> None:
        self._spans.append(payload)

    def record_log(self, level: str, message: str, **fields) -> None:
        """Append one structured log line to the ring."""
        entry = {"t_wall_s": round(time.time(), 3), "level": level,
                 "message": message}
        if fields:
            entry["fields"] = fields
        self._logs.append(entry)

    def record_request(self, summary: dict) -> None:
        """Append one per-request summary (method/path/status/latency)."""
        self._requests.append(summary)

    # -- dumping --------------------------------------------------------
    def record_crash(self, lane: str, exc: BaseException,
                     dump: bool = True) -> str | None:
        """Record an unhandled lane exception; optionally dump.

        Returns the dump path (None when rate-limited or dump=False).
        The caller re-raises — the recorder observes, it does not
        swallow.
        """
        entry = {
            "t_wall_s": round(time.time(), 3),
            "lane": lane,
            "error": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exception(
                type(exc), exc, exc.__traceback__),
        }
        self._crashes.append(entry)
        counter(f"flight.crashes.{lane}").inc()
        self.record_log("error", f"unhandled exception in {lane} lane",
                        error=type(exc).__name__)
        if not dump:
            return None
        return self.dump(reason=f"crash:{lane}")

    def snapshot(self, reason: str) -> dict:
        """The full dump payload, JSON-ready."""
        body = {
            "version": FLIGHT_DUMP_VERSION,
            "reason": reason,
            "pid": os.getpid(),
            "t_wall_s": round(time.time(), 3),
            "uptime_s": round(time.time() - self._started_s, 3),
            "spans": list(self._spans),
            "logs": list(self._logs),
            "requests": list(self._requests),
            "crashes": list(self._crashes),
            "metrics": metrics_snapshot(),
        }
        for key, provider in list(self.context_providers.items()):
            try:
                body[key] = provider() if callable(provider) else provider
            except Exception as exc:  # noqa: BLE001 - a broken provider
                # must not stop the dump the operator is waiting for
                body[key] = {"error": f"{type(exc).__name__}: {exc}"}
        return body

    def dump(self, reason: str, force: bool = False) -> str | None:
        """Atomically write a flight dump; returns its path.

        Rate-limited by ``min_dump_interval_s`` unless ``force`` (the
        SIGQUIT path forces — an operator asked for it explicitly).
        """
        now = time.time()
        with self._dump_lock:
            if not force and \
                    now - self._last_dump_s < self.min_dump_interval_s:
                return None
            self._last_dump_s = now
            stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(now))
            path = os.path.join(
                self.dump_dir, f"flightdump-{stamp}-{os.getpid()}.json")
            data = json.dumps(self.snapshot(reason), indent=1,
                              sort_keys=True, default=str).encode("utf-8")
            tmp = f"{path}.tmp.{os.getpid()}"
            try:
                fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC,
                             0o644)
                try:
                    os.write(fd, data)
                    os.fsync(fd)
                finally:
                    os.close(fd)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                return None
        self.record_log("info", "flight dump written",
                        path=path, reason=reason)
        return path

    def stats(self) -> dict:
        return {
            "installed": self._installed,
            "spans": len(self._spans),
            "logs": len(self._logs),
            "requests": len(self._requests),
            "crashes": len(self._crashes),
            "uptime_s": round(time.time() - self._started_s, 3),
        }


def load_flight_dump(path: str | os.PathLike) -> dict:
    """Parse a flight dump file (raises ValueError on malformed input)."""
    with open(path, "rb") as handle:
        try:
            body = json.loads(handle.read().decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"not a flight dump: {path}: {exc}") from exc
    if not isinstance(body, dict) or "version" not in body:
        raise ValueError(f"not a flight dump: {path}: missing version")
    return body


def _format_ts(t_wall_s: float) -> str:
    return time.strftime("%H:%M:%S", time.gmtime(t_wall_s)) + \
        f".{int((t_wall_s % 1) * 1000):03d}"


def render_flight_dump(body: dict, max_rows: int = 20) -> str:
    """Human-readable rendering of a dump (the ``repro flightdump`` CLI)."""
    lines = [
        f"flight dump v{body.get('version')}  "
        f"reason={body.get('reason')}  pid={body.get('pid')}  "
        f"uptime={body.get('uptime_s', 0.0):.1f}s",
    ]
    alerts = body.get("alerts")
    if isinstance(alerts, dict):
        lines.append(f"\nalerts: {alerts.get('state', '?')}")
        for slo in alerts.get("slos", []):
            lines.append(
                f"  {slo.get('state', '?'):>7}  {slo.get('name')}"
                f"  burn_fast={slo.get('burn_fast')}"
                f"  burn_slow={slo.get('burn_slow')}"
                f"  objective={slo.get('objective')}")
    crashes = body.get("crashes", [])
    if crashes:
        lines.append(f"\ncrashes ({len(crashes)}):")
        for crash in crashes[-max_rows:]:
            lines.append(f"  [{_format_ts(crash.get('t_wall_s', 0.0))}] "
                         f"{crash.get('lane')}: {crash.get('error')}: "
                         f"{crash.get('message')}")
            for frame in crash.get("traceback", [])[-3:]:
                lines.extend("      " + fl
                             for fl in frame.rstrip().splitlines())
    requests = body.get("requests", [])
    lines.append(f"\nlast requests ({len(requests)} retained):")
    for req in requests[-max_rows:]:
        lines.append(
            f"  [{_format_ts(req.get('t_wall_s', 0.0))}] "
            f"{req.get('status', '?'):>3} {req.get('method', '?'):<4} "
            f"{req.get('path', '?'):<24} {req.get('dur_ms', 0.0):8.1f}ms"
            + (f"  rid={req['request_id']}" if req.get("request_id") else ""))
    spans = body.get("spans", [])
    lines.append(f"\nrecent spans ({len(spans)} retained):")
    for sp in spans[-max_rows:]:
        lines.append(
            f"  [{_format_ts(sp.get('t_wall_s', 0.0))}] "
            f"{'  ' * int(sp.get('depth', 0))}{sp.get('name')}  "
            f"{sp.get('dur_s', 0.0) * 1e3:.2f}ms  pid={sp.get('pid')}"
            + ("  ERROR=" + sp["attrs"]["error"]
               if sp.get("attrs", {}).get("error") else ""))
    logs = body.get("logs", [])
    if logs:
        lines.append(f"\nrecent logs ({len(logs)} retained):")
        for entry in logs[-max_rows:]:
            lines.append(
                f"  [{_format_ts(entry.get('t_wall_s', 0.0))}] "
                f"{entry.get('level', '?'):<5} {entry.get('message')}"
                + (f"  {entry['fields']}" if entry.get("fields") else ""))
    return "\n".join(lines)
