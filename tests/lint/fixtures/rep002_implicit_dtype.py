"""REP002 fixture: one dtype-less hot-path allocation (line 13).

Linted under the virtual path ``src/repro/litho/fixture.py`` so the
hot-path scoping applies.
"""

import numpy as np


def alloc(n):
    good = np.zeros(n, dtype=np.float64)
    like = np.zeros_like(good)  # *_like inherits dtype: allowed
    bad = np.empty(n)
    return good + like + bad
