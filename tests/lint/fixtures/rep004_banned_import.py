"""REP004 fixture: one banned framework import (line 8)."""

import numpy as np
import scipy.ndimage  # numpy/scipy are the sanctioned stack


def upsample(x):
    import torch

    return torch.nn.functional.interpolate(torch.from_numpy(np.asarray(x)))


def blur(x):
    return scipy.ndimage.gaussian_filter(x, 1.0)
