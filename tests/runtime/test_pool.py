"""Worker-count resolution, the process pool, and the propagator caches."""

import numpy as np
import pytest

from repro.config import GridConfig
from repro.runtime import (
    cached_lateral_propagator, cached_z_propagator, clear_propagator_caches,
    fft_workers, parallel_map, propagator_cache_info, resolve_workers,
    set_fft_workers,
)
from repro.runtime import pool as pool_module


def _double(x):
    """Module-level so it pickles into pool workers."""
    return 2 * x


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_variable_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers() == 5

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(pool_module.os, "cpu_count", lambda: 6)
        assert resolve_workers() == 6

    @pytest.mark.parametrize("bad", ["0", "-2", "two"])
    def test_bad_env_raises(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_WORKERS", bad)
        with pytest.raises(ValueError):
            resolve_workers()

    def test_nonpositive_argument_raises(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestParallelMap:
    def test_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(_double, items, workers=3) == [2 * i for i in items]

    def test_serial_matches_parallel(self):
        items = [1.5, -2.0, 7.25]
        assert parallel_map(_double, items, workers=1) == \
            parallel_map(_double, items, workers=3)

    def test_workers_one_never_spawns(self, monkeypatch):
        def forbid(*args, **kwargs):
            raise AssertionError("workers=1 must not create a pool")

        monkeypatch.setattr(pool_module.multiprocessing, "get_context", forbid)
        assert parallel_map(_double, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_single_item_never_spawns(self, monkeypatch):
        def forbid(*args, **kwargs):
            raise AssertionError("a single task must not create a pool")

        monkeypatch.setattr(pool_module.multiprocessing, "get_context", forbid)
        assert parallel_map(_double, [21], workers=8) == [42]

    def test_fork_unavailable_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setattr(pool_module, "fork_available", lambda: False)
        assert parallel_map(_double, [1, 2, 3], workers=4) == [2, 4, 6]

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        class BrokenContext:
            def Pool(self, *args, **kwargs):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(pool_module.multiprocessing, "get_context",
                            lambda method: BrokenContext())
        assert parallel_map(_double, [1, 2, 3], workers=4) == [2, 4, 6]


class TestFFTWorkers:
    def test_override_round_trip(self):
        set_fft_workers(3)
        try:
            assert fft_workers() == 3
        finally:
            set_fft_workers(None)

    def test_env_variable(self, monkeypatch):
        set_fft_workers(None)
        monkeypatch.setenv("REPRO_FFT_WORKERS", "2")
        assert fft_workers() == 2

    def test_nonpositive_override_raises(self):
        with pytest.raises(ValueError):
            set_fft_workers(0)

    def test_reset_restores_policy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FFT_WORKERS", raising=False)
        set_fft_workers(None)
        assert fft_workers() >= 1


class TestPropagatorCache:
    def test_same_key_returns_same_object(self):
        clear_propagator_caches()
        grid = GridConfig(size_um=1.0, nx=8, ny=8, nz=2)
        first = cached_lateral_propagator(grid, 1e4, 0.5)
        second = cached_lateral_propagator(grid, 1e4, 0.5)
        assert first is second
        info = propagator_cache_info()["lateral"]
        assert info["hits"] == 1 and info["misses"] == 1

    def test_different_key_is_a_miss(self):
        clear_propagator_caches()
        grid = GridConfig(size_um=1.0, nx=8, ny=8, nz=2)
        a = cached_z_propagator(grid, 1e4, 5.0, 1.0, 0.5)
        b = cached_z_propagator(grid, 1e4, 5.0, 1.0, 0.25)
        assert a is not b
        assert propagator_cache_info()["z"]["misses"] == 2

    def test_cached_operator_matches_fresh(self):
        clear_propagator_caches()
        from repro.litho.dct import LateralDiffusionPropagator

        grid = GridConfig(size_um=1.0, nx=8, ny=8, nz=2)
        rng = np.random.default_rng(3)
        volume = rng.random(grid.shape)
        cached = cached_lateral_propagator(grid, 2e4, 0.25)
        fresh = LateralDiffusionPropagator(grid, 2e4, 0.25)
        assert np.array_equal(cached.apply(volume), fresh.apply(volume))
