"""Label transform and the three loss terms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import label, losses
from repro.tensor import Tensor

K_C = 0.9
RNG = np.random.default_rng(17)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestLabelTransform:
    def test_roundtrip(self):
        inhibitor = RNG.uniform(0.01, 0.99, size=(4, 8, 8))
        assert label.roundtrip_error(inhibitor, K_C) < 1e-10

    def test_monotone(self):
        inhibitor = np.linspace(0.01, 0.99, 50)
        y = label.inhibitor_to_label(inhibitor, K_C)
        assert np.all(np.diff(y) > 0.0)

    def test_known_value(self):
        # [I] = exp(-k_c) gives -ln(I) = k_c, so Y = -ln(1) = 0.
        inhibitor = np.array([np.exp(-K_C)])
        assert np.isclose(label.inhibitor_to_label(inhibitor, K_C)[0], 0.0)

    def test_extremes_finite(self):
        y = label.inhibitor_to_label(np.array([0.0, 1.0]), K_C)
        assert np.all(np.isfinite(y))

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1e-6, 1.0 - 1e-6))
    def test_property_inverse(self, value):
        y = label.inhibitor_to_label(np.array([value]), K_C)
        back = label.label_to_inhibitor(y, K_C)
        assert np.isclose(back[0], value, rtol=1e-9)


class TestMaxSE:
    def test_value(self):
        pred = Tensor(np.array([[1.0, 5.0], [2.0, 2.0]]))
        target = Tensor(np.array([[1.0, 2.0], [2.0, 2.0]]))
        assert np.isclose(losses.max_squared_error(pred, target).data, 9.0)

    def test_zero_at_match(self):
        x = Tensor(rand(3, 3))
        assert np.isclose(losses.max_squared_error(x, x.copy()).data, 0.0)

    def test_grad_reaches_worst_voxel_only(self):
        pred = Tensor(np.array([0.0, 3.0, 1.0]), requires_grad=True)
        target = Tensor(np.zeros(3))
        losses.max_squared_error(pred, target).backward()
        assert pred.grad[0] == 0.0 and pred.grad[2] == 0.0 and pred.grad[1] != 0.0


class TestFocalLoss:
    def test_gamma_zero_is_squared_error(self):
        pred, target = Tensor(rand(2, 3)), Tensor(rand(2, 3))
        focal = losses.PEBFocalLoss(gamma=0.0, reduction="mean")(pred, target)
        mse = ((pred.data - target.data) ** 2).mean()
        assert np.isclose(float(focal.data), mse)

    def test_gamma_one_weights_by_abs_error(self):
        pred, target = Tensor(np.array([2.0, 0.1])), Tensor(np.zeros(2))
        out = losses.PEBFocalLoss(gamma=1.0, reduction="sum")(pred, target)
        assert np.isclose(float(out.data), 2.0 ** 3 + 0.1 ** 3)

    def test_focuses_on_hard_examples(self):
        """Relative gradient on a large error grows with gamma."""
        def grad_ratio(gamma):
            pred = Tensor(np.array([1.0, 0.1]), requires_grad=True)
            losses.PEBFocalLoss(gamma=gamma, reduction="sum")(pred, Tensor(np.zeros(2))).backward()
            return pred.grad[0] / pred.grad[1]

        assert grad_ratio(2.0) > grad_ratio(0.0)

    def test_sum_vs_mean(self):
        pred, target = Tensor(rand(2, 5)), Tensor(rand(2, 5))
        total = losses.PEBFocalLoss(reduction="sum")(pred, target)
        mean = losses.PEBFocalLoss(reduction="mean")(pred, target)
        assert np.isclose(float(total.data), float(mean.data) * 10)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            losses.PEBFocalLoss(reduction="median")
        with pytest.raises(ValueError):
            losses.PEBFocalLoss(gamma=-1.0)


class TestDepthDivergence:
    def test_zero_for_identical(self):
        vol = Tensor(rand(2, 4, 5, 5))
        out = losses.DepthDivergenceRegularization()(vol, vol.copy())
        assert np.isclose(float(out.data), 0.0, atol=1e-12)

    def test_positive_for_different(self):
        a, b = Tensor(rand(1, 4, 5, 5)), Tensor(rand(1, 4, 5, 5))
        out = losses.DepthDivergenceRegularization()(a, b)
        assert float(out.data) > 0.0

    def test_single_layer_returns_zero(self):
        a, b = Tensor(rand(1, 1, 4, 4)), Tensor(rand(1, 1, 4, 4))
        assert float(losses.DepthDivergenceRegularization()(a, b).data) == 0.0

    def test_insensitive_to_constant_offset(self):
        """Adding a constant per layer pair leaves differences' softmax intact
        only if the offset is uniform over (H, W) and equal across layers."""
        a = Tensor(rand(1, 3, 4, 4))
        shifted = Tensor(a.data + 5.0)
        out = losses.DepthDivergenceRegularization()(a, shifted)
        assert np.isclose(float(out.data), 0.0, atol=1e-10)

    def test_gradient_flows(self):
        a = Tensor(rand(1, 3, 4, 4), requires_grad=True)
        losses.DepthDivergenceRegularization()(a, Tensor(rand(1, 3, 4, 4))).backward()
        assert a.grad is not None and np.any(a.grad != 0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            losses.DepthDivergenceRegularization()(Tensor(rand(1, 3, 4, 4)), Tensor(rand(1, 3, 4, 5)))

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            losses.DepthDivergenceRegularization(temperature=0.0)


class TestCombinedLoss:
    def test_components_present(self):
        loss = losses.SDMPEBLoss()
        terms = loss.components(Tensor(rand(1, 3, 4, 4)), Tensor(rand(1, 3, 4, 4)))
        assert set(terms) == {"maxse", "focal", "divergence", "total"}

    def test_total_is_weighted_sum(self):
        cfg = losses.LossConfig(alpha=2.0, beta=0.5)
        loss = losses.SDMPEBLoss(cfg)
        pred, target = Tensor(rand(1, 3, 4, 4)), Tensor(rand(1, 3, 4, 4))
        terms = loss.components(pred, target)
        expected = (float(terms["maxse"].data) + 2.0 * float(terms["focal"].data)
                    + 0.5 * float(terms["divergence"].data))
        assert np.isclose(float(terms["total"].data), expected)

    def test_ablation_without_focal(self):
        cfg = losses.LossConfig(use_focal=False)
        terms = losses.SDMPEBLoss(cfg).components(Tensor(rand(1, 3, 4, 4)), Tensor(rand(1, 3, 4, 4)))
        assert "focal" not in terms

    def test_ablation_without_divergence(self):
        cfg = losses.LossConfig(use_divergence=False)
        terms = losses.SDMPEBLoss(cfg).components(Tensor(rand(1, 3, 4, 4)), Tensor(rand(1, 3, 4, 4)))
        assert "divergence" not in terms

    def test_all_disabled_raises(self):
        cfg = losses.LossConfig(use_maxse=False, use_focal=False, use_divergence=False)
        with pytest.raises(ValueError):
            losses.SDMPEBLoss(cfg)(Tensor(rand(1, 2, 2, 2)), Tensor(rand(1, 2, 2, 2)))
