"""Convolution parameter matrix: strides x paddings x groups gradchecks.

The conv kernels back every model in the repo; this sweep pins their
gradients across the parameter combinations the models actually use.
"""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import ops_nn
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(67)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestConv3dParameterMatrix:
    @pytest.mark.parametrize("stride,padding,groups,cin,cout", [
        ((1, 1, 1), (1, 1, 1), 1, 2, 2),    # same-pad unit stride (ResidualBlock)
        ((1, 2, 2), (1, 1, 1), 1, 2, 2),    # plane downsample (patch merging)
        ((1, 4, 4), (0, 3, 3), 1, 1, 2),    # stage-1 embedding footprint
        ((1, 1, 1), (1, 1, 1), 2, 2, 4),    # grouped
        ((1, 1, 1), (1, 1, 1), 4, 4, 4),    # depthwise
        ((2, 2, 2), (0, 0, 0), 1, 1, 1),    # valid strided
    ])
    def test_gradcheck(self, stride, padding, groups, cin, cout):
        kernel = (3, 3, 3)
        x = rand(1, cin, 5, 8, 8)
        w = rand(cout, cin // groups, *kernel)
        gradcheck(
            lambda ts: T.conv3d(ts[0], ts[1], stride=stride, padding=padding,
                                groups=groups).sum(),
            [x, w],
        )

    def test_asymmetric_kernel(self):
        """The (1, k, k) kernels TEMPO-resist uses for per-slice 2D convs."""
        gradcheck(
            lambda ts: T.conv3d(ts[0], ts[1], padding=(0, 1, 1)).sum(),
            [rand(1, 2, 3, 5, 5), rand(2, 2, 1, 3, 3)],
        )

    def test_output_sizes_match_formula(self):
        for size, k, s, p in [(8, 3, 1, 1), (8, 3, 2, 1), (9, 7, 4, 3), (16, 2, 2, 0)]:
            x = rand(1, 1, 3, size, size)
            w = rand(1, 1, 1, k, k)
            out = ops_nn.conv3d_forward(x, w, (1, s, s), (0, p, p), 1)
            expected = (size + 2 * p - k) // s + 1
            assert out.shape[-1] == expected, (size, k, s, p)


class TestConvTransposeParameterMatrix:
    @pytest.mark.parametrize("stride,padding,output_padding", [
        ((1, 2, 2), (1, 0, 0), (0, 0, 0)),   # decoder upsample layer
        ((1, 1, 1), (1, 1, 1), (0, 0, 0)),   # decoder head layer
        ((2, 2, 2), (0, 0, 0), (1, 1, 1)),   # odd-size recovery
    ])
    def test_gradcheck(self, stride, padding, output_padding):
        x = rand(1, 2, 3, 4, 4)
        w = rand(2, 2, 3, 2, 2) if stride != (1, 1, 1) else rand(2, 2, 3, 3, 3)
        gradcheck(
            lambda ts: T.conv_transpose3d(ts[0], ts[1], stride=stride,
                                          padding=padding,
                                          output_padding=output_padding).sum(),
            [x, w],
        )

    def test_transpose_inverts_conv_shape(self):
        """Decoder layers exactly invert the encoder's downsampling."""
        for size in (8, 16, 32):
            x = rand(1, 1, 2, size, size)
            w_down = rand(1, 1, 3, 3, 3)
            down = ops_nn.conv3d_forward(x, w_down, (1, 2, 2), (1, 1, 1), 1)
            w_up = rand(1, 1, 3, 2, 2)
            up = ops_nn.conv_transpose3d_forward(down, w_up, (1, 2, 2), (1, 0, 0), 0, 1)
            assert up.shape == x.shape


class TestConv1dStrides:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 1), (1, 2)])
    def test_gradcheck(self, stride, padding):
        gradcheck(
            lambda ts: T.conv1d(ts[0], ts[1], stride=stride, padding=padding).sum(),
            [rand(1, 2, 8), rand(2, 2, 3)],
        )
