"""Ablation bench 4 (DESIGN.md): attention K/V reduction-ratio sweep.

Eq. 15's sequence reduction cuts attention cost from O(L^2) to
O(L^2 / r).  Benchmarks the attention layer across reduction ratios on
a stage-1-sized token sequence and checks that larger ratios are
monotonically cheaper.
"""

import time

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad

TOKENS, DIM = 1024, 32


@pytest.fixture(scope="module")
def token_batch():
    rng = np.random.default_rng(2)
    return Tensor(rng.standard_normal((4, TOKENS, DIM)))


@pytest.mark.parametrize("ratio", [1, 4, 16, 64])
def test_bench_reduction_ratio(benchmark, token_batch, ratio):
    nn.init.seed(0)
    attention = nn.EfficientSpatialSelfAttention(DIM, num_heads=2, reduction_ratio=ratio)

    def forward():
        with no_grad():
            return attention(token_batch)

    out = benchmark(forward)
    assert out.shape == (4, TOKENS, DIM)


def test_reduction_is_cheaper(token_batch):
    def clock(ratio):
        nn.init.seed(0)
        attention = nn.EfficientSpatialSelfAttention(DIM, num_heads=2, reduction_ratio=ratio)
        with no_grad():
            attention(token_batch)  # warm-up
            start = time.perf_counter()
            for _ in range(3):
                attention(token_batch)
            return time.perf_counter() - start

    assert clock(64) < clock(1)
