"""Finite-difference gradient checking for the autograd engine."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn, inputs: list[np.ndarray], index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. input ``index``.

    ``fn`` maps a list of Tensors to a scalar Tensor.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn([Tensor(b) for b in base]).data)
        flat[i] = original - eps
        minus = float(fn([Tensor(b) for b in base]).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn, inputs: list[np.ndarray], eps: float = 1e-6, atol: float = 1e-5, rtol: float = 1e-4) -> bool:
    """Compare autograd gradients against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch; a
    True return means every input gradient matched.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for i, t in enumerate(tensors):
        expected = numeric_gradient(fn, inputs, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(expected)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            worst = np.max(np.abs(actual - expected))
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs err {worst:.3e}\n"
                f"autograd:\n{actual}\nnumeric:\n{expected}"
            )
    return True
