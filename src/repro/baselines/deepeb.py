"""DeePEB baseline (Wang et al. [15]): FNO + CNN hybrid.

DeePEB "extends FNO by integrating CNN-based local learning branches to
capture high-frequency information": a spectral (global, low-frequency)
path and a convolutional (local, high-frequency) path run in parallel
and are fused before the head.  This was the previous state of the art
that SDM-PEB improves on in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import tensor as T
from repro.tensor import functional as F
from repro.nn.conv import Conv3d
from repro.nn.module import ModuleList
from .common import SurrogateBase
from .fno import FourierLayer
from .deepcnn import ResidualBlock


@dataclass(frozen=True)
class DeePEBConfig:
    width: int = 10
    num_fourier_layers: int = 2
    num_cnn_blocks: int = 2
    modes: tuple = (3, 6, 6)


class DeePEB(SurrogateBase):
    """Parallel global-spectral and local-CNN branches, fused."""

    def __init__(self, config: DeePEBConfig | None = None):
        super().__init__()
        self.config = config if config is not None else DeePEBConfig()
        cfg = self.config
        self.lift = Conv3d(1, cfg.width, 1)
        self.fourier_layers = ModuleList([FourierLayer(cfg.width, cfg.modes)
                                          for _ in range(cfg.num_fourier_layers)])
        self.cnn_stem = Conv3d(cfg.width, cfg.width, 3, padding=1)
        self.cnn_blocks = ModuleList([ResidualBlock(cfg.width)
                                      for _ in range(cfg.num_cnn_blocks)])
        self.fuse = Conv3d(2 * cfg.width, cfg.width, 1)
        self.head = Conv3d(cfg.width, 1, 3, padding=1)

    def body(self, x):
        lifted = self.lift(x)
        spectral = lifted
        for layer in self.fourier_layers:
            spectral = layer(spectral)
        local = F.relu(self.cnn_stem(lifted))
        for block in self.cnn_blocks:
            local = block(local)
        fused = F.gelu(self.fuse(T.concatenate([spectral, local], axis=1)))
        return self.head(fused)
