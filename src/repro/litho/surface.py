"""Resist-surface extraction and mesh export.

Turns the development-front arrival field into a per-column resist
height map (with sub-voxel interpolation of the arrival-time threshold
crossing along z) and exports the surface as a Wavefront OBJ mesh for
inspection in any external 3D viewer — the closest practical analog of
the resist profile renders in the paper's figures.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.config import DevelopConfig, GridConfig


def height_map(arrival: np.ndarray, grid: GridConfig, develop: DevelopConfig) -> np.ndarray:
    """Remaining resist thickness per column, in nm (ny, nx).

    The development front eats from the top; the remaining thickness is
    measured from the first undeveloped depth downwards, with linear
    interpolation of the threshold crossing between layers.
    """
    nz, ny, nx = arrival.shape
    threshold = develop.duration_s
    developed = arrival <= threshold  # True where resist removed
    thickness = np.empty((ny, nx), dtype=np.float64)
    depths = (np.arange(nz) + 0.5) * grid.dz_nm
    for iy in range(ny):
        for ix in range(nx):
            column = developed[:, iy, ix]
            if not column.any():
                thickness[iy, ix] = grid.thickness_nm
                continue
            if column.all():
                thickness[iy, ix] = 0.0
                continue
            # first undeveloped layer from the top
            first_kept = int(np.argmin(column))
            if first_kept == 0:
                thickness[iy, ix] = grid.thickness_nm
                continue
            t_removed = arrival[first_kept - 1, iy, ix]
            t_kept = arrival[first_kept, iy, ix]
            if np.isfinite(t_kept) and t_kept != t_removed:
                fraction = (threshold - t_removed) / (t_kept - t_removed)
                fraction = float(np.clip(fraction, 0.0, 1.0))
            else:
                fraction = 0.0
            front_depth = depths[first_kept - 1] + fraction * grid.dz_nm
            thickness[iy, ix] = max(grid.thickness_nm - front_depth, 0.0)
    return thickness


def export_obj(heights: np.ndarray, grid: GridConfig, path: str | Path) -> int:
    """Write the height map as a quad-triangulated OBJ mesh.

    Vertices are (x_nm, y_nm, height_nm); returns the face count.
    """
    heights = np.asarray(heights)
    ny, nx = heights.shape
    lines = ["# resist surface exported by repro.litho.surface"]
    for iy in range(ny):
        for ix in range(nx):
            x = (ix + 0.5) * grid.dx_nm
            y = (iy + 0.5) * grid.dy_nm
            lines.append(f"v {x:.2f} {y:.2f} {heights[iy, ix]:.2f}")
    faces = 0
    for iy in range(ny - 1):
        for ix in range(nx - 1):
            a = iy * nx + ix + 1          # OBJ indices are 1-based
            b = a + 1
            c = a + nx
            d = c + 1
            lines.append(f"f {a} {b} {d}")
            lines.append(f"f {a} {d} {c}")
            faces += 2
    Path(path).write_text("\n".join(lines) + "\n")
    return faces
