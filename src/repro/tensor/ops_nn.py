"""Convolution primitives (1D/3D, grouped, transposed) with backward rules.

All convolutions are implemented with a loop over kernel offsets: for a
``kd x kh x kw`` kernel the forward pass is ``kd*kh*kw`` strided einsums,
which is both memory-friendly (no im2col blowup) and fast for the small
kernels used in this project.  The same offset loop, run in scatter mode,
yields the input gradient and the transposed convolution.

Shape conventions follow torch:

* ``conv3d``:            x ``(B, Cin, D, H, W)``, w ``(Cout, Cin/G, kd, kh, kw)``
* ``conv_transpose3d``:  x ``(B, Cin, D, H, W)``, w ``(Cin, Cout/G, kd, kh, kw)``
* ``conv1d``:            x ``(B, Cin, L)``,       w ``(Cout, Cin/G, k)``
"""

from __future__ import annotations

import itertools

import numpy as np

from .tensor import Tensor, ensure_tensor


def _triple(value) -> tuple[int, int, int]:
    if isinstance(value, (tuple, list)):
        if len(value) != 3:
            raise ValueError(f"expected 3 values, got {value!r}")
        return tuple(int(v) for v in value)
    return (int(value),) * 3


def _out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def _grouped(x: np.ndarray, groups: int) -> np.ndarray:
    """View (B, C, *spatial) as (B, G, C/G, *spatial)."""
    b, c = x.shape[:2]
    return x.reshape(b, groups, c // groups, *x.shape[2:])


def _pad_spatial(x: np.ndarray, padding) -> np.ndarray:
    pd, ph, pw = padding
    if pd == ph == pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (pd, pd), (ph, ph), (pw, pw)))


def _offset_slices(offset, stride, out_sizes):
    """Slices selecting the input positions hit by a kernel offset."""
    return tuple(
        slice(o, o + s * n, s) for o, s, n in zip(offset, stride, out_sizes)
    )


def conv3d_forward(x: np.ndarray, w: np.ndarray, stride, padding, groups: int) -> np.ndarray:
    """Raw-numpy grouped 3D cross-correlation.

    Each kernel offset contributes one batched BLAS matmul over the
    channel axis (``(G, O, C) @ (B, G, C, DHW)``), which is several times
    faster than the equivalent ``einsum`` contraction while keeping the
    per-offset accumulation order — and therefore run-to-run bitwise
    determinism — unchanged.
    """
    stride, padding = _triple(stride), _triple(padding)
    xp = _pad_spatial(x, padding)
    cout, cg, kd, kh, kw = w.shape
    out_sizes = tuple(
        _out_size(x.shape[2 + i], (kd, kh, kw)[i], stride[i], padding[i]) for i in range(3)
    )
    xg = _grouped(xp, groups)
    wg = w.reshape(groups, cout // groups, cg, kd, kh, kw)
    voxels = int(np.prod(out_sizes))
    batch = x.shape[0]
    out = np.zeros((batch, groups, cout // groups, voxels), dtype=x.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, out_sizes)
        patch = xg[(slice(None), slice(None), slice(None)) + sl]
        out += np.matmul(wg[:, :, :, offset[0], offset[1], offset[2]],
                         patch.reshape(batch, groups, cg, voxels))
    return out.reshape(batch, cout, *out_sizes)


def conv3d_grad_input(gout: np.ndarray, w: np.ndarray, x_shape, stride, padding, groups: int) -> np.ndarray:
    """Gradient of :func:`conv3d_forward` w.r.t. its input."""
    stride, padding = _triple(stride), _triple(padding)
    cout, cg, kd, kh, kw = w.shape
    b = x_shape[0]
    padded_shape = tuple(x_shape[2 + i] + 2 * padding[i] for i in range(3))
    out_sizes = gout.shape[2:]
    gg = _grouped(gout, groups)
    wg = w.reshape(groups, cout // groups, cg, kd, kh, kw)
    gxp = np.zeros((b, groups, cg) + padded_shape, dtype=gout.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, out_sizes)
        gxp[(slice(None), slice(None), slice(None)) + sl] += np.einsum(
            "bgodhw,goc->bgcdhw", gg, wg[:, :, :, offset[0], offset[1], offset[2]]
        )
    pd, ph, pw = padding
    crop = (
        slice(pd, gxp.shape[3] - pd),
        slice(ph, gxp.shape[4] - ph),
        slice(pw, gxp.shape[5] - pw),
    )
    return gxp[(slice(None), slice(None), slice(None)) + crop].reshape(x_shape)


def conv3d_grad_weight(gout: np.ndarray, x: np.ndarray, w_shape, stride, padding, groups: int) -> np.ndarray:
    """Gradient of :func:`conv3d_forward` w.r.t. the weight."""
    stride, padding = _triple(stride), _triple(padding)
    cout, cg, kd, kh, kw = w_shape
    xp = _pad_spatial(x, padding)
    xg = _grouped(xp, groups)
    gg = _grouped(gout, groups)
    out_sizes = gout.shape[2:]
    gw = np.zeros((groups, cout // groups, cg, kd, kh, kw), dtype=x.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, out_sizes)
        patch = xg[(slice(None), slice(None), slice(None)) + sl]
        gw[:, :, :, offset[0], offset[1], offset[2]] = np.einsum("bgodhw,bgcdhw->goc", gg, patch)
    return gw.reshape(w_shape)


def conv_transpose3d_forward(x: np.ndarray, w: np.ndarray, stride, padding, output_padding, groups: int) -> np.ndarray:
    """Raw-numpy grouped transposed 3D convolution (scatter form)."""
    stride, padding, output_padding = _triple(stride), _triple(padding), _triple(output_padding)
    cin, og, kd, kh, kw = w.shape
    in_sizes = x.shape[2:]
    full_sizes = tuple(
        (in_sizes[i] - 1) * stride[i] + (kd, kh, kw)[i] + output_padding[i] for i in range(3)
    )
    xg = _grouped(x, groups)
    wg = w.reshape(groups, cin // groups, og, kd, kh, kw)
    batch = x.shape[0]
    voxels = int(np.prod(in_sizes))
    xm = xg.reshape(batch, groups, cin // groups, voxels)
    full = np.zeros((batch, groups, og) + full_sizes, dtype=x.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, in_sizes)
        w_off = np.swapaxes(wg[:, :, :, offset[0], offset[1], offset[2]], -1, -2)
        contrib = np.matmul(w_off, xm).reshape(batch, groups, og, *in_sizes)
        full[(slice(None), slice(None), slice(None)) + sl] += contrib
    pd, ph, pw = padding
    crop = (
        slice(pd, full_sizes[0] - pd),
        slice(ph, full_sizes[1] - ph),
        slice(pw, full_sizes[2] - pw),
    )
    out = full[(slice(None), slice(None), slice(None)) + crop]
    return out.reshape(x.shape[0], groups * og, *out.shape[3:])


def conv_transpose3d_grad_input(gout: np.ndarray, w: np.ndarray, x_shape, stride, padding, output_padding, groups: int) -> np.ndarray:
    """Gradient of :func:`conv_transpose3d_forward` w.r.t. its input."""
    stride, padding, output_padding = _triple(stride), _triple(padding), _triple(output_padding)
    cin, og, kd, kh, kw = w.shape
    in_sizes = x_shape[2:]
    full_sizes = tuple(
        (in_sizes[i] - 1) * stride[i] + (kd, kh, kw)[i] + output_padding[i] for i in range(3)
    )
    pd, ph, pw = padding
    gfull = np.zeros((x_shape[0], groups * og) + full_sizes, dtype=gout.dtype)
    gfull[:, :, pd:full_sizes[0] - pd, ph:full_sizes[1] - ph, pw:full_sizes[2] - pw] = gout
    gg = _grouped(gfull, groups)
    wg = w.reshape(groups, cin // groups, og, kd, kh, kw)
    gx = np.zeros((x_shape[0], groups, cin // groups) + tuple(in_sizes), dtype=gout.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, in_sizes)
        gx += np.einsum(
            "bgodhw,gco->bgcdhw",
            gg[(slice(None), slice(None), slice(None)) + sl],
            wg[:, :, :, offset[0], offset[1], offset[2]],
        )
    return gx.reshape(x_shape)


def conv_transpose3d_grad_weight(gout: np.ndarray, x: np.ndarray, w_shape, stride, padding, output_padding, groups: int) -> np.ndarray:
    """Gradient of :func:`conv_transpose3d_forward` w.r.t. the weight."""
    stride, padding, output_padding = _triple(stride), _triple(padding), _triple(output_padding)
    cin, og, kd, kh, kw = w_shape
    in_sizes = x.shape[2:]
    full_sizes = tuple(
        (in_sizes[i] - 1) * stride[i] + (kd, kh, kw)[i] + output_padding[i] for i in range(3)
    )
    pd, ph, pw = padding
    gfull = np.zeros((x.shape[0], gout.shape[1]) + full_sizes, dtype=gout.dtype)
    gfull[:, :, pd:full_sizes[0] - pd, ph:full_sizes[1] - ph, pw:full_sizes[2] - pw] = gout
    gg = _grouped(gfull, groups)
    xg = _grouped(x, groups)
    gw = np.zeros((groups, cin // groups, og, kd, kh, kw), dtype=x.dtype)
    for offset in itertools.product(range(kd), range(kh), range(kw)):
        sl = _offset_slices(offset, stride, in_sizes)
        gw[:, :, :, offset[0], offset[1], offset[2]] = np.einsum(
            "bgodhw,bgcdhw->gco",
            gg[(slice(None), slice(None), slice(None)) + sl],
            xg,
        )
    return gw.reshape(w_shape)


# ----------------------------------------------------------------------
# Tensor-level differentiable ops
# ----------------------------------------------------------------------
def conv3d(x, w, bias=None, stride=1, padding=0, groups: int = 1) -> Tensor:
    """Differentiable grouped 3D convolution (cross-correlation)."""
    x, w = ensure_tensor(x), ensure_tensor(w)
    out_data = conv3d_forward(x.data, w.data, stride, padding, groups)
    parents = [
        (x, lambda g: conv3d_grad_input(g, w.data, x.shape, stride, padding, groups)),
        (w, lambda g: conv3d_grad_weight(g, x.data, w.shape, stride, padding, groups)),
    ]
    out = Tensor.from_op(out_data, parents,
                         capture=("conv3d", {"stride": stride,
                                             "padding": padding,
                                             "groups": groups}))
    if bias is not None:
        bias = ensure_tensor(bias)
        from .ops_basic import add
        from .ops_shape import reshape

        out = add(out, reshape(bias, (1, -1, 1, 1, 1)))
    return out


def conv_transpose3d(x, w, bias=None, stride=1, padding=0, output_padding=0, groups: int = 1) -> Tensor:
    """Differentiable grouped transposed 3D convolution."""
    x, w = ensure_tensor(x), ensure_tensor(w)
    out_data = conv_transpose3d_forward(x.data, w.data, stride, padding, output_padding, groups)
    parents = [
        (x, lambda g: conv_transpose3d_grad_input(g, w.data, x.shape, stride, padding, output_padding, groups)),
        (w, lambda g: conv_transpose3d_grad_weight(g, x.data, w.shape, stride, padding, output_padding, groups)),
    ]
    out = Tensor.from_op(out_data, parents,
                         capture=("conv_transpose3d",
                                  {"stride": stride, "padding": padding,
                                   "output_padding": output_padding,
                                   "groups": groups}))
    if bias is not None:
        bias = ensure_tensor(bias)
        from .ops_basic import add
        from .ops_shape import reshape

        out = add(out, reshape(bias, (1, -1, 1, 1, 1)))
    return out


def conv1d(x, w, bias=None, stride: int = 1, padding: int = 0, groups: int = 1) -> Tensor:
    """Differentiable grouped 1D convolution, routed through conv3d."""
    from .ops_shape import reshape

    x, w = ensure_tensor(x), ensure_tensor(w)
    b, c, length = x.shape
    cout, cg, k = w.shape
    x3 = reshape(x, (b, c, 1, 1, length))
    w3 = reshape(w, (cout, cg, 1, 1, k))
    out = conv3d(x3, w3, bias=bias, stride=(1, 1, stride), padding=(0, 0, padding), groups=groups)
    return reshape(out, (b, cout, out.shape[-1]))


def upsample_nearest3d(x, scale) -> Tensor:
    """Nearest-neighbour upsampling of a (B, C, D, H, W) tensor."""
    from .ops_shape import repeat_interleave

    sd, sh, sw = _triple(scale)
    out = x
    if sd > 1:
        out = repeat_interleave(out, sd, axis=2)
    if sh > 1:
        out = repeat_interleave(out, sh, axis=3)
    if sw > 1:
        out = repeat_interleave(out, sw, axis=4)
    return out
