"""Trainer: scheduling, batching, standardization, learning progress."""

import numpy as np
import pytest

from repro import nn
from repro.core import LossConfig, Trainer, TrainConfig
from repro.tensor import Tensor
from repro.baselines import DeepCNN, DeepCNNConfig

RNG = np.random.default_rng(29)


def tiny_model():
    nn.init.seed(0)
    return DeepCNN(DeepCNNConfig(width=4, num_blocks=1))


def tiny_data(n=4, shape=(2, 8, 8)):
    inputs = RNG.random((n,) + shape)
    # target: a smooth deterministic function of the input
    targets = 2.0 * inputs + 1.0
    return inputs, targets


class TestConstruction:
    def test_sets_output_stats_from_targets(self):
        inputs, targets = tiny_data()
        model = tiny_model()
        Trainer(model, inputs, targets, TrainConfig(epochs=1))
        assert np.isclose(model.output_mean, targets.mean())
        assert np.isclose(model.output_std, targets.std())

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            Trainer(tiny_model(), np.zeros((0, 2, 8, 8)), np.zeros((0, 2, 8, 8)))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Trainer(tiny_model(), np.zeros((2, 2, 8, 8)), np.zeros((3, 2, 8, 8)))


class TestFit:
    def test_loss_decreases(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets,
                          TrainConfig(epochs=15, learning_rate=3e-3, batch_size=2))
        history = trainer.fit()
        assert history.losses[-1] < history.losses[0]

    def test_history_fields(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets, TrainConfig(epochs=3))
        history = trainer.fit()
        assert history.epochs == [1, 2, 3]
        assert len(history.losses) == 3
        assert len(history.learning_rates) == 3
        assert history.wall_time_s > 0.0

    def test_lr_schedule_applied(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets,
                          TrainConfig(epochs=4, learning_rate=1.0, lr_step_size=2,
                                      lr_gamma=0.5))
        history = trainer.fit()
        assert np.isclose(history.learning_rates[-1], 0.25)

    def test_log_every(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets,
                          TrainConfig(epochs=5, log_every=2))
        history = trainer.fit()
        assert history.epochs == [2, 4, 5]

    def test_shuffle_seed_reproducible(self):
        inputs, targets = tiny_data()

        def run():
            trainer = Trainer(tiny_model(), inputs, targets,
                              TrainConfig(epochs=3, shuffle_seed=7))
            return trainer.fit().losses

        assert run() == run()

    def test_loss_ablation_config_respected(self):
        inputs, targets = tiny_data()
        config = TrainConfig(epochs=1, loss=LossConfig(use_maxse=False))
        trainer = Trainer(tiny_model(), inputs, targets, config)
        terms = trainer.loss_fn.components(Tensor(inputs), Tensor(targets))
        assert "maxse" not in terms


class TestPredict:
    def test_shape_and_batching(self):
        inputs, targets = tiny_data(n=5)
        trainer = Trainer(tiny_model(), inputs, targets, TrainConfig(epochs=1))
        trainer.fit()
        out = trainer.predict(inputs, batch_size=2)
        assert out.shape == inputs.shape

    def test_predict_untrained_returns_near_mean(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets, TrainConfig(epochs=1))
        out = trainer.predict(inputs)
        assert abs(out.mean() - targets.mean()) < 3.0 * targets.std()

    def test_predict_has_no_graph(self):
        inputs, targets = tiny_data()
        trainer = Trainer(tiny_model(), inputs, targets, TrainConfig(epochs=1))
        trainer.predict(inputs)
        assert all(p.grad is None for p in trainer.model.parameters())
