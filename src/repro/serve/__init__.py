"""Batched inference serving: model registry, micro-batcher, HTTP front end.

``repro.serve`` is the deployment shape the paper's pitch implies: a
learned PEB surrogate answering many clip-sized requests in
milliseconds each, instead of the rigorous solver's minutes.  The
subsystem is stdlib + numpy only:

* :mod:`repro.serve.registry` — versioned checkpoint manifests (model
  class, grid, dtype, param count, SHA-256 content hash) wrapping
  ``Module.save/load``, with integrity verification on load;
* :mod:`repro.serve.batcher` — a bounded queue coalescing concurrent
  single-clip requests into batched forward passes under a
  max-batch/max-wait policy, with deadlines, backpressure and an LRU
  response cache;
* :mod:`repro.serve.server` — ``POST /v1/predict``, ``GET /v1/models``,
  ``GET /healthz`` and ``GET /metrics`` on a threading HTTP server with
  graceful draining shutdown.

Entry point: ``python -m repro.cli serve --ckpt model.npz``; load-test
with ``benchmarks/run_serve_bench.py``.  See ``docs/serving.md``.
"""

from .batcher import (
    BatcherClosedError, BatchPolicy, DeadlineExceededError, MicroBatcher,
    QueueFullError, ServeError, content_hash,
)
from .engine import (
    ENGINES, PlanExecutor, clear_plan_cache, plan_cache_stats, resolve_engine,
)
from .registry import (
    IntegrityError, ModelManifest, ModelRegistry, RegistryError,
    import_legacy_sidecar, load_checkpoint, manifest_path_for, read_manifest,
    save_checkpoint, verify_checkpoint,
)
from .server import (
    DEFAULT_LATENCY_BUCKETS, PredictServer, ServeConfig, ServedModel,
    render_prometheus,
)

__all__ = [
    "ENGINES", "PlanExecutor", "resolve_engine", "plan_cache_stats",
    "clear_plan_cache",
    "BatchPolicy", "MicroBatcher", "ServeError", "QueueFullError",
    "DeadlineExceededError", "BatcherClosedError", "content_hash",
    "ModelManifest", "ModelRegistry", "RegistryError", "IntegrityError",
    "save_checkpoint", "load_checkpoint", "read_manifest", "verify_checkpoint",
    "manifest_path_for", "import_legacy_sidecar",
    "PredictServer", "ServeConfig", "ServedModel", "render_prometheus",
    "DEFAULT_LATENCY_BUCKETS",
]
