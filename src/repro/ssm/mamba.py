"""Selective state-space model (Mamba-style) built on the diagonal scan.

Implements Eqs. (6)-(11) of the paper: input-dependent projections
``B = Linear_N(x)``, ``C = Linear_N(x)``,
``Δ = softplus(Broadcast_K(Linear_1(x)) + D_bias)``, zero-order-hold
discretization ``Ā = exp(ΔA)``, ``B̄ = (ΔA)^{-1}(exp(ΔA) - I)·ΔB``
(elementwise since A is diagonal), followed by the linear recurrence and
the output readout ``y_t = C_t·h_t + D⊙x_t``.
"""

from __future__ import annotations

import numpy as np

from repro import tensor as T
from repro.tensor import functional as F
from repro.nn.linear import Linear
from repro.nn.module import Module, Parameter
from repro.nn import init
from .hippo import s4d_real_init, dt_init
from .scan import diagonal_scan


class SelectiveSSM(Module):
    """Input-selective SSM over a (B, L, C) sequence.

    Parameters
    ----------
    channels:
        Number of input/output channels ``K``.
    state_dim:
        Hidden state dimension ``N`` per channel.
    discretization:
        ``"zoh"`` (exact Eq. 7) or ``"euler"`` (Mamba's simplified
        ``B̄ = ΔB``).
    scan_mode:
        Kernel used for the recurrence, ``"chunked"`` or ``"sequential"``.
    """

    def __init__(self, channels: int, state_dim: int = 8, discretization: str = "zoh",
                 scan_mode: str = "chunked"):
        super().__init__()
        if discretization not in ("zoh", "euler"):
            raise ValueError(f"unknown discretization {discretization!r}")
        self.channels = channels
        self.state_dim = state_dim
        self.discretization = discretization
        self.scan_mode = scan_mode
        self.b_proj = Linear(channels, state_dim, bias=False)
        self.c_proj = Linear(channels, state_dim, bias=False)
        self.dt_proj = Linear(channels, 1, bias=False)
        # Stored as log(-A) so the evolution stays strictly decaying.
        self.a_log = Parameter(np.log(-s4d_real_init(channels, state_dim)))
        self.dt_bias = Parameter(dt_init(channels, rng=init.get_rng()))
        self.skip = Parameter(init.ones(channels))

    def forward(self, x):
        """Map (B, L, C) to (B, L, C) through the selective recurrence."""
        batch, length, channels = x.shape
        if channels != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {channels}")
        b_mat = self.b_proj(x)                       # (B, L, N)
        c_mat = self.c_proj(x)                       # (B, L, N)
        delta = F.softplus(self.dt_proj(x) + self.dt_bias)   # (B, L, C) via broadcast
        a = -T.exp(self.a_log)                       # (C, N), negative
        delta_a = T.reshape(delta, (batch, length, channels, 1)) * a
        a_bar = T.exp(delta_a)                       # (B, L, C, N)
        u = T.reshape(x, (batch, length, channels, 1))
        b_bcast = T.reshape(b_mat, (batch, length, 1, self.state_dim))
        if self.discretization == "zoh":
            coeff = (a_bar - 1.0) / a                # (exp(ΔA)-1)/A  (diagonal Eq. 7)
            b_bar_u = coeff * b_bcast * u
        else:
            b_bar_u = T.reshape(delta, (batch, length, channels, 1)) * b_bcast * u
        h = diagonal_scan(a_bar, b_bar_u, mode=self.scan_mode)
        y = T.einsum("blcn,bln->blc", h, c_mat)
        return y + self.skip * x
