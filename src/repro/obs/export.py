"""Trace analytics: Chrome export, span trees, critical path, requests.

The JSONL sink (:mod:`repro.obs.trace`) is cheap to write but raw to
read.  This module is the analysis side:

* :func:`to_chrome_trace` — convert events to the Chrome trace-event
  JSON format (``{"traceEvents": [...]}``, ``ph: "X"`` complete events
  in microseconds), loadable in Perfetto / ``chrome://tracing``;
* :func:`build_span_forest` — reconstruct the span tree from ``id`` /
  ``parent`` uids, tolerant of multi-pid traces, orphaned parents
  (a parent span that never closed because its process was killed) and
  legacy integer span ids from older trace files;
* :func:`critical_path` — the chain of largest-duration children from a
  root, with per-hop self time: where a slow request actually spent it;
* :func:`self_times` — per-span-name exclusive time (duration minus
  child durations), the honest version of an inclusive-total table;
* :func:`request_summaries` — per-``trace`` (i.e. per request id)
  latency breakdown for served traffic.

All functions are pure over already-loaded event dicts; pair them with
:func:`repro.obs.report.load_events`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = [
    "SpanNode", "to_chrome_trace", "write_chrome_trace", "build_span_forest",
    "critical_path", "format_critical_path", "self_times",
    "request_summaries", "format_requests",
]


def _uid(event: dict, key: str) -> str | None:
    """Normalized span uid: new traces carry ``"<pid>-<seq>"`` strings,
    pre-v2 traces bare ints unique only within one pid."""
    value = event.get(key)
    if value is None:
        return None
    if isinstance(value, int):
        return f"{event.get('pid', 0)}-{value}"
    return str(value)


@dataclass
class SpanNode:
    """One span plus its resolved children (sorted by start time)."""

    event: dict
    children: list["SpanNode"] = field(default_factory=list)
    #: True when the recorded parent id never appeared in the trace
    orphaned: bool = False

    @property
    def uid(self) -> str:
        return _uid(self.event, "id") or ""

    @property
    def name(self) -> str:
        return str(self.event.get("name", "<unnamed>"))

    @property
    def dur_s(self) -> float:
        return float(self.event.get("dur_s", 0.0))

    @property
    def child_dur_s(self) -> float:
        return sum(child.dur_s for child in self.children)

    @property
    def self_s(self) -> float:
        """Exclusive time; clamped at zero because concurrent children
        (pool workers under one dispatch) can sum past the parent."""
        return max(0.0, self.dur_s - self.child_dur_s)


def to_chrome_trace(events: list[dict]) -> dict:
    """Events as a Chrome trace-event JSON object.

    Spans become ``ph: "X"`` complete events and point events become
    ``ph: "i"`` instants, both stamped with the original pid/tid so
    Perfetto lays the HTTP threads, the batcher worker and forked pool
    workers out as separate tracks.  ``ts`` is wall-clock microseconds
    (span ``t_wall_s`` is captured at open), comparable across
    processes on one machine.
    """
    out: list[dict] = []
    for event in events:
        kind = event.get("type")
        if kind not in ("span", "event"):
            continue
        ts_us = float(event.get("t_wall_s", 0.0)) * 1e6
        name = str(event.get("name", "<unnamed>"))
        args = dict(event.get("attrs") or {})
        for key in ("id", "parent", "trace"):
            if event.get(key) is not None:
                args[key] = event[key]
        record = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "pid": int(event.get("pid", 0)),
            "tid": int(event.get("tid", event.get("pid", 0))),
            "ts": ts_us,
            "args": args,
        }
        if kind == "span":
            record["ph"] = "X"
            record["dur"] = float(event.get("dur_s", 0.0)) * 1e6
        else:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        out.append(record)
    out.sort(key=lambda r: r["ts"])
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[dict], path) -> int:
    """Serialize :func:`to_chrome_trace` to ``path``; returns event count."""
    payload = to_chrome_trace(events)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


def build_span_forest(events: list[dict]) -> list[SpanNode]:
    """Roots of the reconstructed span forest, across all pids.

    A span whose ``parent`` uid is absent from the trace (killed
    process, rotated file) is kept as an *orphan root* with
    ``orphaned=True`` rather than dropped — partial traces still
    render.  Children are ordered by wall-clock start.
    """
    nodes: dict[str, SpanNode] = {}
    spans: list[SpanNode] = []
    for event in events:
        if event.get("type") != "span":
            continue
        node = SpanNode(event=event)
        spans.append(node)
        uid = node.uid
        if uid:
            nodes[uid] = node
    roots: list[SpanNode] = []
    for node in spans:
        parent_uid = _uid(node.event, "parent")
        if parent_uid is None:
            roots.append(node)
        elif parent_uid in nodes and nodes[parent_uid] is not node:
            nodes[parent_uid].children.append(node)
        else:
            node.orphaned = True
            roots.append(node)

    def start(node: SpanNode) -> float:
        return float(node.event.get("t_wall_s", 0.0))

    for node in spans:
        node.children.sort(key=start)
    roots.sort(key=start)
    return roots


def critical_path(root: SpanNode) -> list[SpanNode]:
    """Longest-child chain from ``root``: the spans that bound latency.

    At each level the child with the largest duration is followed; the
    remainder of the parent's time is its self time (visible on each
    returned node via ``self_s``).
    """
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.dur_s)
        path.append(node)
    return path


def format_critical_path(roots: list[SpanNode]) -> str:
    """Text rendering of the critical path of the largest root span."""
    if not roots:
        return "(no span events)"
    root = max(roots, key=lambda node: node.dur_s)
    lines = [f"critical path from {root.name!r} "
             f"({root.dur_s * 1e3:.2f} ms total):"]
    for depth, node in enumerate(critical_path(root)):
        trace = node.event.get("trace")
        suffix = f"  trace={trace}" if trace and depth == 0 else ""
        lines.append(
            f"  {'  ' * depth}{node.name:<24} total {node.dur_s * 1e3:>9.3f} ms  "
            f"self {node.self_s * 1e3:>9.3f} ms  pid {node.event.get('pid')}"
            f"{suffix}")
    return "\n".join(lines)


def self_times(events: list[dict]) -> dict[str, float]:
    """Per-span-name exclusive seconds across the whole trace."""
    totals: dict[str, float] = {}
    stack = list(build_span_forest(events))
    while stack:
        node = stack.pop()
        totals[node.name] = totals.get(node.name, 0.0) + node.self_s
        stack.extend(node.children)
    return totals


def request_summaries(events: list[dict]) -> list[dict]:
    """Per-request latency breakdown for served traffic.

    Groups spans by their ``trace`` id and reports, per request: the
    root span (normally ``serve.request``) duration, time spent in the
    coalesced batch (``serve.batch``), the model forward
    (``serve.forward``) and health checks, plus how many spans/pids the
    request touched.  Requests are ordered by start time.
    """
    by_trace: dict[str, list[dict]] = {}
    for event in events:
        trace = event.get("trace")
        if trace is None or event.get("type") != "span":
            continue
        by_trace.setdefault(str(trace), []).append(event)
    summaries = []
    for trace, spans in by_trace.items():
        spans.sort(key=lambda e: float(e.get("t_wall_s", 0.0)))
        durations: dict[str, float] = {}
        for event in spans:
            name = str(event.get("name", ""))
            durations[name] = durations.get(name, 0.0) + float(event.get("dur_s", 0.0))
        roots = [e for e in spans
                 if _uid(e, "parent") is None
                 or not any(_uid(o, "id") == _uid(e, "parent") for o in spans)]
        root = roots[0] if roots else spans[0]
        summaries.append({
            "trace": trace,
            "request_id": (root.get("attrs") or {}).get("request_id", trace),
            "root": str(root.get("name", "")),
            "t_wall_s": float(root.get("t_wall_s", 0.0)),
            "total_s": float(root.get("dur_s", 0.0)),
            "batch_s": durations.get("serve.batch", 0.0),
            "forward_s": durations.get("serve.forward", 0.0),
            "health_s": durations.get("serve.health", 0.0),
            "spans": len(spans),
            "pids": len({e.get("pid") for e in spans}),
        })
    summaries.sort(key=lambda s: s["t_wall_s"])
    return summaries


def format_requests(summaries: list[dict], limit: int | None = None) -> str:
    """Text table over :func:`request_summaries` output."""
    header = (f"{'request':<18} {'root':<16} {'total_ms':>9} {'batch_ms':>9} "
              f"{'fwd_ms':>8} {'health_ms':>9} {'spans':>6} {'pids':>5}")
    lines = [header, "-" * len(header)]
    if not summaries:
        lines.append("(no request-scoped spans — was the server traced?)")
        return "\n".join(lines)
    shown = summaries if limit is None else summaries[:limit]
    for s in shown:
        lines.append(
            f"{s['request_id']:<18} {s['root']:<16} {s['total_s'] * 1e3:>9.3f} "
            f"{s['batch_s'] * 1e3:>9.3f} {s['forward_s'] * 1e3:>8.3f} "
            f"{s['health_s'] * 1e3:>9.3f} {s['spans']:>6d} {s['pids']:>5d}")
    if limit is not None and len(summaries) > limit:
        lines.append(f"... {len(summaries) - limit} more request(s)")
    return "\n".join(lines)
