"""Gradient and value checks for shape-manipulation primitives."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(1)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestReshapeTranspose:
    def test_reshape_grad(self):
        gradcheck(lambda ts: (ts[0].reshape(6) * np.arange(6.0)).sum(), [rand(2, 3)])

    def test_reshape_tuple_arg(self):
        x = T.Tensor(rand(2, 3))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_reshape_minus_one(self):
        x = T.Tensor(rand(2, 3, 4))
        assert x.reshape(2, -1).shape == (2, 12)

    def test_transpose_default_grad(self):
        w = rand(3, 2)
        gradcheck(lambda ts: (ts[0].transpose() * w).sum(), [rand(2, 3)])

    def test_transpose_axes_grad(self):
        w = rand(4, 2, 3)
        gradcheck(lambda ts: (ts[0].transpose((2, 0, 1)) * w).sum(), [rand(2, 3, 4)])

    def test_swapaxes_grad(self):
        w = rand(4, 3, 2)
        gradcheck(lambda ts: (ts[0].swapaxes(0, 2) * w).sum(), [rand(2, 3, 4)])

    def test_moveaxis_grad(self):
        w = rand(3, 4, 2)
        gradcheck(lambda ts: (ts[0].moveaxis(0, 2) * w).sum(), [rand(2, 3, 4)])

    def test_T_property(self):
        x = T.Tensor(rand(2, 3))
        assert x.T.shape == (3, 2)


class TestIndexing:
    def test_slice_grad(self):
        w = rand(2, 3)
        gradcheck(lambda ts: (ts[0][1:3] * w).sum(), [rand(4, 3)])

    def test_integer_index_grad(self):
        w = rand(3)
        gradcheck(lambda ts: (ts[0][1] * w).sum(), [rand(4, 3)])

    def test_strided_slice_grad(self):
        w = rand(2, 3)
        gradcheck(lambda ts: (ts[0][::2] * w).sum(), [rand(4, 3)])

    def test_overlapping_index_accumulates(self):
        x = T.Tensor(rand(3), requires_grad=True)
        (x[np.array([0, 0, 1])]).sum().backward()
        assert np.allclose(x.grad, [2.0, 1.0, 0.0])


class TestJoinSplit:
    def test_concatenate_grad(self):
        w = rand(2, 5)
        gradcheck(
            lambda ts: (T.concatenate([ts[0], ts[1]], axis=1) * w).sum(),
            [rand(2, 3), rand(2, 2)],
        )

    def test_stack_grad(self):
        w = rand(2, 3)
        gradcheck(
            lambda ts: (T.stack([ts[0], ts[1]], axis=0) * w).sum(),
            [rand(3), rand(3)],
        )

    def test_split_roundtrip(self):
        x = T.Tensor(rand(4, 6), requires_grad=True)
        chunks = T.split(x, 3, axis=1)
        assert all(c.shape == (4, 2) for c in chunks)
        T.concatenate(chunks, axis=1).sum().backward()
        assert np.allclose(x.grad, np.ones((4, 6)))

    def test_split_indivisible_raises(self):
        with pytest.raises(ValueError):
            T.split(T.Tensor(rand(4, 5)), 3, axis=1)


class TestPadFlipBroadcast:
    def test_pad_values(self):
        x = T.Tensor([[1.0]])
        out = T.pad(x, [(1, 1), (0, 2)])
        assert out.shape == (3, 3)
        assert out.data[1, 0] == 1.0

    def test_pad_grad(self):
        w = rand(5, 4)
        gradcheck(lambda ts: (T.pad(ts[0], [(1, 2), (0, 1)]) * w).sum(), [rand(2, 3)])

    def test_flip_grad(self):
        w = rand(3, 2)
        gradcheck(lambda ts: (ts[0].flip(0) * w).sum(), [rand(3, 2)])

    def test_broadcast_to_grad(self):
        w = rand(4, 3)
        gradcheck(lambda ts: (T.broadcast_to(ts[0], (4, 3)) * w).sum(), [rand(3)])

    def test_repeat_interleave_values(self):
        x = T.Tensor([[1.0, 2.0]])
        out = T.repeat_interleave(x, 2, axis=1)
        assert np.allclose(out.data, [[1.0, 1.0, 2.0, 2.0]])

    def test_repeat_interleave_grad(self):
        w = rand(6, 2)
        gradcheck(lambda ts: (T.repeat_interleave(ts[0], 3, axis=0) * w).sum(), [rand(2, 2)])
