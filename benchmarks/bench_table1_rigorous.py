"""Table I bench: the rigorous PEB solver at the paper's parameters.

Benchmarks the ground-truth generator (the S-Litho substitute) at the
Table I physics configuration and verifies the solver's convergence
ordering: Strang splitting beats Lie at equal dt, and both converge to
the fine-step reference.
"""

import numpy as np
import pytest

from repro.config import GridConfig, PEBConfig
from repro.litho import RigorousPEBSolver

GRID = GridConfig(size_um=1.0, nx=32, ny=32, nz=8)


def sample_acid():
    rng = np.random.default_rng(0)
    base = rng.random((GRID.nz, GRID.ny, GRID.nx))
    return 0.8 * base ** 3  # sparse bright regions, like a contact layer


@pytest.fixture(scope="module")
def acid():
    return sample_acid()


@pytest.fixture(scope="module")
def reference(acid):
    return RigorousPEBSolver(GRID, PEBConfig(), splitting="strang",
                             time_step_s=0.05).solve(acid).inhibitor


def test_bench_baseline_timestep(benchmark, acid):
    """Full 90 s bake at the Table I baseline dt = 0.1 s."""
    solver = RigorousPEBSolver(GRID, PEBConfig(), time_step_s=0.1)
    result = benchmark.pedantic(solver.solve, args=(acid,), rounds=1, iterations=1)
    assert np.all(result.inhibitor >= 0.0) and np.all(result.inhibitor <= 1.0)


def test_bench_dataset_timestep(benchmark, acid, reference):
    """The dataset-generation setting: Strang at dt = 0.25 s."""
    solver = RigorousPEBSolver(GRID, PEBConfig(), splitting="strang", time_step_s=0.25)
    result = benchmark.pedantic(solver.solve, args=(acid,), rounds=1, iterations=1)
    assert np.abs(result.inhibitor - reference).max() < 0.03


def test_bench_one_step(benchmark, acid):
    """A single operator-splitting step (the solver's inner kernel)."""
    solver = RigorousPEBSolver(GRID, PEBConfig(), time_step_s=0.1)
    base = np.full_like(acid, PEBConfig().base_initial)
    inhibitor = np.ones_like(acid)

    def step():
        a, b, i = solver._react(acid, base, inhibitor, solver.dt)
        return solver._diffuse(a, b)

    benchmark(step)


def test_convergence_ordering(acid, reference):
    """Strang at dt=0.5 must beat Lie at dt=0.5 against the reference."""
    lie = RigorousPEBSolver(GRID, PEBConfig(), splitting="lie", time_step_s=0.5).solve(acid)
    strang = RigorousPEBSolver(GRID, PEBConfig(), splitting="strang", time_step_s=0.5).solve(acid)
    err_lie = np.abs(lie.inhibitor - reference).max()
    err_strang = np.abs(strang.inhibitor - reference).max()
    assert err_strang < err_lie
