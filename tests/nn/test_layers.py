"""Layer behaviour: shapes, values, and gradient flow end-to-end."""

import numpy as np

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(7)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(rand(2, 5))).shape == (2, 3)

    def test_batched_last_axis(self):
        layer = nn.Linear(5, 3)
        assert layer(Tensor(rand(2, 7, 5))).shape == (2, 7, 3)

    def test_no_bias(self):
        layer = nn.Linear(5, 3, bias=False)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((1, 5))))
        assert np.allclose(zero.data, 0.0)

    def test_matches_manual(self):
        layer = nn.Linear(4, 2)
        x = rand(3, 4)
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)


class TestConvModules:
    def test_conv3d_shape(self):
        layer = nn.Conv3d(2, 4, 3, stride=2, padding=1)
        assert layer(Tensor(rand(1, 2, 8, 8, 8))).shape == (1, 4, 4, 4, 4)

    def test_depthwise_preserves_channels(self):
        layer = nn.DepthwiseConv3d(4)
        out = layer(Tensor(rand(1, 4, 4, 6, 6)))
        assert out.shape == (1, 4, 4, 6, 6)

    def test_depthwise_channels_independent(self):
        layer = nn.DepthwiseConv3d(2, kernel_size=3, padding=1, bias=False)
        x = np.zeros((1, 2, 4, 4, 4))
        x[0, 0] = rand(4, 4, 4)
        out = layer(Tensor(x))
        assert np.allclose(out.data[0, 1], 0.0)

    def test_conv_transpose_inverts_stride(self):
        down = nn.Conv3d(1, 2, 2, stride=2)
        up = nn.ConvTranspose3d(2, 1, 2, stride=2)
        x = Tensor(rand(1, 1, 4, 4, 4))
        assert up(down(x)).shape == x.shape

    def test_conv1d_shape(self):
        layer = nn.Conv1d(3, 6, 3, padding=1)
        assert layer(Tensor(rand(2, 3, 10))).shape == (2, 6, 10)

    def test_grad_reaches_weights(self):
        layer = nn.Conv3d(1, 2, 3, padding=1)
        layer(Tensor(rand(1, 1, 3, 3, 3))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestNorms:
    def test_layernorm_statistics(self):
        layer = nn.LayerNorm(16)
        out = layer(Tensor(rand(4, 16)))
        assert np.allclose(out.data.mean(-1), 0.0, atol=1e-9)

    def test_channel_layernorm_layout(self):
        layer = nn.ChannelLayerNorm(6)
        out = layer(Tensor(rand(2, 6, 3, 4, 5)))
        assert out.shape == (2, 6, 3, 4, 5)
        assert np.allclose(out.data.mean(axis=1), 0.0, atol=1e-9)


class TestAttention:
    def test_shape_preserved(self):
        attn = nn.EfficientSpatialSelfAttention(8, num_heads=2, reduction_ratio=1)
        assert attn(Tensor(rand(2, 12, 8))).shape == (2, 12, 8)

    def test_reduction_shape_preserved(self):
        attn = nn.EfficientSpatialSelfAttention(8, num_heads=2, reduction_ratio=4)
        assert attn(Tensor(rand(2, 16, 8))).shape == (2, 16, 8)

    def test_reduction_indivisible_raises(self):
        import pytest

        attn = nn.EfficientSpatialSelfAttention(8, reduction_ratio=4)
        with pytest.raises(ValueError):
            attn(Tensor(rand(1, 10, 8)))

    def test_bad_heads_raises(self):
        import pytest

        with pytest.raises(ValueError):
            nn.EfficientSpatialSelfAttention(7, num_heads=2)

    def test_grad_flows(self):
        attn = nn.EfficientSpatialSelfAttention(4, num_heads=2, reduction_ratio=2)
        x = Tensor(rand(1, 8, 4), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.sr_proj.weight.grad is not None

    def test_reduction_changes_result(self):
        nn.init.seed(0)
        a = nn.EfficientSpatialSelfAttention(8, reduction_ratio=1)
        nn.init.seed(0)
        b = nn.EfficientSpatialSelfAttention(8, reduction_ratio=2)
        x = Tensor(rand(1, 8, 8))
        assert not np.allclose(a(x).data, b(x).data)


class TestMLP:
    def test_shape(self):
        mlp = nn.MLP(8, 16)
        assert mlp(Tensor(rand(2, 5, 8))).shape == (2, 5, 8)

    def test_out_dim_override(self):
        mlp = nn.MLP(8, 16, out_dim=4)
        assert mlp(Tensor(rand(2, 8))).shape == (2, 4)
