"""REP003 fixture: an op that drops one operand from the tape (line 14).

Linted under the virtual path ``src/repro/tensor/ops_fixture.py``.
``busted_mul`` ensures both ``a`` and ``b`` but records only ``a`` as a
parent, so ``b``'s gradient would silently vanish.
"""

import numpy as np  # noqa: F401  (mirrors the real ops modules)

from repro.tensor import Tensor, ensure_tensor


def busted_mul(a, b):
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data * b.data
    return Tensor.from_op(out, [(a, lambda g: g * b.data)])


def honest_mul(a, b):
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = a.data * b.data
    return Tensor.from_op(out, [
        (a, lambda g: g * b.data),
        (b, lambda g: g * a.data),
    ])
