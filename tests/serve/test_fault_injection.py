"""Serve-stack fault injection: SIGKILL a worker mid-batch and prove the
stack fails *safe* — in-flight requests get 503 + ``Retry-After`` (never a
wrong answer), the worker respawns, ``/healthz`` reports the restart, and
the span tree stays well-formed.

The kill window is made deterministic, not probabilistic: the pool's
``forward_delay_s`` fault-injection knob has the worker sleep before
computing, and the parent-side ``busy`` flag on the worker handle flips
the moment the batch hits the pipe — the test waits for ``busy``, then
kills, landing squarely inside the delay every run.
"""

import io
import json
import os
import signal
import threading
import time
from http.client import HTTPConnection

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.serve import (
    BatchPolicy, PoolConfig, PredictServer, ServeConfig, ServedModel,
    WorkerCrashedError, load_checkpoint, save_checkpoint,
)

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
#: pre-forward sleep inside workers: wide enough that waiting for the
#: parent-side busy flag then killing always lands mid-batch
KILL_WINDOW_S = 0.5


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    nn.init.seed(0)
    model, _ = build_method("SDM-PEB", GRID)
    model.set_output_stats(0.5, 1.0)
    path = tmp_path_factory.mktemp("fault-ckpt") / "model.npz"
    save_checkpoint(model, path, method="SDM-PEB", grid=GRID)
    return path


def pooled_model(path, workers=2, delay_s=KILL_WINDOW_S, **policy_kwargs):
    loaded, manifest = load_checkpoint(path)
    policy_kwargs.setdefault("max_batch_size", 1)
    policy_kwargs.setdefault("max_wait_ms", 0.0)
    policy_kwargs.setdefault("cache_entries", 0)
    return ServedModel(loaded, manifest, BatchPolicy(**policy_kwargs),
                       workers=workers,
                       pool_config=PoolConfig(forward_delay_s=delay_s))


def wait_until(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def kill_mid_batch(served, clip, submit):
    """Run ``submit`` on a thread and SIGKILL the owning worker while the
    batch is in flight.  Returns (outcome box, killed pid)."""
    shard, _ = served.batcher.shard_of(clip)
    handle = served.pool._workers[shard]
    pid = handle.process.pid
    box = {}

    def run():
        try:
            box["result"] = submit()
        except Exception as error:  # noqa: BLE001 - captured for assertions
            box["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert wait_until(lambda: handle.busy, timeout_s=30.0), \
        "batch never reached the worker pipe"
    os.kill(pid, signal.SIGKILL)
    thread.join(60.0)
    assert not thread.is_alive()
    return box, pid


def wait_for_respawn(pool, min_restarts=1, timeout_s=15.0):
    assert wait_until(
        lambda: (lambda s: s["alive"] == s["workers"]
                 and s["restarts"] >= min_restarts)(pool.stats()),
        timeout_s=timeout_s), f"pool never recovered: {pool.stats()}"


class TestDirectKill:
    def test_sigkill_mid_batch_errors_then_recovers_bitwise(self, checkpoint):
        """The in-flight request fails with WorkerCrashedError — never a
        wrong answer — and the respawned worker serves the same bytes a
        single-worker reference does."""
        rng = np.random.default_rng(0)
        clip = rng.random(GRID.shape)
        reference = pooled_model(checkpoint, workers=1, delay_s=0.0)
        expected = reference.batcher.submit(clip, timeout_s=60.0)
        reference.close()

        served = pooled_model(checkpoint)
        try:
            box, killed_pid = kill_mid_batch(
                served, clip,
                lambda: served.batcher.submit(clip, timeout_s=60.0))
            assert "result" not in box, \
                "a killed worker must never produce an answer"
            assert isinstance(box["error"], WorkerCrashedError)
            wait_for_respawn(served.pool)
            stats = served.pool.stats()
            shard, _ = served.batcher.shard_of(clip)
            new_pid = stats["per_worker"][shard]["pid"]
            assert new_pid is not None and new_pid != killed_pid
            retried = served.batcher.submit(clip, timeout_s=60.0)
            assert np.array_equal(retried, expected)
        finally:
            served.close()

    def test_idle_worker_crash_respawned_by_monitor(self, checkpoint):
        served = pooled_model(checkpoint, delay_s=0.0)
        try:
            pid = served.pool._workers[0].process.pid
            os.kill(pid, signal.SIGKILL)
            wait_for_respawn(served.pool)
            assert served.pool._workers[0].process.pid != pid
            # the respawned worker actually serves
            clip = np.random.default_rng(1).random(GRID.shape)
            served.batcher.submit(clip, timeout_s=60.0)
        finally:
            served.close()


class TestHTTPKill:
    def test_503_retry_after_then_healthz_reports_restart(self, checkpoint,
                                                          tmp_path):
        served = pooled_model(checkpoint)
        # crash dumps go to the flight dir — keep them out of the repo root
        server = PredictServer(
            served,
            ServeConfig(port=0, flight_dump_dir=str(tmp_path))).start()
        try:
            host, port = server.address
            rng = np.random.default_rng(2)
            clip = rng.random(GRID.shape)

            def post():
                connection = HTTPConnection(host, port, timeout=120)
                buffer = io.BytesIO()
                np.savez(buffer, acid=clip)
                connection.request(
                    "POST", "/v1/predict", body=buffer.getvalue(),
                    headers={"Content-Type": "application/octet-stream"})
                response = connection.getresponse()
                body = response.read()
                headers = dict(response.getheaders())
                connection.close()
                return response.status, headers, body

            box, _ = kill_mid_batch(served, clip, post)
            status, headers, _ = box["result"]
            assert status == 503
            assert "Retry-After" in headers
            wait_for_respawn(served.pool)

            connection = HTTPConnection(host, port, timeout=60)
            connection.request("GET", "/healthz")
            health = json.loads(connection.getresponse().read())
            assert health["worker_restarts"] >= 1
            pools = health["pools"]
            assert any(p["restarts"] >= 1 and p["alive"] == p["workers"]
                       for p in pools.values())
            assert health["shm"]["segment_count"] == 1

            # the retry succeeds with a real prediction
            status, _, body = post()
            assert status == 200
            with np.load(io.BytesIO(body)) as archive:
                assert archive["prediction"].shape == (GRID.nz, GRID.ny, GRID.nx)
            connection.close()
        finally:
            server.shutdown()

    def test_span_tree_stays_well_formed_through_crash(
            self, checkpoint, tmp_path_factory):
        """Every span written during a crash+respawn cycle still parents
        into a span that exists, and the crashed request's tree contains
        serve.request + serve.batch (the forward died with the worker)."""
        from repro.obs import disable_tracing, enable_tracing

        trace_path = tmp_path_factory.mktemp("fault-trace") / "trace.jsonl"
        dump_dir = tmp_path_factory.mktemp("fault-flight")
        served = pooled_model(checkpoint)
        server = PredictServer(
            served,
            ServeConfig(port=0, flight_dump_dir=str(dump_dir))).start()
        enable_tracing(trace_path)
        try:
            host, port = server.address
            rng = np.random.default_rng(3)
            clip = rng.random(GRID.shape)

            def post(payload, request_id):
                connection = HTTPConnection(host, port, timeout=120)
                buffer = io.BytesIO()
                np.savez(buffer, acid=payload)
                connection.request(
                    "POST", "/v1/predict", body=buffer.getvalue(),
                    headers={"Content-Type": "application/octet-stream",
                             "X-Request-Id": request_id})
                response = connection.getresponse()
                response.read()
                connection.close()
                return response.status

            box, _ = kill_mid_batch(served, clip,
                                    lambda: post(clip, "req-killed"))
            assert box["result"] == 503
            wait_for_respawn(served.pool)
            assert post(clip, "req-retry") == 200

            # the handler thread closes the serve.request span a beat
            # after the client reads the response body; wait for both
            # request spans to land before tearing tracing down, or the
            # tree check below races the final write
            def request_spans_written():
                text = trace_path.read_text() if trace_path.exists() else ""
                return all(
                    any('"serve.request"' in line and rid in line
                        for line in text.splitlines())
                    for rid in ('"req-killed"', '"req-retry"'))

            assert wait_until(request_spans_written, timeout_s=10.0), \
                "request spans never reached the trace file"
        finally:
            server.shutdown()
            disable_tracing()

        spans = [json.loads(line)
                 for line in trace_path.read_text().splitlines() if line]
        spans = [s for s in spans if s.get("type") == "span"]
        by_id = {s["id"]: s for s in spans}
        # well-formed: every parent pointer resolves
        for s in spans:
            if s.get("parent"):
                assert s["parent"] in by_id, \
                    f"dangling parent {s['parent']} on {s['name']}"
        by_request = {}
        for s in spans:
            rid = s.get("attrs", {}).get("request_id")
            if rid and s.get("trace"):
                by_request[rid] = s["trace"]
        for rid in ("req-killed", "req-retry"):
            assert rid in by_request
            names = {s["name"] for s in spans
                     if s.get("trace") == by_request[rid]}
            assert "serve.request" in names
            assert "serve.batch" in names
        # the successful retry's tree reaches the respawned worker
        retry_names = {s["name"] for s in spans
                       if s.get("trace") == by_request["req-retry"]}
        assert "serve.forward" in retry_names
