"""Prometheus text exposition: cumulative histograms must be well-formed.

Prometheus semantics the renderer must honor: ``_bucket`` series are
*cumulative* (each ``le`` bound counts everything at or below it, so
counts are monotone non-decreasing in ``le``), the ``+Inf`` bucket
equals ``_count``, and ``_sum`` is the running total of observed values.
"""

import re

import pytest

from repro.obs import counter, gauge, histogram, reset_metrics, timer
from repro.serve import escape_label_value, render_prometheus


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


def bucket_series(text, name):
    """[(le, count)] for one histogram family, in emission order."""
    pattern = re.compile(rf'^{name}_bucket{{le="([^"]+)"}} (\d+)$', re.M)
    return [(le, int(count)) for le, count in pattern.findall(text)]


class TestHistogramFormat:
    BOUNDS = (0.1, 0.5, 1.0, 5.0)
    VALUES = (0.05, 0.3, 0.3, 0.7, 2.0, 100.0)

    def render(self):
        h = histogram("serve.request_latency_s", bounds=self.BOUNDS)
        for value in self.VALUES:
            h.observe(value)
        return render_prometheus()

    def test_buckets_are_cumulative_and_monotone(self):
        series = bucket_series(self.render(), "repro_serve_request_latency_s")
        counts = [count for _, count in series]
        assert counts == sorted(counts)
        # cumulative, not per-bucket: le=0.5 includes the le=0.1 value
        assert dict(series)["0.1"] == 1
        assert dict(series)["0.5"] == 3
        assert dict(series)["1"] == 4
        assert dict(series)["5"] == 5

    def test_inf_bucket_equals_count(self):
        text = self.render()
        series = dict(bucket_series(text, "repro_serve_request_latency_s"))
        assert series["+Inf"] == len(self.VALUES)
        assert f"repro_serve_request_latency_s_count {len(self.VALUES)}" in text

    def test_sum_matches_observations(self):
        text = self.render()
        match = re.search(r"^repro_serve_request_latency_s_sum (\S+)$", text, re.M)
        assert float(match.group(1)) == pytest.approx(sum(self.VALUES))

    def test_type_line_present(self):
        assert "# TYPE repro_serve_request_latency_s histogram" in self.render()

    def test_every_configured_bound_emitted(self):
        series = bucket_series(self.render(), "repro_serve_request_latency_s")
        assert [le for le, _ in series] == ["0.1", "0.5", "1", "5", "+Inf"]


class TestOtherFamilies:
    def test_counter_rendering(self):
        counter("serve.http.predict").inc(3)
        text = render_prometheus()
        assert "# TYPE repro_serve_http_predict counter" in text
        assert "repro_serve_http_predict_total 3" in text

    def test_timer_rendering(self):
        timer("serve.batch_compute").observe(0.25)
        text = render_prometheus()
        assert "# TYPE repro_serve_batch_compute_seconds summary" in text
        assert "repro_serve_batch_compute_seconds_count 1" in text

    def test_metric_names_flattened(self):
        histogram("health.shadow.cd_error_nm", bounds=(1.0,)).observe(0.5)
        text = render_prometheus()
        assert 'repro_health_shadow_cd_error_nm_bucket{le="1"} 1' in text

    def test_gauge_rendering(self):
        gauge("process.rss_bytes").set(4096.0)
        text = render_prometheus()
        assert "# TYPE repro_process_rss_bytes gauge" in text
        assert "repro_process_rss_bytes 4096" in text


# ---------------------------------------------------------------------------
# A minimal exposition-format parser: what a Prometheus scraper validates.
# Strict on the rules that break ingestion (metric-name charset, HELP
# before TYPE before samples, sample names legal for the family's kind,
# parseable values) plus the histogram consistency invariants.
# ---------------------------------------------------------------------------

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})? (\S+)$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n])*)"$')

#: legal sample-name suffixes relative to the family name, per kind
SUFFIXES = {
    "counter": {"_total"},
    "gauge": {""},
    "summary": {"_count", "_sum"},
    "histogram": {"_bucket", "_count", "_sum"},
}


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    return float(text)            # raises on garbage: that IS the check


def parse_exposition(text):
    """family -> {"kind", "samples": [(name, {label: value}, value)]}.

    Raises AssertionError on any rule a scraper would reject.
    """
    families = {}
    current = None                # family the last # TYPE opened
    pending_help = None           # family the last # HELP announced
    for line in text.rstrip("\n").split("\n"):
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            assert NAME_RE.match(name), f"bad family name: {name!r}"
            assert name not in families, f"duplicate family {name!r}"
            pending_help = name
            current = None
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name == pending_help, \
                f"# TYPE {name} not preceded by its # HELP"
            assert kind in SUFFIXES, f"unknown kind {kind!r}"
            families[name] = {"kind": kind, "samples": []}
            current = name
            pending_help = None
        else:
            match = SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            name, label_text, value = match.groups()
            assert current is not None and name.startswith(current), \
                f"sample {name!r} outside its family block"
            suffix = name[len(current):]
            kind = families[current]["kind"]
            assert suffix in SUFFIXES[kind], \
                f"sample suffix {suffix!r} illegal for {kind}"
            labels = {}
            for pair in (label_text.split(",") if label_text else []):
                pair_match = LABEL_RE.match(pair)
                assert pair_match, f"bad label pair {pair!r} in {line!r}"
                labels[pair_match.group(1)] = pair_match.group(2)
            families[current]["samples"].append(
                (name, labels, parse_value(value)))
    return families


def check_histogram_invariants(family_name, entry):
    buckets = [(labels.get("le"), value)
               for name, labels, value in entry["samples"]
               if name.endswith("_bucket")]
    scalars = {name: value for name, labels, value in entry["samples"]
               if not name.endswith("_bucket")}
    count = scalars[f"{family_name}_count"]
    total = scalars[f"{family_name}_sum"]
    counts = [value for _, value in buckets]
    assert counts == sorted(counts), \
        f"{family_name}: buckets not cumulative-monotone: {counts}"
    assert buckets[-1][0] == "+Inf", f"{family_name}: missing +Inf bucket"
    assert buckets[-1][1] == count, \
        f"{family_name}: +Inf bucket != _count"
    assert all(value <= count for value in counts), \
        f"{family_name}: a bucket exceeds _count"
    assert total >= 0.0
    if count == 0:
        assert total == 0.0


class TestExpositionValidity:
    def populate(self):
        counter("serve.http.predict").inc(3)
        counter("serve.http.status.200").inc(3)
        counter("flight.crashes.pool.worker-0").inc()
        gauge("process.rss_bytes").set(1.5e8)
        gauge("slo.availability.burn_fast").set(0.0)
        gauge("serve.jobs.oldest_checkpoint_age_s").set(-1.0)
        timer("serve.batch_compute").observe(0.25)
        h = histogram("serve.request_latency_s",
                      bounds=(0.1, 0.5, 1.0, 5.0))
        for value in (0.05, 0.3, 0.7, 9.0):
            h.observe(value)
        histogram("health.shadow.cd_error_nm", bounds=(1.0, 2.0))

    def test_full_registry_render_is_scrapeable(self):
        self.populate()
        families = parse_exposition(render_prometheus())
        assert "repro_serve_http_predict" in families
        assert families["repro_process_rss_bytes"]["kind"] == "gauge"
        assert families["repro_serve_batch_compute_seconds"]["kind"] == \
            "summary"

    def test_histogram_invariants_hold(self):
        self.populate()
        families = parse_exposition(render_prometheus())
        checked = 0
        for name, entry in families.items():
            if entry["kind"] == "histogram":
                check_histogram_invariants(name, entry)
                checked += 1
        assert checked == 2        # the empty histogram is validated too

    def test_every_family_has_exactly_one_help_and_type(self):
        self.populate()
        text = render_prometheus()
        helps = re.findall(r"^# HELP (\S+)", text, re.M)
        types = re.findall(r"^# TYPE (\S+)", text, re.M)
        assert helps == types                  # pairing and ordering
        assert len(helps) == len(set(helps))   # no duplicates

    def test_help_carries_the_dotted_source_name(self):
        counter("serve.http.predict").inc()
        text = render_prometheus()
        assert ("# HELP repro_serve_http_predict "
                "repro metric serve.http.predict") in text

    def test_parser_rejects_malformed_input(self):
        with pytest.raises(AssertionError):
            parse_exposition("repro_orphan_sample 1")
        with pytest.raises(AssertionError):
            parse_exposition("# TYPE repro_x counter\nrepro_x_total 1")


class TestLabelEscaping:
    def test_escapes_backslash_quote_newline(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        # escaping order: backslashes first, so a quote never doubles
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_escaped_values_survive_the_parser(self):
        for raw in ('quo"te', "back\\slash", "new\nline", "plain"):
            line = (f"# HELP repro_x repro metric x\n"
                    f"# TYPE repro_x counter\n"
                    f'repro_x_total{{tag="{escape_label_value(raw)}"}} 1')
            families = parse_exposition(line)
            assert len(families["repro_x"]["samples"]) == 1
