"""Trainer validation tracking, early stopping and best-weights restore."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, TrainConfig
from repro.baselines import DeepCNN, DeepCNNConfig

RNG = np.random.default_rng(53)


def tiny_model():
    nn.init.seed(0)
    return DeepCNN(DeepCNNConfig(width=4, num_blocks=1))


def data(n=4):
    inputs = RNG.random((n, 2, 8, 8))
    return inputs, 2.0 * inputs + 1.0


class TestValidation:
    def test_val_losses_recorded(self):
        x, y = data()
        vx, vy = data(2)
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=3),
                          val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert len(history.val_losses) == 3
        assert all(np.isfinite(v) for v in history.val_losses)

    def test_val_requires_both_arrays(self):
        x, y = data()
        with pytest.raises(ValueError):
            Trainer(tiny_model(), x, y, TrainConfig(), val_inputs=x)

    def test_validation_loss_without_data_raises(self):
        x, y = data()
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.validation_loss()

    def test_best_epoch_tracked(self):
        x, y = data()
        vx, vy = data(2)
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=5),
                          val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert 1 <= history.best_epoch <= 5


class TestEarlyStopping:
    def test_requires_validation(self):
        x, y = data()
        with pytest.raises(ValueError):
            Trainer(tiny_model(), x, y, TrainConfig(early_stop_patience=2))

    def test_stops_when_no_improvement(self):
        """Zero learning rate means no improvement is possible, so the
        loop must stop after `patience` epochs."""
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=50, learning_rate=0.0, early_stop_patience=3)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert history.stopped_early
        assert history.epochs[-1] <= 6

    def test_runs_full_schedule_when_improving(self):
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=6, learning_rate=3e-3, early_stop_patience=6)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert not history.stopped_early or history.epochs[-1] == 6


class TestBestRestore:
    def test_restored_weights_match_best_val(self):
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=8, learning_rate=3e-3, restore_best=True)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        final_val = trainer.validation_loss()
        assert np.isclose(final_val, min(history.val_losses), rtol=1e-6)

    def test_no_restore_keeps_last(self):
        x, y = data()
        vx, vy = data(2)
        nn.init.seed(0)
        model = tiny_model()
        config = TrainConfig(epochs=4, learning_rate=0.05, restore_best=False,
                             shuffle_seed=3)
        trainer = Trainer(model, x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        # with a large lr the last epoch is usually not the best; either
        # way the final weights must produce the *last* recorded val loss
        assert np.isclose(trainer.validation_loss(), history.val_losses[-1], rtol=1e-6)
