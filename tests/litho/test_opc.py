"""Rule-based OPC mask-bias calibration."""

import numpy as np
import pytest

from repro.config import GridConfig, LithoConfig
from repro.litho import generate_clip
from repro.litho.opc import (
    OPCResult, RigorousPEBBackend, SurrogatePEBBackend, calibrate_mask_bias,
)

CONFIG = LithoConfig(grid=GridConfig(size_um=0.8, nx=24, ny=24, nz=2))


@pytest.fixture(scope="module")
def clip():
    return generate_clip(3, grid=CONFIG.grid, cd_range_nm=(70.0, 100.0))


@pytest.fixture(scope="module")
def rigorous(clip):
    backend = RigorousPEBBackend(CONFIG, time_step_s=1.0)
    return calibrate_mask_bias(clip, CONFIG, backend, iterations=3, gain=0.7)


class TestCalibration:
    def test_error_improves(self, rigorous):
        assert rigorous.final_rms_nm < rigorous.initial_rms_nm

    def test_error_traces_recorded(self, rigorous):
        assert len(rigorous.cd_errors_nm) == rigorous.iterations + 1

    def test_biases_bounded(self, clip):
        backend = RigorousPEBBackend(CONFIG, time_step_s=1.0)
        result = calibrate_mask_bias(clip, CONFIG, backend, iterations=2,
                                     max_bias_nm=15.0)
        assert np.all(np.abs(result.biases_nm) <= 15.0 + 1e-9)

    def test_corrected_clip_geometry_changed(self, rigorous, clip):
        original = np.array([c.width_nm for c in clip.contacts])
        corrected = np.array([c.width_nm for c in rigorous.clip.contacts])
        assert not np.allclose(original, corrected)

    def test_invalid_iterations(self, clip):
        backend = RigorousPEBBackend(CONFIG, time_step_s=1.0)
        with pytest.raises(ValueError):
            calibrate_mask_bias(clip, CONFIG, backend, iterations=0)


class TestSurrogateBackend:
    class PerfectSurrogate:
        """Wraps the rigorous solver behind the surrogate interface."""

        def __init__(self):
            self.solver = RigorousPEBBackend(CONFIG, time_step_s=1.0)
            self.calls = 0

        def predict_inhibitor(self, acid):
            self.calls += 1
            return self.solver.inhibitor(acid)

    def test_surrogate_backend_used(self, clip):
        surrogate = self.PerfectSurrogate()
        backend = SurrogatePEBBackend(surrogate)
        result = calibrate_mask_bias(clip, CONFIG, backend, iterations=2)
        assert surrogate.calls == 3  # 2 iterations + final measurement
        assert isinstance(result, OPCResult)

    def test_matching_backends_agree(self, clip, rigorous):
        surrogate = SurrogatePEBBackend(self.PerfectSurrogate())
        result = calibrate_mask_bias(clip, CONFIG, surrogate, iterations=3, gain=0.7)
        assert np.allclose(result.biases_nm, rigorous.biases_nm)
