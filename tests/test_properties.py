"""Property-based tests (hypothesis) on cross-cutting invariants.

These complement the per-module suites: each property here encodes a
mathematical identity the system must satisfy for *all* inputs, not a
hand-picked example — linearity of convolution, the scan semigroup law,
conservation laws of the reaction steps, monotonicity of the Eikonal
solution, and invariances of the normalization layers and metrics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import tensor as T
from repro.tensor import functional as F
from repro.ssm import scan_sequential
from repro.litho import eikonal, peb
from repro.litho.mask import Contact, rasterize
from repro.config import GridConfig
from repro.metrics import nrmse


def arrays(shape, lo=-3.0, hi=3.0):
    return st.builds(
        lambda seed: np.random.default_rng(seed).uniform(lo, hi, size=shape),
        st.integers(0, 2 ** 31 - 1),
    )


class TestAutogradLinearity:
    @settings(max_examples=20, deadline=None)
    @given(arrays((1, 2, 3, 4, 4)), arrays((2, 2, 2, 2, 2)), st.floats(-2.0, 2.0))
    def test_conv3d_linear_in_input(self, x, w, scale):
        base = T.conv3d(T.Tensor(x), T.Tensor(w)).numpy()
        scaled = T.conv3d(T.Tensor(scale * x), T.Tensor(w)).numpy()
        assert np.allclose(scaled, scale * base, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(arrays((1, 2, 3, 4, 4)), arrays((1, 2, 3, 4, 4)), arrays((2, 2, 2, 2, 2)))
    def test_conv3d_additive(self, x1, x2, w):
        w_t = T.Tensor(w)
        joint = T.conv3d(T.Tensor(x1 + x2), w_t).numpy()
        split = T.conv3d(T.Tensor(x1), w_t).numpy() + T.conv3d(T.Tensor(x2), w_t).numpy()
        assert np.allclose(joint, split, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(arrays((3, 4)))
    def test_gradient_of_sum_is_ones(self, x):
        t = T.Tensor(x, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)

    @settings(max_examples=20, deadline=None)
    @given(arrays((2, 3, 4)))
    def test_transpose_roundtrip(self, x):
        t = T.Tensor(x)
        assert np.allclose(t.transpose((2, 0, 1)).transpose((1, 2, 0)).numpy(), x)


class TestFunctionalInvariants:
    @settings(max_examples=20, deadline=None)
    @given(arrays((4, 7)))
    def test_softmax_simplex(self, x):
        out = F.softmax(T.Tensor(x), axis=-1).numpy()
        assert np.all(out >= 0.0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(arrays((4, 7)), st.floats(-5.0, 5.0))
    def test_softmax_shift_invariant(self, x, shift):
        a = F.softmax(T.Tensor(x), axis=-1).numpy()
        b = F.softmax(T.Tensor(x + shift), axis=-1).numpy()
        assert np.allclose(a, b, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(arrays((3, 8)), st.floats(1.0, 10.0), st.floats(-5.0, 5.0))
    def test_layer_norm_affine_input_invariant(self, x, scale, shift):
        # exact only for eps = 0; the tolerance budgets the eps term
        a = F.layer_norm(T.Tensor(x)).numpy()
        b = F.layer_norm(T.Tensor(scale * x + shift)).numpy()
        assert np.allclose(a, b, atol=1e-3)


class TestScanAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 20), st.integers(1, 18), st.integers(0, 2 ** 31 - 1))
    def test_semigroup_split(self, length, split, seed):
        """Scanning a sequence equals scanning its halves with carry."""
        split = min(split, length - 1)
        rng = np.random.default_rng(seed)
        a = np.exp(-rng.uniform(0.0, 3.0, size=(1, length, 2, 2)))
        b = rng.standard_normal((1, length, 2, 2))
        full = scan_sequential(a, b)
        head = scan_sequential(a[:, :split], b[:, :split])
        carry = head[:, -1]
        # fold carry into the first step of the tail
        tail_b = b[:, split:].copy()
        tail_b[:, 0] += a[:, split] * carry
        tail = scan_sequential(a[:, split:], tail_b)
        assert np.allclose(np.concatenate([head, tail], axis=1), full, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 2 ** 31 - 1), st.floats(-2.0, 2.0))
    def test_linear_in_drive(self, length, seed, scale):
        rng = np.random.default_rng(seed)
        a = np.exp(-rng.uniform(0.0, 3.0, size=(1, length, 1, 2)))
        b = rng.standard_normal((1, length, 1, 2))
        assert np.allclose(scan_sequential(a, scale * b), scale * scan_sequential(a, b))


class TestReactionInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.01, 10.0))
    def test_neutralization_conserves_difference(self, acid, base, dt):
        new_acid, new_base = peb.neutralization_step(np.array([acid]), np.array([base]), 8.7, dt)
        assert np.isclose(new_acid[0] - new_base[0], acid - base, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.01, 10.0))
    def test_neutralization_monotone_decreasing(self, acid, base, dt):
        new_acid, new_base = peb.neutralization_step(np.array([acid]), np.array([base]), 8.7, dt)
        assert new_acid[0] <= acid + 1e-12
        assert new_base[0] <= base + 1e-12
        assert new_acid[0] >= 0.0 and new_base[0] >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0), st.floats(0.01, 5.0))
    def test_catalysis_bounded(self, inhibitor, acid, dt):
        out = peb.catalysis_step(np.array([inhibitor]), np.array([acid]), 0.9, dt)
        assert 0.0 <= out[0] <= inhibitor + 1e-12


class TestEikonalMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_slower_medium_never_arrives_earlier(self, seed):
        rng = np.random.default_rng(seed)
        slowness = np.exp(rng.uniform(-1.0, 1.0, size=(3, 5, 5)))
        faster = eikonal.fast_iterative(slowness, (1.0, 1.0, 1.0))
        slower = eikonal.fast_iterative(slowness * 1.5, (1.0, 1.0, 1.0))
        assert np.all(slower >= faster - 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 1000))
    def test_arrival_at_least_straight_line(self, seed):
        """Arrival can never beat the straight-down path through the
        fastest medium."""
        rng = np.random.default_rng(seed)
        slowness = np.exp(rng.uniform(-1.0, 1.0, size=(4, 4, 4)))
        times = eikonal.fast_iterative(slowness, (1.0, 1.0, 1.0))
        lower_bound = slowness.min() * (np.arange(4) + 1)
        assert np.all(times >= lower_bound[:, None, None] - 1e-9)


class TestMaskRasterization:
    @settings(max_examples=25, deadline=None)
    @given(st.floats(100.0, 500.0), st.floats(100.0, 500.0),
           st.floats(10.0, 150.0), st.floats(10.0, 150.0))
    def test_area_preserved(self, cx, cy, w, h):
        grid = GridConfig(size_um=0.64, nx=64, ny=64, nz=1)
        pattern = rasterize([Contact(cx, cy, w, h)], grid)
        pixel_area = grid.dx_nm * grid.dy_nm
        assert np.isclose(pattern.sum() * pixel_area, w * h, rtol=1e-9)


class TestMetricInvariants:
    @settings(max_examples=20, deadline=None)
    @given(arrays((4, 4), lo=0.5, hi=2.0), arrays((4, 4), lo=0.5, hi=2.0),
           st.floats(0.1, 100.0))
    def test_nrmse_scale_invariant(self, predicted, reference, scale):
        assert np.isclose(nrmse(scale * predicted, scale * reference),
                          nrmse(predicted, reference))
