"""Full lithography flow: mask -> resist profile -> CD measurement.

Demonstrates the physics substrate on its own (no learning): images a
contact clip, bakes it with the rigorous PEB solver, develops it with
the Mack model + Eikonal front propagation, and measures every printed
contact's critical dimensions against the design values — the
measurement loop behind the paper's CD-error metric (Eq. 14).

    python examples/full_flow_cd.py
"""

import numpy as np

from repro.config import LithoConfig
from repro.litho import (
    generate_clip, aerial_image_stack, initial_photoacid, RigorousPEBSolver,
    development_arrival, resist_mask, contact_cds,
)

config = LithoConfig()  # 2x2 um clip on the default 64x64x8 grid
grid = config.grid

print("1) mask: seeded 28nm-node-style contact array")
clip = generate_clip(seed=7, grid=grid)
print(f"   {len(clip.contacts)} contacts, density {clip.pattern.mean():.3f}")

print("2) optics: annular-source Abbe imaging + standing waves + absorption")
aerial = aerial_image_stack(clip.pattern, grid, config.optics)
print(f"   aerial image {aerial.shape}, peak {aerial.max():.3f} of clear field")

print("3) exposure: Dill model")
acid = initial_photoacid(aerial, config.exposure)
print(f"   initial photoacid in [{acid.min():.3f}, {acid.max():.3f}]")

print("4) PEB: reaction-diffusion bake (Table I parameters, 90 s)")
solver = RigorousPEBSolver(grid, config.peb, splitting="strang", time_step_s=0.25)
result = solver.solve(acid)
print(f"   final inhibitor in [{result.inhibitor.min():.4f}, {result.inhibitor.max():.4f}]")
print(f"   residual acid max {result.acid.max():.4f}, base min {result.base.min():.4f}")

print("5) development: Mack rates + Eikonal front propagation (60 s)")
arrival = development_arrival(result.inhibitor, grid, config.develop)
kept = resist_mask(arrival, config.develop)
print(f"   {100 * (1 - kept.mean()):.1f}% of resist volume developed away")

print("5b) extended metrology + surface export")
from repro.litho import height_map, export_obj, profile_report

report = profile_report(arrival, clip.contacts, grid, config.develop)
print(f"   CDU (3-sigma) x/y: {report.cdu_x_nm:.1f} / {report.cdu_y_nm:.1f} nm, "
      f"worst EPE {report.worst_epe_nm:.1f} nm, "
      f"mean sidewall {report.mean_sidewall_deg:.1f} deg, "
      f"resist loss {report.resist_loss_nm:.1f} nm")
heights = height_map(arrival, grid, config.develop)
faces = export_obj(heights, grid, "resist_surface.obj")
print(f"   resist surface mesh: resist_surface.obj ({faces} triangles)")

print("6) CD measurement at the resist bottom (printed contacts)")
cds = contact_cds(arrival, clip.contacts, grid, config.develop)
design_x = np.array([c.width_nm for c in clip.contacts])
design_y = np.array([c.height_nm for c in clip.contacts])
opened = cds["x"] > 0
print(f"   {opened.sum()}/{len(clip.contacts)} contacts printed open")
print(f"   mean print bias x: {np.mean(cds['x'][opened] - design_x[opened]):+.1f} nm")
print(f"   mean print bias y: {np.mean(cds['y'][opened] - design_y[opened]):+.1f} nm")
print("\n   contact        design (x, y)    printed (x, y)")
for contact, cd_x, cd_y in list(zip(clip.contacts, cds["x"], cds["y"]))[:8]:
    print(f"   ({contact.center_x_nm:6.0f},{contact.center_y_nm:6.0f}) nm   "
          f"({contact.width_nm:5.1f}, {contact.height_nm:5.1f})    "
          f"({cd_x:5.1f}, {cd_y:5.1f})")
