"""Physics-golden tests for the rigorous PEB solver.

Certifies the solver against *independently derived* closed-form
solutions of Eqs. 1-4 in degenerate regimes where the exact answer is
known, plus an empirical convergence-order check of the operator
splitting in ``dt``:

* pure lateral diffusion — Neumann-Laplacian DCT modes decay by
  ``exp(lambda_k D T)`` with ``lambda_k = -4 sin^2(pi k / 2n) / h^2``;
* pure normal (z) diffusion — the matrix exponential reproduces the
  same closed-form mode decay along z;
* zero diffusion — the deprotection integral is exact:
  ``I(T) = I0 exp(-k_c A0 T)`` without neutralization (bitwise-stable
  for any dt because every sub-step is exact), and with neutralization
  the acid follows the conserved-difference closed form while the
  inhibitor converges to ``I0 exp(-k_c \\int A dt)`` with the integral
  evaluated analytically;
* convergence order — Lie splitting is O(dt), Strang is O(dt^2)
  (measured in the neutralization-free configuration where the reaction
  sub-flow is exactly the catalysis ODE).

The expensive sweeps carry ``@pytest.mark.slow`` and are excluded from
the default tier-1 run (``-m "not slow"``); CI runs them in a dedicated
job.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.config import GridConfig, PEBConfig
from repro.litho import peb

GRID = GridConfig(size_um=1.0, nx=16, ny=16, nz=4)

#: reaction-free, surface-exchange-free physics: pure diffusion
PURE_DIFFUSION = replace(
    PEBConfig(), catalysis_rate=0.0, neutralization_rate=0.0,
    transfer_coefficient_acid=0.0, transfer_coefficient_base=0.0,
)

#: diffusion-free, surface-exchange-free physics: pointwise reactions
ZERO_DIFFUSION = replace(
    PEBConfig(), normal_diffusion_length_acid_nm=0.0,
    normal_diffusion_length_base_nm=0.0, lateral_diffusion_length_acid_nm=0.0,
    lateral_diffusion_length_base_nm=0.0, transfer_coefficient_acid=0.0,
    transfer_coefficient_base=0.0,
)


def neumann_mode(n: int, k: int) -> np.ndarray:
    """k-th eigenvector of the 1D zero-flux discrete Laplacian."""
    i = np.arange(n)
    return np.cos(np.pi * k * (2 * i + 1) / (2.0 * n))


def neumann_decay(n: int, k: int, spacing: float, diffusivity: float, t: float) -> float:
    """Closed-form decay factor of that mode under diffusion for time t."""
    eigenvalue = -4.0 * np.sin(np.pi * k / (2.0 * n)) ** 2 / spacing ** 2
    return float(np.exp(eigenvalue * diffusivity * t))


def gaussian_acid(grid=GRID, amplitude=0.8, sigma_nm=120.0):
    x = (np.arange(grid.nx) + 0.5) * grid.dx_nm
    y = (np.arange(grid.ny) + 0.5) * grid.dy_nm
    cx, cy = x.mean(), y.mean()
    blob = np.exp(-(((x[None, :] - cx) ** 2 + (y[:, None] - cy) ** 2) / (2 * sigma_nm ** 2)))
    profile = np.linspace(1.0, 0.6, grid.nz)
    return amplitude * profile[:, None, None] * blob[None, :, :]


class TestPureLateralDiffusion:
    """Solver end-to-end == closed-form DCT mode decay (lateral only)."""

    CFG = replace(PURE_DIFFUSION, normal_diffusion_length_acid_nm=0.0,
                  normal_diffusion_length_base_nm=0.0,
                  lateral_diffusion_length_acid_nm=100.0)

    def test_x_mode_decays_in_closed_form(self):
        k = 3
        mode = neumann_mode(GRID.nx, k)
        acid0 = 0.5 + 0.3 * np.broadcast_to(mode, GRID.shape).copy()
        solver = peb.RigorousPEBSolver(GRID, self.CFG, time_step_s=30.0)
        result = solver.solve(acid0)
        duration = self.CFG.duration_s
        decay = neumann_decay(GRID.nx, k, GRID.dx_nm,
                              self.CFG.diffusivity("acid", "lateral"), duration)
        expected = 0.5 + 0.3 * decay * np.broadcast_to(mode, GRID.shape)
        assert 0.3 < decay < 0.9  # the test actually exercises decay
        assert np.allclose(result.acid, expected, atol=1e-12)

    def test_y_mode_decays_in_closed_form(self):
        k = 2
        mode = neumann_mode(GRID.ny, k)[None, :, None]
        acid0 = (0.4 + 0.2 * mode) * np.ones(GRID.shape)
        solver = peb.RigorousPEBSolver(GRID, self.CFG, splitting="strang",
                                       time_step_s=45.0)
        result = solver.solve(acid0)
        decay = neumann_decay(GRID.ny, k, GRID.dy_nm,
                              self.CFG.diffusivity("acid", "lateral"),
                              self.CFG.duration_s)
        expected = (0.4 + 0.2 * decay * mode) * np.ones(GRID.shape)
        assert np.allclose(result.acid, expected, atol=1e-12)

    def test_gaussian_matches_mode_synthesis(self):
        """A smooth blob == the sum of its modes, each decayed exactly."""
        from scipy import fft as spfft

        acid0 = gaussian_acid()
        solver = peb.RigorousPEBSolver(GRID, self.CFG, time_step_s=10.0)
        result = solver.solve(acid0)
        diffusivity = self.CFG.diffusivity("acid", "lateral")
        lam_y = -4.0 * np.sin(np.pi * np.arange(GRID.ny) / (2.0 * GRID.ny)) ** 2 / GRID.dy_nm ** 2
        lam_x = -4.0 * np.sin(np.pi * np.arange(GRID.nx) / (2.0 * GRID.nx)) ** 2 / GRID.dx_nm ** 2
        coeff = spfft.dctn(acid0, axes=(1, 2), type=2, norm="ortho")
        coeff *= np.exp(self.CFG.duration_s * diffusivity
                        * (lam_y[:, None] + lam_x[None, :]))[None, :, :]
        expected = spfft.idctn(coeff, axes=(1, 2), type=2, norm="ortho")
        assert np.allclose(result.acid, expected, atol=1e-11)
        assert np.allclose(result.inhibitor, 1.0)  # no catalysis happened

    def test_mass_conserved(self):
        acid0 = gaussian_acid()
        result = peb.RigorousPEBSolver(GRID, self.CFG, time_step_s=30.0).solve(acid0)
        assert np.isclose(result.acid.sum(), acid0.sum(), rtol=1e-12)


class TestPureNormalDiffusion:
    """The z matrix-exponential stage reproduces closed-form mode decay."""

    CFG = replace(PURE_DIFFUSION, lateral_diffusion_length_acid_nm=0.0,
                  lateral_diffusion_length_base_nm=0.0,
                  normal_diffusion_length_acid_nm=70.0)

    def test_z_mode_decays_in_closed_form(self):
        k = 2
        mode = neumann_mode(GRID.nz, k)[:, None, None]
        acid0 = (0.6 + 0.25 * mode) * np.ones(GRID.shape)
        solver = peb.RigorousPEBSolver(GRID, self.CFG, time_step_s=30.0)
        result = solver.solve(acid0)
        decay = neumann_decay(GRID.nz, k, GRID.dz_nm,
                              self.CFG.diffusivity("acid", "normal"),
                              self.CFG.duration_s)
        expected = (0.6 + 0.25 * decay * mode) * np.ones(GRID.shape)
        assert decay < 0.2  # strong vertical smoothing at L = 70 nm
        assert np.allclose(result.acid, expected, atol=1e-12)

    def test_uniform_profile_is_fixed_point(self):
        acid0 = np.full(GRID.shape, 0.7)
        result = peb.RigorousPEBSolver(GRID, self.CFG, time_step_s=45.0).solve(acid0)
        assert np.allclose(result.acid, acid0, atol=1e-13)


def analytic_acid_integral(acid0: float, base0: float, rate: float, t: float) -> float:
    """Exact ``\\int_0^t A`` for the neutralization ODE (A0 > B0 > 0).

    With ``d = A0 - B0`` conserved and ``A(t) = d / (1 - (B0/A0)
    e^{-k d t})``, substituting ``u = e^{-k d t}`` gives
    ``\\int A = (1/k) ln[(1 - r0 s) / (s (1 - r0))]`` with
    ``r0 = B0/A0`` and ``s = e^{-k d t}``.
    """
    diff = acid0 - base0
    ratio = base0 / acid0
    s = np.exp(-rate * diff * t)
    return float(np.log((1.0 - ratio * s) / (s * (1.0 - ratio))) / rate)


class TestZeroDiffusion:
    """Diffusion-free bake: pointwise ODEs with known closed forms."""

    def test_deprotection_exact_without_neutralization(self):
        """Acid frozen => I(T) = I0 exp(-k_c A0 T), exact for ANY dt."""
        cfg = replace(ZERO_DIFFUSION, base_initial=0.0)
        rng = np.random.default_rng(17)
        acid0 = rng.uniform(0.0, 1.0, size=GRID.shape)
        for splitting, dt in (("lie", 30.0), ("strang", 45.0), ("lie", 0.5)):
            result = peb.RigorousPEBSolver(GRID, cfg, splitting=splitting,
                                           time_step_s=dt).solve(acid0)
            expected = np.exp(-cfg.catalysis_rate * acid0 * cfg.duration_s)
            assert np.allclose(result.inhibitor, expected, rtol=1e-11, atol=1e-13), \
                f"splitting={splitting} dt={dt}"
            assert np.allclose(result.acid, acid0, atol=1e-12)

    def test_acid_follows_conserved_difference_closed_form(self):
        """With neutralization on, the acid trajectory is exact for any dt
        because the neutralization sub-steps compose exactly."""
        cfg = ZERO_DIFFUSION
        acid0 = np.full(GRID.shape, 0.8)
        result = peb.RigorousPEBSolver(GRID, cfg, time_step_s=30.0).solve(acid0)
        diff = 0.8 - cfg.base_initial
        ratio = cfg.base_initial / 0.8
        s = np.exp(-cfg.neutralization_rate * diff * cfg.duration_s)
        expected_acid = diff / (1.0 - ratio * s)
        assert np.allclose(result.acid, expected_acid, rtol=1e-10)
        assert np.allclose(result.acid - result.base, diff, atol=1e-10)

    def test_deprotection_converges_to_exact_integral(self):
        """I(T) -> I0 exp(-k_c \\int A dt) as dt -> 0 (analytic integral)."""
        cfg = ZERO_DIFFUSION
        acid0_value = 0.8
        acid0 = np.full(GRID.shape, acid0_value)
        integral = analytic_acid_integral(acid0_value, cfg.base_initial,
                                          cfg.neutralization_rate, cfg.duration_s)
        expected = np.exp(-cfg.catalysis_rate * integral)
        errors = []
        for dt in (9.0, 3.0, 1.0):
            result = peb.RigorousPEBSolver(GRID, cfg, splitting="strang",
                                           time_step_s=dt).solve(acid0)
            errors.append(abs(float(result.inhibitor[0, 0, 0]) - expected))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 5e-3

    def test_analytic_integral_reduces_to_a0_t_without_base(self):
        """Sanity of the reference formula itself: B0 -> 0 gives A0*T."""
        near_zero = analytic_acid_integral(0.8, 1e-9, 8.6993, 90.0)
        assert np.isclose(near_zero, 0.8 * 90.0, rtol=1e-6)


@pytest.mark.slow
class TestConvergenceOrder:
    """Measured splitting order in dt against a fine-step reference.

    Neutralization is disabled so the reaction sub-flow is exactly the
    catalysis ODE; then Lie is cleanly O(dt) and Strang O(dt^2) (with
    neutralization on, the inner catalysis|neutralization split caps
    both at first order — asserted separately below).
    """

    GRID_SMALL = GridConfig(size_um=1.0, nx=16, ny=16, nz=2)

    def _errors(self, cfg, splitting, dts, reference_dt=0.05):
        acid0 = gaussian_acid(self.GRID_SMALL)
        reference = peb.RigorousPEBSolver(
            self.GRID_SMALL, cfg, splitting="strang",
            time_step_s=reference_dt).solve(acid0)
        errors = []
        for dt in dts:
            result = peb.RigorousPEBSolver(self.GRID_SMALL, cfg,
                                           splitting=splitting,
                                           time_step_s=dt).solve(acid0)
            errors.append(np.abs(result.inhibitor - reference.inhibitor).max())
        return errors

    def test_lie_is_first_order(self):
        cfg = replace(PEBConfig(), neutralization_rate=0.0)
        errors = self._errors(cfg, "lie", (3.0, 1.5, 0.75))
        orders = [np.log2(errors[i] / errors[i + 1]) for i in range(2)]
        assert all(0.8 < order < 1.25 for order in orders), (errors, orders)

    def test_strang_is_second_order(self):
        cfg = replace(PEBConfig(), neutralization_rate=0.0)
        errors = self._errors(cfg, "strang", (3.0, 1.5, 0.75))
        orders = [np.log2(errors[i] / errors[i + 1]) for i in range(2)]
        assert all(1.7 < order < 2.3 for order in orders), (errors, orders)

    def test_strang_beats_lie_on_full_physics(self):
        cfg = PEBConfig()
        lie = self._errors(cfg, "lie", (3.0, 1.5))
        strang = self._errors(cfg, "strang", (3.0, 1.5))
        assert strang[0] < lie[0]
        assert strang[1] < lie[1]
        # full physics: the inner reaction split keeps both ~first order
        assert 0.7 < np.log2(lie[0] / lie[1]) < 1.4
