"""Observability layer: metrics, tracing, health monitors, analytics.

``repro.obs`` is strictly *observation-only* infrastructure.  Nothing in
this package touches a numpy array that belongs to the simulation, the
training loop or a served response; enabling or disabling it cannot
change a single bit of any numerical output (the determinism matrices
in ``tests/runtime/`` and ``tests/serve/`` assert exactly that).  It is
disabled by default and its disabled fast path is a single boolean
check, so instrumented hot loops pay effectively nothing when nobody is
watching.

Sub-modules:

* :mod:`repro.obs.metrics` — process-local counters, timers and
  histograms in a named registry (``counter("pool.tasks").inc()``);
* :mod:`repro.obs.trace` — nested span tracing with a JSONL event sink,
  switched on by ``REPRO_TRACE=path`` or the CLI ``--trace`` flag;
* :mod:`repro.obs.context` — ``contextvars``-based request/trace
  identity that survives thread hand-offs and ``fork``;
* :mod:`repro.obs.health` — physics health monitors for served
  predictions (Eq. 1–4 invariants plus sampled rigorous shadow audits);
* :mod:`repro.obs.export` — trace analytics: Chrome/Perfetto export,
  span-tree reconstruction, critical path, per-request breakdowns;
* :mod:`repro.obs.profile` — wall-time/tracemalloc profiling contexts
  and propagator-cache hit-rate collection;
* :mod:`repro.obs.timeseries` — in-process ring-buffer TSDB: a sampler
  snapshots every metric at a fixed interval into rolling windows with
  derived rates and sliding-window quantiles (``/v1/telemetry``,
  ``/dashboard``);
* :mod:`repro.obs.slo` — declarative SLO targets with multiwindow
  burn-rate alerting surfaced in ``/healthz`` and ``repro_slo_*``;
* :mod:`repro.obs.flight` — black-box flight recorder: bounded rings of
  recent spans/logs/requests, dumped atomically on SIGQUIT or lane
  crashes (``repro flightdump`` renders one);
* :mod:`repro.obs.process` — process-level gauges (RSS, open fds,
  uptime, live ``/dev/shm`` segments).

``python -m repro.cli report <trace.jsonl>`` summarizes a recorded
trace (``--export-chrome``, ``--critical-path``, ``--requests`` for the
analytics); see ``docs/observability.md`` for the event schema and the
span/metric catalog.
"""

from .metrics import (
    Counter, Gauge, Timer, Histogram, MetricsRegistry,
    counter, gauge, timer, histogram, metrics_snapshot, reset_metrics,
)
from .trace import (
    span, trace_event, set_span_attrs, trace_enabled, enable_tracing,
    disable_tracing, current_trace_path, configure_from_env,
    capture_context, current_span_uid, set_flight_hook, flight_hook,
)
from .context import (
    TraceContext, current_context, use_context, new_request_id,
    new_request_context, sanitize_request_id,
)
from .health import (
    HealthConfig, HealthMonitor, ShadowAuditor, check_prediction,
    threshold_cd_nm,
)
from .profile import profiled, propagator_cache_stats
from .timeseries import Ring, TimeSeriesDB, TelemetrySampler
from .slo import (
    RatioSLO, LatencySLO, ThresholdSLO, SLOEvaluator, default_slos,
)
from .flight import (
    FlightRecorder, current_recorder, record_lane_crash,
    render_flight_dump, load_flight_dump,
)
from .process import refresh_process_gauges, process_info

__all__ = [
    "Counter", "Gauge", "Timer", "Histogram", "MetricsRegistry",
    "counter", "gauge", "timer", "histogram", "metrics_snapshot",
    "reset_metrics",
    "span", "trace_event", "set_span_attrs", "trace_enabled",
    "enable_tracing", "disable_tracing", "current_trace_path",
    "configure_from_env", "capture_context", "current_span_uid",
    "set_flight_hook", "flight_hook",
    "Ring", "TimeSeriesDB", "TelemetrySampler",
    "RatioSLO", "LatencySLO", "ThresholdSLO", "SLOEvaluator",
    "default_slos",
    "FlightRecorder", "current_recorder", "record_lane_crash",
    "render_flight_dump", "load_flight_dump",
    "refresh_process_gauges", "process_info",
    "TraceContext", "current_context", "use_context", "new_request_id",
    "new_request_context", "sanitize_request_id",
    "HealthConfig", "HealthMonitor", "ShadowAuditor", "check_prediction",
    "threshold_cd_nm",
    "profiled", "propagator_cache_stats",
]
