"""Determinism matrix: worker count and tracing must not change results.

The repro contract is that every artifact is a pure function of config +
seed.  These tests sweep the two knobs most likely to break that —
process-pool fan-out (``workers`` in {1, 2, 4}) and the ``repro.obs``
trace layer (on vs off) — and assert *bitwise* identity of dataset
arrays, trainer history and final parameters across the whole matrix.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import DeepCNN, DeepCNNConfig
from repro.config import GridConfig, LithoConfig
from repro.core import TrainConfig, Trainer
from repro.data import generate_dataset
from repro.obs import disable_tracing, enable_tracing

GRID = GridConfig(size_um=1.0, nx=12, ny=12, nz=2)


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    disable_tracing()


def tiny_dataset(workers):
    dataset = generate_dataset(3, LithoConfig(grid=GRID), time_step_s=5.0,
                               cache_dir=None, workers=workers)
    return dataset.inputs(), dataset.labels(), dataset.inhibitors()


def tiny_fit():
    nn.init.seed(0)
    model = DeepCNN(DeepCNNConfig(width=4, num_blocks=1))
    rng = np.random.default_rng(5)
    x = rng.random((6, 2, 8, 8))
    y = 2.0 * x + 1.0
    history = Trainer(model, x, y, TrainConfig(epochs=3, batch_size=2)).fit()
    params = [p.data.copy() for p in model.parameters()]
    return list(history.losses), params


class TestWorkerDeterminism:
    def test_dataset_bitwise_identical_across_worker_counts(self):
        reference = tiny_dataset(workers=1)
        for workers in (2, 4):
            candidate = tiny_dataset(workers=workers)
            for ref, got in zip(reference, candidate):
                assert np.array_equal(ref, got), f"workers={workers}"

    def test_dataset_identical_with_tracing_under_fork(self, tmp_path):
        reference = tiny_dataset(workers=2)
        enable_tracing(tmp_path / "gen.jsonl")
        try:
            traced = tiny_dataset(workers=2)
        finally:
            disable_tracing()
        for ref, got in zip(reference, traced):
            assert np.array_equal(ref, got)
        # the forked workers actually wrote spans into the shared sink
        assert (tmp_path / "gen.jsonl").stat().st_size > 0


class TestTracingDeterminism:
    def test_fit_bitwise_identical_with_tracing(self, tmp_path):
        """Acceptance: instrumented Trainer paths are observation-only."""
        losses_off, params_off = tiny_fit()
        enable_tracing(tmp_path / "fit.jsonl")
        try:
            losses_on, params_on = tiny_fit()
        finally:
            disable_tracing()
        assert losses_off == losses_on  # float equality, not approx
        assert len(params_off) == len(params_on) > 0
        for ref, got in zip(params_off, params_on):
            assert np.array_equal(ref, got)

    def test_solver_bitwise_identical_with_tracing(self, tmp_path):
        """Acceptance: instrumented solver stages are observation-only."""
        from repro.config import PEBConfig
        from repro.litho.peb import RigorousPEBSolver

        rng = np.random.default_rng(9)
        acid = rng.random(GRID.shape)
        solver = RigorousPEBSolver(GRID, PEBConfig(), time_step_s=5.0)
        off = solver.solve(acid)
        enable_tracing(tmp_path / "solve.jsonl")
        try:
            on = solver.solve(acid)
        finally:
            disable_tracing()
        assert np.array_equal(off.acid, on.acid)
        assert np.array_equal(off.inhibitor, on.inhibitor)
        assert np.array_equal(off.base, on.base)
