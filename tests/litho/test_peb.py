"""Rigorous PEB solver: each sub-step against independent references."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.config import GridConfig, PEBConfig
from repro.litho import dct, peb
from repro.litho.exposure import initial_photoacid
from repro.config import ExposureConfig

GRID = GridConfig(nx=24, ny=24, nz=4)


def gaussian_acid(grid=GRID, amplitude=0.8, sigma_nm=120.0):
    """A smooth blob of photoacid centred in the clip."""
    x = (np.arange(grid.nx) + 0.5) * grid.dx_nm
    y = (np.arange(grid.ny) + 0.5) * grid.dy_nm
    cx, cy = x.mean(), y.mean()
    blob = np.exp(-(((x[None, :] - cx) ** 2 + (y[:, None] - cy) ** 2) / (2 * sigma_nm ** 2)))
    profile = np.linspace(1.0, 0.6, grid.nz)
    return amplitude * profile[:, None, None] * blob[None, :, :]


class TestLateralDiffusion:
    def test_dct_conserves_mass(self):
        field = gaussian_acid()
        propagator = dct.LateralDiffusionPropagator(GRID, diffusivity=30.0, dt=1.0)
        out = propagator.apply(field)
        assert np.allclose(out.sum(), field.sum())

    def test_dct_smooths(self):
        field = gaussian_acid()
        propagator = dct.LateralDiffusionPropagator(GRID, diffusivity=100.0, dt=5.0)
        out = propagator.apply(field)
        assert out.max() < field.max()
        assert out.min() >= -1e-12

    def test_dct_matches_many_small_fdm_steps(self):
        field = gaussian_acid()
        total_t, diffusivity = 2.0, 50.0
        propagator = dct.LateralDiffusionPropagator(GRID, diffusivity, total_t)
        exact = propagator.apply(field)
        steps, approx = 400, field.copy()
        for _ in range(steps):
            approx = dct.lateral_step_fdm(approx, diffusivity, total_t / steps,
                                          GRID.dx_nm, GRID.dy_nm)
        assert np.allclose(exact, approx, atol=1e-5)

    def test_dct_uniform_is_fixed_point(self):
        field = np.full(GRID.shape, 0.3)
        propagator = dct.LateralDiffusionPropagator(GRID, 100.0, 10.0)
        assert np.allclose(propagator.apply(field), field)

    def test_eigenvalues_signs(self):
        lam = dct.neumann_laplacian_eigenvalues(16, 2.0)
        assert lam[0] == 0.0
        assert np.all(lam[1:] < 0.0)


class TestZPropagator:
    def test_neumann_conserves_mass(self):
        propagator = peb._ZPropagator(GRID, diffusivity=20.0, transfer=0.0, saturation=0.0, dt=1.0)
        field = gaussian_acid()
        out = propagator.apply(field)
        assert np.allclose(out.sum(axis=0), field.sum(axis=0))

    def test_robin_drains_toward_saturation(self):
        propagator = peb._ZPropagator(GRID, diffusivity=20.0, transfer=0.1, saturation=0.0, dt=5.0)
        field = np.full(GRID.shape, 1.0)
        out = propagator.apply(field)
        assert out.sum() < field.sum()
        assert out[0].mean() < out[-1].mean()  # loss happens at the top

    def test_robin_equilibrium_at_saturation(self):
        saturation = 0.5
        propagator = peb._ZPropagator(GRID, diffusivity=20.0, transfer=0.05,
                                      saturation=saturation, dt=2.0)
        field = np.full(GRID.shape, saturation)
        assert np.allclose(propagator.apply(field), field, atol=1e-12)

    def test_matches_fine_step_composition(self):
        """Exactness: one dt step equals ten dt/10 steps."""
        coarse = peb._ZPropagator(GRID, 25.0, 0.03, 0.9, dt=1.0)
        fine = peb._ZPropagator(GRID, 25.0, 0.03, 0.9, dt=0.1)
        field = gaussian_acid()
        stepped = field.copy()
        for _ in range(10):
            stepped = fine.apply(stepped)
        assert np.allclose(coarse.apply(field), stepped, atol=1e-12)


class TestReactionSteps:
    def test_catalysis_matches_ode(self):
        rng = np.random.default_rng(0)
        inhibitor = rng.uniform(0.2, 1.0, size=(5,))
        acid = rng.uniform(0.0, 1.0, size=(5,))
        out = peb.catalysis_step(inhibitor, acid, rate=0.9, dt=2.0)
        assert np.allclose(out, inhibitor * np.exp(-0.9 * acid * 2.0))

    def test_neutralization_conserves_difference(self):
        acid, base = np.array([0.9, 0.1, 0.5]), np.array([0.4, 0.7, 0.5])
        new_acid, new_base = peb.neutralization_step(acid, base, rate=8.7, dt=0.5)
        assert np.allclose(new_acid - new_base, acid - base, atol=1e-12)

    def test_neutralization_matches_scipy_ivp(self):
        rate, dt = 8.6993, 0.3
        acid0, base0 = 0.8, 0.35

        def rhs(_, y):
            return [-rate * y[0] * y[1], -rate * y[0] * y[1]]

        solution = solve_ivp(rhs, (0.0, dt), [acid0, base0], rtol=1e-11, atol=1e-13)
        ours = peb.neutralization_step(np.array([acid0]), np.array([base0]), rate, dt)
        assert np.isclose(ours[0][0], solution.y[0, -1], atol=1e-8)
        assert np.isclose(ours[1][0], solution.y[1, -1], atol=1e-8)

    def test_neutralization_equal_concentrations(self):
        acid, base = np.array([0.5]), np.array([0.5])
        new_acid, new_base = peb.neutralization_step(acid, base, rate=2.0, dt=1.0)
        expected = 0.5 / (1.0 + 2.0 * 0.5 * 1.0)
        assert np.isclose(new_acid[0], expected)
        assert np.isclose(new_base[0], expected)

    def test_neutralization_zero_acid(self):
        new_acid, new_base = peb.neutralization_step(np.array([0.0]), np.array([0.4]), 8.7, 1.0)
        assert new_acid[0] == 0.0 and np.isclose(new_base[0], 0.4)

    def test_neutralization_zero_base(self):
        new_acid, new_base = peb.neutralization_step(np.array([0.6]), np.array([0.0]), 8.7, 1.0)
        assert np.isclose(new_acid[0], 0.6) and new_base[0] == 0.0

    def test_neutralization_long_time_annihilates_minority(self):
        new_acid, new_base = peb.neutralization_step(np.array([0.9]), np.array([0.4]), 8.7, 1000.0)
        assert np.isclose(new_acid[0], 0.5, atol=1e-6)
        assert np.isclose(new_base[0], 0.0, atol=1e-6)


class TestSolver:
    def test_inhibitor_decreases_where_acid_high(self):
        solver = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=1.0)
        result = solver.solve(gaussian_acid())
        center = result.inhibitor[:, GRID.ny // 2, GRID.nx // 2]
        corner = result.inhibitor[:, 0, 0]
        assert center.mean() < corner.mean()
        assert np.all(result.inhibitor <= 1.0) and np.all(result.inhibitor >= 0.0)

    def test_zero_acid_mostly_untouched(self):
        """With zero initial acid, only the Robin surface in-diffusion of
        acid (h_A(A_top - A_sat), Table I gives A_sat = 0.9) perturbs the
        top layer; the bulk stays protected."""
        solver = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=1.0)
        result = solver.solve(np.zeros(GRID.shape))
        assert np.allclose(result.inhibitor[-1], 1.0, atol=5e-3)
        assert result.inhibitor.min() > 0.85
        assert np.allclose(result.base[-1], PEBConfig().base_initial, atol=5e-3)

    def test_zero_acid_no_surface_exchange_is_exact(self):
        """Switching the Robin transfer off makes zero-acid a fixed point."""
        from dataclasses import replace

        cfg = replace(PEBConfig(), transfer_coefficient_acid=0.0)
        solver = peb.RigorousPEBSolver(GRID, cfg, time_step_s=1.0)
        result = solver.solve(np.zeros(GRID.shape))
        assert np.allclose(result.inhibitor, 1.0)
        assert np.allclose(result.base, cfg.base_initial, atol=1e-9)
        assert np.allclose(result.acid, 0.0)

    def test_strang_more_accurate_than_lie(self):
        acid0 = gaussian_acid()
        reference = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=0.05).solve(acid0)
        lie = peb.RigorousPEBSolver(GRID, PEBConfig(), splitting="lie", time_step_s=2.0).solve(acid0)
        strang = peb.RigorousPEBSolver(GRID, PEBConfig(), splitting="strang", time_step_s=2.0).solve(acid0)
        err_lie = np.abs(lie.inhibitor - reference.inhibitor).max()
        err_strang = np.abs(strang.inhibitor - reference.inhibitor).max()
        assert err_strang < err_lie

    def test_coarse_strang_close_to_baseline(self):
        """Strang at dt=0.25 s stays close to the Table I baseline dt=0.1 s
        (this is the dataset-generation setting)."""
        acid0 = gaussian_acid()
        baseline = peb.RigorousPEBSolver(GRID, PEBConfig()).solve(acid0)  # dt=0.1, lie
        coarse = peb.RigorousPEBSolver(GRID, PEBConfig(), splitting="strang",
                                       time_step_s=0.25).solve(acid0)
        assert np.abs(coarse.inhibitor - baseline.inhibitor).max() < 0.025

    def test_fdm_mode_matches_dct_mode(self):
        acid0 = gaussian_acid()
        dct_result = peb.RigorousPEBSolver(GRID, PEBConfig(), lateral_mode="dct",
                                           time_step_s=0.1).solve(acid0)
        fdm_result = peb.RigorousPEBSolver(GRID, PEBConfig(), lateral_mode="fdm",
                                           time_step_s=0.1).solve(acid0)
        assert np.abs(dct_result.inhibitor - fdm_result.inhibitor).max() < 5e-3

    def test_vertical_continuity(self):
        """Fig. 4: depthwise profiles change gradually, no jumps."""
        solver = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=0.5)
        result = solver.solve(gaussian_acid())
        jumps = np.abs(np.diff(result.inhibitor, axis=0))
        assert jumps.max() < 0.6
        layer_means = result.inhibitor.mean(axis=(1, 2))
        assert np.all(np.diff(layer_means) > -1e-6)  # deprotection strongest at top

    def test_trajectory_recording(self):
        solver = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=1.0)
        result = solver.solve(gaussian_acid(), record_every=30)
        assert len(result.trajectory) == 3
        assert result.times == [30.0, 60.0, 90.0]

    def test_bad_shapes_and_modes_raise(self):
        with pytest.raises(ValueError):
            peb.RigorousPEBSolver(GRID, PEBConfig(), lateral_mode="magic")
        with pytest.raises(ValueError):
            peb.RigorousPEBSolver(GRID, PEBConfig(), splitting="trotter-kato")
        with pytest.raises(ValueError):
            peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=-1.0)
        solver = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=1.0)
        with pytest.raises(ValueError):
            solver.solve(np.zeros((2, 2, 2)))

    def test_realistic_acid_input(self):
        """End-to-end sanity on an exposure-derived acid image."""
        rng = np.random.default_rng(5)
        aerial = np.clip(rng.random(GRID.shape), 0.0, 1.0)
        acid0 = initial_photoacid(aerial, ExposureConfig())
        result = peb.RigorousPEBSolver(GRID, PEBConfig(), time_step_s=1.0).solve(acid0)
        assert np.all(np.isfinite(result.inhibitor))
