"""Checks for composite functions (activations, normalization, softmax)."""

import numpy as np
from scipy import special

from repro import tensor as T
from repro.tensor import functional as F
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(4)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestActivations:
    def test_relu_values(self):
        x = T.Tensor([-1.0, 0.0, 2.0])
        assert np.allclose(F.relu(x).data, [0.0, 0.0, 2.0])

    def test_relu_grad(self):
        gradcheck(lambda ts: F.relu(ts[0]).sum(), [rand(4) + 0.1])

    def test_leaky_relu_values(self):
        x = T.Tensor([-2.0, 3.0])
        assert np.allclose(F.leaky_relu(x, 0.1).data, [-0.2, 3.0])

    def test_leaky_relu_grad(self):
        gradcheck(lambda ts: F.leaky_relu(ts[0], 0.2).sum(), [rand(5) + 0.05])

    def test_silu_matches_scipy(self):
        x = rand(6)
        assert np.allclose(F.silu(T.Tensor(x)).data, x * special.expit(x))

    def test_silu_grad(self):
        gradcheck(lambda ts: F.silu(ts[0]).sum(), [rand(5)])

    def test_gelu_grad(self):
        gradcheck(lambda ts: F.gelu(ts[0]).sum(), [rand(5)])

    def test_softplus_matches_numpy(self):
        x = rand(6) * 3
        assert np.allclose(F.softplus(T.Tensor(x)).data, np.log1p(np.exp(x)))

    def test_softplus_stable_at_large_inputs(self):
        out = F.softplus(T.Tensor([1000.0, -1000.0]))
        assert np.allclose(out.data, [1000.0, 0.0])

    def test_softplus_grad(self):
        gradcheck(lambda ts: F.softplus(ts[0]).sum(), [rand(5)])


class TestSoftmax:
    def test_sums_to_one(self):
        out = F.softmax(T.Tensor(rand(3, 5)), axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_matches_scipy(self):
        x = rand(2, 4)
        assert np.allclose(F.softmax(T.Tensor(x), axis=-1).data, special.softmax(x, axis=-1))

    def test_stable_with_large_logits(self):
        out = F.softmax(T.Tensor([1000.0, 1001.0]))
        assert np.all(np.isfinite(out.data))

    def test_grad(self):
        w = rand(2, 3)
        gradcheck(lambda ts: (F.softmax(ts[0], axis=-1) * w).sum(), [rand(2, 3)])

    def test_log_softmax_matches(self):
        x = rand(2, 4)
        assert np.allclose(F.log_softmax(T.Tensor(x), axis=-1).data, special.log_softmax(x, axis=-1))


class TestLayerNorm:
    def test_normalizes(self):
        out = F.layer_norm(T.Tensor(rand(4, 8)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-10)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_affine_params_apply(self):
        x = T.Tensor(rand(2, 4))
        w, b = T.Tensor(2.0 * np.ones(4)), T.Tensor(np.ones(4))
        out = F.layer_norm(x, w, b)
        plain = F.layer_norm(x)
        assert np.allclose(out.data, 2.0 * plain.data + 1.0)

    def test_grad(self):
        w = rand(2, 4)
        gradcheck(
            lambda ts: (F.layer_norm(ts[0], ts[1], ts[2]) * w).sum(),
            [rand(2, 4), rand(4), rand(4)],
            atol=1e-4,
        )


class TestMisc:
    def test_mse_loss(self):
        a, b = rand(3, 3), rand(3, 3)
        assert np.isclose(F.mse_loss(T.Tensor(a), T.Tensor(b)).data, ((a - b) ** 2).mean())

    def test_dropout_eval_identity(self):
        x = T.Tensor(rand(4, 4))
        assert np.allclose(F.dropout(x, 0.5, training=False).data, x.data)

    def test_dropout_train_scales(self):
        rng = np.random.default_rng(0)
        x = T.Tensor(np.ones((1000,)))
        out = F.dropout(x, 0.5, training=True, rng=rng)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 400 < kept.size < 600

    def test_flatten_spatial(self):
        x = T.Tensor(rand(2, 3, 4, 5, 6))
        assert F.flatten_spatial(x).shape == (2, 3, 120)
