"""Dataset generation and caching for PEB surrogate training."""

from .dataset import PEBSample, PEBDataset, simulate_clip, generate_dataset
from .augment import (
    DIHEDRAL_OPS, transform_volume, transform_contact, augment_sample,
    augment_dataset,
)

__all__ = [
    "PEBSample", "PEBDataset", "simulate_clip", "generate_dataset",
    "DIHEDRAL_OPS", "transform_volume", "transform_contact", "augment_sample",
    "augment_dataset",
]
