"""Convolution modules (1D/3D, transposed, depthwise)."""

from __future__ import annotations

import numpy as np

from repro import tensor as T
from . import init
from .module import Module, Parameter


def _triple(value):
    return tuple(value) if isinstance(value, (tuple, list)) else (value,) * 3


class Conv3d(Module):
    """Grouped 3D convolution over (B, C, D, H, W) volumes."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, groups: int = 1, bias: bool = True):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        kernel_size = _triple(kernel_size)
        self.stride, self.padding, self.groups = stride, padding, groups
        fan_in = (in_channels // groups) * int(np.prod(kernel_size))
        self.weight = Parameter(init.kaiming_uniform(
            (out_channels, in_channels // groups) + kernel_size, fan_in=fan_in, gain=1.0))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        return T.conv3d(x, self.weight, bias=self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)


class DepthwiseConv3d(Conv3d):
    """Channelwise 3D convolution (groups == channels).

    This is the "DW-Conv3D" block appearing twice in the SDM-PEB
    architecture (Fig. 2 / Fig. 5a of the paper): once on the raw input
    and once refining the SDM unit output.
    """

    def __init__(self, channels: int, kernel_size=3, padding=1, bias: bool = True):
        super().__init__(channels, channels, kernel_size, stride=1, padding=padding,
                         groups=channels, bias=bias)


class ConvTranspose3d(Module):
    """Grouped transposed 3D convolution (decoder upsampling)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size,
                 stride=1, padding=0, output_padding=0, groups: int = 1, bias: bool = True):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        kernel_size = _triple(kernel_size)
        self.stride, self.padding, self.output_padding, self.groups = stride, padding, output_padding, groups
        fan_in = (out_channels // groups) * int(np.prod(kernel_size))
        self.weight = Parameter(init.kaiming_uniform(
            (in_channels, out_channels // groups) + kernel_size, fan_in=fan_in, gain=1.0))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        return T.conv_transpose3d(x, self.weight, bias=self.bias, stride=self.stride,
                                  padding=self.padding, output_padding=self.output_padding,
                                  groups=self.groups)


class Conv1d(Module):
    """Grouped 1D convolution over (B, C, L) sequences."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1, bias: bool = True):
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        self.stride, self.padding, self.groups = stride, padding, groups
        fan_in = (in_channels // groups) * kernel_size
        self.weight = Parameter(init.kaiming_uniform(
            (out_channels, in_channels // groups, kernel_size), fan_in=fan_in, gain=1.0))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x):
        return T.conv1d(x, self.weight, bias=self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)
