"""Tests for the repro.lint rule catalog.

Each fixture file under ``fixtures/`` contains exactly one seeded
violation; the tests assert the matching rule fires exactly there (and
nowhere else), that suppression comments silence it, and that the real
``src/`` tree is clean.
"""

from pathlib import Path

from repro.lint import lint_paths, lint_source
from repro.lint.core import all_rules

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

#: (fixture file, virtual lint path, expected rule, expected line)
CASES = [
    ("rep001_legacy_random.py", "src/repro/data/fixture.py", "REP001", 9),
    ("rep002_implicit_dtype.py", "src/repro/litho/fixture.py", "REP002", 13),
    ("rep003_missing_vjp.py", "src/repro/tensor/ops_fixture.py", "REP003", 14),
    ("rep004_banned_import.py", "src/repro/core/fixture.py", "REP004", 8),
    ("rep005_unregistered_tensor.py", "src/repro/nn/fixture.py", "REP005", 15),
    ("rep006_unitless_field.py", "src/repro/litho/fixture_config.py", "REP006", 16),
    ("rep101_unlocked_shared_write.py", "src/repro/serve/fixture.py", "REP101", 17),
    ("rep102_fork_under_lock.py", "src/repro/serve/fixture.py", "REP102", 12),
    ("rep103_blocking_under_lock.py", "src/repro/serve/fixture.py", "REP103", 18),
    ("rep104_check_then_act.py", "src/repro/serve/fixture.py", "REP104", 17),
    ("rep105_contextvar_leak.py", "src/repro/serve/fixture.py", "REP105", 9),
    ("rep106_undrained_daemon.py", "src/repro/serve/fixture.py", "REP106", 11),
]


def _fixture_source(name: str) -> str:
    return (FIXTURES / name).read_text(encoding="utf-8")


class TestRuleFixtures:
    def test_each_rule_fires_exactly_once_at_the_seeded_line(self):
        for fixture, relpath, rule, line in CASES:
            diagnostics = lint_source(_fixture_source(fixture), relpath)
            assert len(diagnostics) == 1, (
                f"{fixture}: expected exactly one diagnostic, got "
                f"{[d.format() for d in diagnostics]}"
            )
            diag = diagnostics[0]
            assert diag.rule == rule, f"{fixture}: fired {diag.rule}, expected {rule}"
            assert diag.line == line, f"{fixture}: fired at line {diag.line}, expected {line}"

    def test_file_level_suppression_silences_each_fixture(self):
        for fixture, relpath, rule, _ in CASES:
            source = f"# repro-lint: disable-file={rule}\n" + _fixture_source(fixture)
            assert lint_source(source, relpath) == [], f"{fixture}: disable-file ignored"

    def test_line_level_suppression_silences_the_diagnostic(self):
        fixture, relpath, rule, line = CASES[0]
        lines = _fixture_source(fixture).splitlines()
        lines[line - 1] += f"  # repro-lint: disable={rule}"
        assert lint_source("\n".join(lines), relpath) == []

    def test_select_filters_rules(self):
        fixture, relpath, _, _ = CASES[0]
        assert lint_source(_fixture_source(fixture), relpath, select={"REP004"}) == []


class TestPathScoping:
    def test_rep002_only_applies_to_hot_packages(self):
        source = _fixture_source("rep002_implicit_dtype.py")
        assert lint_source(source, "src/repro/experiments/fixture.py") == []

    def test_rep003_only_applies_to_tensor_ops_modules(self):
        source = _fixture_source("rep003_missing_vjp.py")
        assert lint_source(source, "src/repro/tensor/tensor.py") == []

    def test_rep006_only_applies_to_config_modules(self):
        source = _fixture_source("rep006_unitless_field.py")
        assert lint_source(source, "src/repro/experiments/fixture.py") == []


class TestFramework:
    def test_syntax_error_reports_rep000(self):
        diagnostics = lint_source("def broken(:\n", "src/repro/broken.py")
        assert [d.rule for d in diagnostics] == ["REP000"]

    def test_rule_catalog_is_complete(self):
        ids = [rule.id for rule in all_rules()]
        assert ids == ["REP001", "REP002", "REP003", "REP004", "REP005", "REP006",
                       "REP101", "REP102", "REP103", "REP104", "REP105", "REP106"]
        assert all(rule.description for rule in all_rules())
        assert all(rule.severity in ("error", "warning") for rule in all_rules())

    def test_real_ops_modules_satisfy_the_tape_rule(self):
        for ops in sorted((REPO_ROOT / "src/repro/tensor").glob("ops_*.py")):
            source = ops.read_text(encoding="utf-8")
            diagnostics = lint_source(source, f"src/repro/tensor/{ops.name}")
            assert diagnostics == [], [d.format() for d in diagnostics]


class TestParallelScanning:
    def test_jobs_output_matches_serial_byte_for_byte(self):
        target = [str(FIXTURES)]
        serial = [d.format() for d in lint_paths(target, jobs=1)]
        parallel = [d.format() for d in lint_paths(target, jobs=4)]
        assert serial == parallel
        # every path-independent fixture rule fires on its real path
        assert len(serial) >= 9

    def test_diagnostics_sorted_by_path_line_col_rule(self):
        diagnostics = lint_paths([str(FIXTURES)], jobs=2)
        keys = [(d.path, d.line, d.col, d.rule) for d in diagnostics]
        assert keys == sorted(keys)

    def test_select_respected_across_workers(self):
        diagnostics = lint_paths([str(FIXTURES)], select={"REP101"}, jobs=2)
        assert {d.rule for d in diagnostics} == {"REP101"}


class TestCleanTree:
    def test_src_tree_is_lint_clean(self):
        diagnostics = lint_paths([str(REPO_ROOT / "src")])
        assert diagnostics == [], [d.format() for d in diagnostics]
