"""LRU caches for the rigorous solver's propagator operators.

Building a :class:`~repro.litho.dct.LateralDiffusionPropagator` costs an
eigenvalue grid; building a ``_ZPropagator`` costs an ``expm`` and a
linear solve.  Every :class:`~repro.litho.peb.RigorousPEBSolver` with
the same (grid, physics, dt) builds the *same* operators, and benches,
convergence sweeps and pool workers construct solvers in a loop — so
the operators are memoized here on their full physical key.

Both propagator classes are immutable after construction (``apply`` is
pure), so sharing instances across solvers is safe.  The keys are
hashable because :class:`~repro.config.GridConfig` is a frozen
dataclass.

Imports of the litho modules happen inside the builders to keep
``repro.runtime`` import-light and cycle-free (litho itself imports
:mod:`repro.runtime.fft`).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "cached_lateral_propagator", "cached_z_propagator",
    "clear_propagator_caches", "propagator_cache_info",
]

#: distinct (grid, physics, dt) operator keys kept alive; a full
#: Table II run touches ~8 (2 species x {lateral, z} x a couple of dt's)
PROPAGATOR_CACHE_SIZE = 64


@lru_cache(maxsize=PROPAGATOR_CACHE_SIZE)
def cached_lateral_propagator(grid, diffusivity: float, dt: float):
    """Shared :class:`LateralDiffusionPropagator` for (grid, D, dt)."""
    from repro.litho.dct import LateralDiffusionPropagator

    return LateralDiffusionPropagator(grid, diffusivity, dt)


@lru_cache(maxsize=PROPAGATOR_CACHE_SIZE)
def cached_z_propagator(grid, diffusivity: float, transfer: float,
                        saturation: float, dt: float):
    """Shared ``_ZPropagator`` for (grid, D, h, u_sat, dt)."""
    from repro.litho.peb import _ZPropagator

    return _ZPropagator(grid, diffusivity, transfer, saturation, dt)


def clear_propagator_caches() -> None:
    """Drop all cached operators (tests, memory pressure)."""
    cached_lateral_propagator.cache_clear()
    cached_z_propagator.cache_clear()


def propagator_cache_info() -> dict:
    """Hit/miss counters for both operator caches."""
    return {
        "lateral": cached_lateral_propagator.cache_info()._asdict(),
        "z": cached_z_propagator.cache_info()._asdict(),
    }
