"""Module tree mechanics: registration, traversal, serialization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class Toy(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 3)
        self.fc2 = nn.Linear(3, 2)

    def forward(self, x):
        return self.fc2(self.fc1(x))


class TestRegistration:
    def test_parameters_discovered(self):
        model = Toy()
        names = [n for n, _ in model.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        model = Toy()
        assert model.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_nested_modules(self):
        class Outer(nn.Module):
            def __init__(self):
                super().__init__()
                self.inner = Toy()

        names = [n for n, _ in Outer().named_parameters()]
        assert names[0] == "inner.fc1.weight"

    def test_module_list_registers(self):
        lst = nn.ModuleList([nn.Linear(2, 2), nn.Linear(2, 2)])
        assert len(list(lst.named_parameters())) == 4
        assert len(lst) == 2


class TestModes:
    def test_train_eval_recursive(self):
        model = Toy()
        model.eval()
        assert not model.training and not model.fc1.training
        model.train()
        assert model.training and model.fc2.training


class TestGradFlow:
    def test_backward_populates_grads(self):
        model = Toy()
        out = model(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_zero_grad(self):
        model = Toy()
        model(Tensor(np.ones((1, 4)))).sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.load_state_dict(a.state_dict())
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_missing_key_raises(self):
        model = Toy()
        state = model.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_save_load_file(self, tmp_path):
        a, b = Toy(), Toy()
        path = str(tmp_path / "weights.npz")
        a.save(path)
        b.load(path)
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_save_load_without_extension_round_trips(self, tmp_path):
        # np.savez appends .npz silently; save/load must agree on the path
        a, b = Toy(), Toy()
        saved = a.save(str(tmp_path / "w"))
        assert saved == tmp_path / "w.npz"
        b.load(str(tmp_path / "w"))
        x = Tensor(np.ones((1, 4)))
        assert np.allclose(a(x).data, b(x).data)

    def test_save_load_mixed_extension_spelling(self, tmp_path):
        a, b = Toy(), Toy()
        a.save(str(tmp_path / "w.npz"))
        b.load(str(tmp_path / "w"))
        assert np.allclose(a.state_dict()["fc1.weight"], b.state_dict()["fc1.weight"])

    def test_normalize_weights_path(self):
        assert nn.normalize_weights_path("m").name == "m.npz"
        assert nn.normalize_weights_path("m.npz").name == "m.npz"
        assert nn.normalize_weights_path("a.b/m").name == "m.npz"


class TestStrictLoading:
    def test_error_lists_missing_and_unexpected(self):
        model = Toy()
        state = model.state_dict()
        del state["fc1.bias"]
        state["extra.weight"] = np.zeros((1,))
        with pytest.raises(KeyError) as excinfo:
            model.load_state_dict(state)
        message = str(excinfo.value)
        assert "fc1.bias" in message and "extra.weight" in message
        assert "missing" in message and "unexpected" in message
        assert "strict=False" in message

    def test_non_strict_loads_intersection(self):
        a, b = Toy(), Toy()
        state = a.state_dict()
        del state["fc2.weight"]
        state["bogus.param"] = np.ones((3,))
        before = b.state_dict()["fc2.weight"]
        b.load_state_dict(state, strict=False)
        assert np.allclose(b.state_dict()["fc1.weight"], a.state_dict()["fc1.weight"])
        assert np.allclose(b.state_dict()["fc2.weight"], before)  # untouched

    def test_shape_mismatch_lists_every_offender(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        state["fc2.bias"] = np.zeros((7,))
        with pytest.raises(ValueError) as excinfo:
            model.load_state_dict(state)
        message = str(excinfo.value)
        assert "fc1.weight" in message and "fc2.bias" in message
        assert "(1, 1)" in message

    def test_shape_mismatch_raises_even_non_strict(self):
        model = Toy()
        state = model.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            model.load_state_dict(state, strict=False)


class TestContainers:
    def test_sequential_applies_in_order(self):
        seq = nn.Sequential(nn.Linear(4, 3), nn.Linear(3, 2))
        out = seq(Tensor(np.ones((1, 4))))
        assert out.shape == (1, 2)
        assert seq[0].out_features == 3

    def test_identity(self):
        x = Tensor(np.ones((2, 2)))
        assert np.allclose(nn.Identity()(x).data, x.data)
