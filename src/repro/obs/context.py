"""Request-scoped trace context: the identity a request keeps across hops.

A served prediction crosses at least two threads (the HTTP handler and
the MicroBatcher worker) and — for rigorous work — ``fork``ed pool
processes.  Span ``parent`` pointers alone cannot connect those pieces,
because each thread keeps its own span stack.  The
:class:`TraceContext` is the piece that travels: an immutable
``(trace_id, request_id, parent_uid)`` triple stored in a
:mod:`contextvars` ``ContextVar``, captured explicitly where a request
leaves one execution lane (:func:`repro.obs.trace.capture_context` on
enqueue) and re-activated where it lands (:func:`use_context` in the
worker).

``contextvars`` gives exactly the right inheritance semantics for free:
each thread starts from an empty context (no accidental bleed between
concurrent HTTP handlers), while ``fork``ed children inherit the forking
thread's values (pool workers keep the dispatching request's identity
without any plumbing).

Everything here is observation-only metadata — activating or clearing a
context cannot affect any numerical output.
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import uuid
from dataclasses import dataclass, replace

__all__ = [
    "TraceContext", "current_context", "use_context", "new_request_id",
    "new_request_context", "sanitize_request_id",
]

#: request ids accepted from the outside world (X-Request-Id header)
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")


@dataclass(frozen=True)
class TraceContext:
    """Immutable identity of one traced request.

    ``trace_id`` keys every span the request produces (across threads
    and pids); ``request_id`` is the externally visible name (the
    ``X-Request-Id`` response header); ``parent_uid`` is the span uid
    the next span opened under this context should attach to when the
    local span stack is empty — i.e. the cross-thread/process link.
    """

    trace_id: str
    request_id: str
    parent_uid: str | None = None

    def rebased(self, parent_uid: str | None) -> "TraceContext":
        """The same identity attached under a different parent span."""
        return replace(self, parent_uid=parent_uid)


_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None)


def new_request_id() -> str:
    """A fresh 16-hex-char request id (random, never numerics-relevant)."""
    return uuid.uuid4().hex[:16]


def sanitize_request_id(candidate: str | None) -> str | None:
    """A client-supplied request id, or None when unusable.

    Accepting arbitrary header bytes into log lines and JSONL traces
    invites injection; anything outside a conservative charset/length is
    discarded (the caller then generates a fresh id).
    """
    if candidate and _REQUEST_ID_RE.match(candidate):
        return candidate
    return None


def new_request_context(request_id: str | None = None) -> TraceContext:
    """A root context for one incoming request.

    ``trace_id`` equals ``request_id`` so the span tree is keyed by the
    exact value returned to the client in ``X-Request-Id``.
    """
    rid = sanitize_request_id(request_id) or new_request_id()
    return TraceContext(trace_id=rid, request_id=rid, parent_uid=None)


def current_context() -> TraceContext | None:
    """The active request context in this thread, or None."""
    return _CONTEXT.get()


@contextlib.contextmanager
def use_context(ctx: TraceContext | None):
    """Activate ``ctx`` for the duration of the block (None = no-op).

    Accepting None keeps call sites branch-free: a worker restoring a
    context that was captured outside any request simply runs bare.
    """
    if ctx is None:
        yield None
        return
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)
