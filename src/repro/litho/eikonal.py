"""3D Eikonal solvers for development-front propagation.

The resist profile after development is the level set of the arrival
time S solving |∇S| = 1/R (Section II-A of the paper, citing the fast
iterative method of Jeong & Whitaker [31]).  Two solvers are provided:

* :func:`fast_marching` — heap-ordered Dijkstra-like solver with the
  Godunov upwind update; the workhorse.
* :func:`fast_sweeping` — Gauss-Seidel sweeps over the 8 axis
  orderings; simple and kept as an independent cross-check.

Both support anisotropic grid spacing (dz differs from dx/dy here).
The development front enters from the resist top surface (z index 0).
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

INFINITY = np.inf


def godunov_update(neighbors: list[tuple[float, float]], slowness: float) -> float:
    """Solve the Godunov upwind quadratic at one node.

    ``neighbors`` holds (value, spacing) pairs — the smaller of the two
    axis neighbours per axis (INFINITY if none).  Solves

        sum_i max((u - a_i) / h_i, 0)^2 = f^2

    by adding candidate axes in increasing a_i order.
    """
    terms = sorted((a, h) for a, h in neighbors if np.isfinite(a))
    if not terms:
        return INFINITY
    u = terms[0][0] + slowness * terms[0][1]
    for count in range(2, len(terms) + 1):
        if u <= terms[count - 1][0]:
            break
        # solve sum_{i<count} ((u - a_i)/h_i)^2 = f^2
        inv_h2 = np.array([1.0 / h ** 2 for _, h in terms[:count]])
        a_vals = np.array([a for a, _ in terms[:count]])
        alpha = inv_h2.sum()
        beta = -2.0 * (a_vals * inv_h2).sum()
        gamma = (a_vals ** 2 * inv_h2).sum() - slowness ** 2
        disc = beta ** 2 - 4.0 * alpha * gamma
        if disc < 0:
            break
        candidate = (-beta + np.sqrt(disc)) / (2.0 * alpha)
        if candidate >= terms[count - 1][0]:
            u = candidate
        else:
            break
    return u


def _axis_neighbors(times: np.ndarray, index: tuple[int, int, int],
                    spacing: tuple[float, float, float]) -> list[tuple[float, float]]:
    neighbors = []
    for axis in range(3):
        best = INFINITY
        for delta in (-1, 1):
            probe = list(index)
            probe[axis] += delta
            if 0 <= probe[axis] < times.shape[axis]:
                best = min(best, times[tuple(probe)])
        neighbors.append((best, spacing[axis]))
    return neighbors


def initial_arrival(slowness: np.ndarray, spacing: tuple[float, float, float]) -> np.ndarray:
    """Seed arrival times: the front has traversed the top cell layer."""
    times = np.full(slowness.shape, INFINITY, dtype=np.float64)
    times[0] = slowness[0] * spacing[0]
    return times


def fast_marching(slowness: np.ndarray, spacing: tuple[float, float, float]) -> np.ndarray:
    """Heap-ordered Eikonal solve; returns arrival times (same shape)."""
    if np.any(slowness <= 0):
        raise ValueError("slowness must be strictly positive")
    times = initial_arrival(slowness, spacing)
    nz, ny, nx = slowness.shape
    known = np.zeros(slowness.shape, dtype=bool)
    heap: list[tuple[float, tuple[int, int, int]]] = []
    for iy in range(ny):
        for ix in range(nx):
            heapq.heappush(heap, (times[0, iy, ix], (0, iy, ix)))
    offsets = [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)]
    while heap:
        value, index = heapq.heappop(heap)
        if known[index] or value > times[index]:
            continue
        known[index] = True
        for dz, dy, dx in offsets:
            neighbor = (index[0] + dz, index[1] + dy, index[2] + dx)
            if not (0 <= neighbor[0] < nz and 0 <= neighbor[1] < ny and 0 <= neighbor[2] < nx):
                continue
            if known[neighbor]:
                continue
            updated = godunov_update(_axis_neighbors(times, neighbor, spacing), slowness[neighbor])
            if updated < times[neighbor]:
                times[neighbor] = updated
                heapq.heappush(heap, (updated, neighbor))
    return times


def _godunov_vectorized(axis_minima: np.ndarray, spacings: np.ndarray,
                        slowness: np.ndarray) -> np.ndarray:
    """Vectorized Godunov update over the whole grid.

    ``axis_minima`` is (3, ...) — per axis, the smaller of the two
    neighbour arrival times; ``spacings`` is (3,).  Implements the same
    progressive quadratic as :func:`godunov_update` with numpy
    broadcasting.
    """
    h = np.broadcast_to(spacings.reshape(3, *([1] * (axis_minima.ndim - 1))), axis_minima.shape)
    order = np.argsort(axis_minima, axis=0)
    a = np.take_along_axis(axis_minima, order, axis=0)
    h = np.take_along_axis(h, order, axis=0)
    with np.errstate(invalid="ignore"):
        solution = a[0] + slowness * h[0]
        inv_h2 = np.zeros_like(a)
        np.divide(1.0, h ** 2, out=inv_h2, where=np.isfinite(a))
        alpha = inv_h2[0].copy()
        beta = np.where(np.isfinite(a[0]), -2.0 * a[0] * inv_h2[0], 0.0)
        gamma = np.where(np.isfinite(a[0]), a[0] ** 2 * inv_h2[0], 0.0) - slowness ** 2
        for m in (1, 2):
            use = np.isfinite(a[m]) & (solution > a[m])
            alpha = alpha + np.where(use, inv_h2[m], 0.0)
            beta = beta + np.where(use, -2.0 * a[m] * inv_h2[m], 0.0)
            gamma = gamma + np.where(use, a[m] ** 2 * inv_h2[m], 0.0)
            disc = beta ** 2 - 4.0 * alpha * gamma
            valid = use & (disc >= 0.0)
            candidate = np.where(valid, (-beta + np.sqrt(np.maximum(disc, 0.0))) / (2.0 * alpha), np.inf)
            improved = valid & (candidate >= a[m])
            solution = np.where(improved, candidate, solution)
            # roll back coefficients where the extra axis was rejected
            rollback = use & ~improved
            alpha = alpha - np.where(rollback, inv_h2[m], 0.0)
            beta = beta - np.where(rollback, -2.0 * a[m] * inv_h2[m], 0.0)
            gamma = gamma - np.where(rollback, a[m] ** 2 * inv_h2[m], 0.0)
    return solution


def _axis_minima_grid(times: np.ndarray) -> np.ndarray:
    """Per-axis smaller neighbour value, INFINITY at the border."""
    minima = np.empty((3,) + times.shape, dtype=np.float64)
    for axis in range(3):
        forward = np.full_like(times, INFINITY)
        backward = np.full_like(times, INFINITY)
        front = [slice(None)] * 3
        back = [slice(None)] * 3
        front[axis] = slice(1, None)
        back[axis] = slice(None, -1)
        forward[tuple(back)] = times[tuple(front)]
        backward[tuple(front)] = times[tuple(back)]
        minima[axis] = np.minimum(forward, backward)
    return minima


def fast_iterative(slowness: np.ndarray, spacing: tuple[float, float, float],
                   tolerance: float = 1e-9, max_iterations: int | None = None) -> np.ndarray:
    """Vectorized Jacobi fast-iterative Eikonal solve (Jeong & Whitaker style).

    Updates every node simultaneously from its neighbours' current
    values and iterates to a fixed point.  Converges in roughly the
    number of grid cells the front traverses along its longest causal
    path; each iteration is a handful of whole-array numpy operations,
    so this is the fast default for large grids.
    """
    if np.any(slowness <= 0):
        raise ValueError("slowness must be strictly positive")
    times = initial_arrival(slowness, spacing)
    spacings = np.asarray(spacing, dtype=np.float64)
    if max_iterations is None:
        max_iterations = 4 * sum(slowness.shape)
    for _ in range(max_iterations):
        updated = _godunov_vectorized(_axis_minima_grid(times), spacings, slowness)
        new_times = np.minimum(times, updated)
        with np.errstate(invalid="ignore"):
            change = times - new_times
        finite_change = change[np.isfinite(change)]
        times = new_times
        if finite_change.size == 0 or finite_change.max() < tolerance:
            if not np.any(np.isinf(new_times)):
                break
    return times


def fast_sweeping(slowness: np.ndarray, spacing: tuple[float, float, float],
                  max_iterations: int = 12, tolerance: float = 1e-9) -> np.ndarray:
    """Gauss-Seidel fast sweeping Eikonal solve (cross-check solver).

    Slower in python than fast marching for large grids; intended for
    small-grid validation.
    """
    if np.any(slowness <= 0):
        raise ValueError("slowness must be strictly positive")
    times = initial_arrival(slowness, spacing)
    nz, ny, nx = slowness.shape
    orderings = list(itertools.product((1, -1), repeat=3))
    for _ in range(max_iterations):
        max_change = 0.0
        for dir_z, dir_y, dir_x in orderings:
            z_range = range(nz) if dir_z > 0 else range(nz - 1, -1, -1)
            y_range = range(ny) if dir_y > 0 else range(ny - 1, -1, -1)
            x_range = range(nx) if dir_x > 0 else range(nx - 1, -1, -1)
            for iz in z_range:
                for iy in y_range:
                    for ix in x_range:
                        index = (iz, iy, ix)
                        updated = godunov_update(_axis_neighbors(times, index, spacing),
                                                 slowness[index])
                        current = times[index]
                        if updated < current:
                            times[index] = updated
                            change = current - updated if np.isfinite(current) else INFINITY
                            max_change = max(max_change, change)
        if max_change < tolerance:
            break
    return times
