"""Configuration dataclasses for the full simulation flow.

Default values follow Table I of the paper (PEB and development
parameters) and Section IV (optical parameters: λ = 193 nm, NA = 1.35,
2×2 µm clips).  Grid resolution is scaled down from the paper's
0.5-2 nm grids so that the numpy substrate can run end-to-end on a CPU;
every experiment records the grid it used.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GridConfig:
    """Discretization of a resist volume.

    The paper simulates 2×2 µm clips with 2 nm x-y resolution and
    80 nm-thick resist at 1 nm z resolution (1000×1000×80 voxels).  The
    scaled-down default keeps the same physical extent on a 64×64×8
    grid (use :func:`paper_scale_config` for 128×128×8).
    """

    size_um: float = 2.0
    nx: int = 64
    ny: int = 64
    nz: int = 8
    thickness_nm: float = 80.0

    @property
    def dx_nm(self) -> float:
        """x pitch in nm."""
        return self.size_um * 1000.0 / self.nx

    @property
    def dy_nm(self) -> float:
        """y pitch in nm."""
        return self.size_um * 1000.0 / self.ny

    @property
    def dz_nm(self) -> float:
        """z pitch in nm."""
        return self.thickness_nm / self.nz

    @property
    def shape(self) -> tuple[int, int, int]:
        """(nz, ny, nx) volume shape, depth-first like the model input."""
        return (self.nz, self.ny, self.nx)


@dataclass(frozen=True)
class OpticsConfig:
    """Partially coherent projection optics (Section IV of the paper)."""

    wavelength_nm: float = 193.0
    #: dimensionless NA of the immersion projection lens
    numerical_aperture: float = 1.35
    #: annular source, inner partial coherence factor (dimensionless)
    sigma_inner: float = 0.6
    #: annular source, outer partial coherence factor (dimensionless)
    sigma_outer: float = 0.9
    #: number of Abbe source points around the annulus
    source_points: int = 16
    #: resist refractive index (immersion ArF resist)
    resist_index: float = 1.7
    #: resist absorption coefficient (Dill B-like), per micrometre
    absorption_per_um: float = 1.2
    #: best-focus offset from the resist top surface, nm
    focus_offset_nm: float = 40.0
    #: substrate field reflectivity driving standing waves (period λ/2n);
    #: the PEB's vertical diffusion exists to smooth exactly this
    #: structure (Section I of the paper)
    substrate_reflectivity: float = 0.3


@dataclass(frozen=True)
class ExposureConfig:
    """Dill exposure model mapping aerial image to initial photoacid."""

    #: Dill C (cm^2/mJ-like, folded with dose into one exposure constant)
    dill_c: float = 0.05
    #: exposure dose, calibrated so contacts print near design CD
    #: on the default 64x64x8 grid (~full opening, small negative bias)
    dose_mj_cm2: float = 120.0


@dataclass(frozen=True)
class PEBConfig:
    """Post-exposure bake reaction-diffusion parameters (Table I).

    Diffusion lengths convert to diffusivities via ``L = sqrt(2 D T)``
    with ``T`` the bake duration: ``D = L^2 / (2 T)``.  "Normal" is the
    z direction (normal to the wafer), "lateral" is in-plane.
    """

    normal_diffusion_length_acid_nm: float = 70.0
    normal_diffusion_length_base_nm: float = 15.0
    lateral_diffusion_length_acid_nm: float = 10.0
    lateral_diffusion_length_base_nm: float = 10.0
    catalysis_rate: float = 0.9            # k_c, 1/s
    neutralization_rate: float = 8.6993    # k_r, 1/s
    transfer_coefficient_acid: float = 0.027  # h_A (Robin B.C. at resist top)
    transfer_coefficient_base: float = 0.0    # h_B
    acid_saturation: float = 0.9           # [A]_sat
    base_saturation: float = 0.0           # [B]_sat
    inhibitor_initial: float = 1.0         # [I](t=0)
    base_initial: float = 0.4              # [B](t=0)
    time_step_s: float = 0.1               # baseline Δt (Table I)
    duration_s: float = 90.0

    def diffusivity(self, species: str, direction: str) -> float:
        """nm²/s diffusivity for ``species`` in {'acid','base'} along ``direction`` in {'normal','lateral'}."""
        lengths = {
            ("acid", "normal"): self.normal_diffusion_length_acid_nm,
            ("base", "normal"): self.normal_diffusion_length_base_nm,
            ("acid", "lateral"): self.lateral_diffusion_length_acid_nm,
            ("base", "lateral"): self.lateral_diffusion_length_base_nm,
        }
        key = (species, direction)
        if key not in lengths:
            raise KeyError(f"unknown species/direction {key}")
        return lengths[key] ** 2 / (2.0 * self.duration_s)


@dataclass(frozen=True)
class DevelopConfig:
    """Mack development model parameters (Table I)."""

    r_max_nm_s: float = 40.0
    r_min_nm_s: float = 0.0003
    threshold: float = 0.5     # M_th
    reaction_order: float = 30.0  # n
    duration_s: float = 60.0


@dataclass(frozen=True)
class LithoConfig:
    """Bundle of the full flow's configuration."""

    grid: GridConfig = field(default_factory=GridConfig)
    optics: OpticsConfig = field(default_factory=OpticsConfig)
    exposure: ExposureConfig = field(default_factory=ExposureConfig)
    peb: PEBConfig = field(default_factory=PEBConfig)
    develop: DevelopConfig = field(default_factory=DevelopConfig)


def tiny_test_config(nx: int = 32, ny: int = 32, nz: int = 4) -> LithoConfig:
    """A small configuration for fast unit tests (same physics)."""
    return LithoConfig(grid=GridConfig(nx=nx, ny=ny, nz=nz))


def paper_scale_config() -> LithoConfig:
    """Finer 128x128x8 grid (15.6 nm x-y pitch), closer to the paper's
    resolution; used when accuracy matters more than wall-clock."""
    return LithoConfig(grid=GridConfig(nx=128, ny=128, nz=8))
