"""Label normalization for inhibitor prediction.

Following DeePEB (and Section III-D of the paper), the network predicts
the quadratic negative-log transform of the inhibitor rather than the
raw concentration:

    Y = -ln(-ln([I]) / k_c)        [I] = exp(-k_c * exp(-Y))

which linearizes the exponential dynamic range of [I] near 1.
"""

from __future__ import annotations

import numpy as np

#: inhibitor values are clipped into this open interval before the log
CLIP_EPS = 1e-9


def inhibitor_to_label(inhibitor: np.ndarray, catalysis_rate: float) -> np.ndarray:
    """Forward transform ``Y = -ln(-ln([I]) / k_c)``."""
    clipped = np.clip(inhibitor, CLIP_EPS, 1.0 - CLIP_EPS)
    return -np.log(-np.log(clipped) / catalysis_rate)


def label_to_inhibitor(label: np.ndarray, catalysis_rate: float) -> np.ndarray:
    """Inverse transform ``[I] = exp(-k_c * exp(-Y))``."""
    return np.exp(-catalysis_rate * np.exp(-np.asarray(label, dtype=np.float64)))


def roundtrip_error(inhibitor: np.ndarray, catalysis_rate: float) -> float:
    """Max |I - inverse(forward(I))| — used by tests and sanity checks."""
    label = inhibitor_to_label(inhibitor, catalysis_rate)
    return float(np.abs(label_to_inhibitor(label, catalysis_rate) - np.clip(inhibitor, CLIP_EPS, 1 - CLIP_EPS)).max())
