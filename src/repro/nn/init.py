"""Weight initialization schemes.

A module-level seeded generator keeps model construction reproducible;
call :func:`seed` before building a model to get deterministic weights.
"""

from __future__ import annotations

import numpy as np

_rng = np.random.default_rng(0)


def seed(value: int) -> None:
    """Reset the global initialization RNG (deterministic model builds)."""
    global _rng
    _rng = np.random.default_rng(value)


def get_rng() -> np.random.Generator:
    """The generator used for all weight initialization."""
    return _rng


def kaiming_uniform(shape, fan_in: int, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He/Kaiming uniform initialization."""
    bound = gain * np.sqrt(3.0 / fan_in)
    return _rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return _rng.uniform(-bound, bound, size=shape)


def normal(shape, std: float = 0.02) -> np.ndarray:
    """Truncation-free normal initialization (transformer embeddings)."""
    return _rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def uniform(shape, low: float, high: float) -> np.ndarray:
    return _rng.uniform(low, high, size=shape)
