"""One-shot driver regenerating every table and figure of the paper.

Runs, in order: Fig. 6 (data imbalance), Table II + Fig. 7 (solver
comparison and CD-error distribution, trained once), Table III
(ablations), Figs. 8/9 (visualizations, reusing the Table II SDM-PEB
would require retraining — a fresh short run is used), and the runtime
comparison.  Text outputs and raw arrays are written to ``--out``.

Run:  python -m repro.experiments.reproduce_all [--quick] [--out results]
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.obs import span

from .harness import ExperimentSettings
from . import fig6, fig7, fig8_fig9, runtime, table2, table3


def run_all(settings: ExperimentSettings, out_dir: Path, verbose: bool = True) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    report: list[str] = []

    def section(title: str, body: str) -> None:
        block = f"\n{'=' * 70}\n{title}\n{'=' * 70}\n{body}\n"
        report.append(block)
        if verbose:
            print(block, flush=True)

    started = time.time()

    with span("experiment.fig6"):
        frequencies = fig6.run(settings)
    section("Fig. 6 — value-distribution imbalance", fig6.format_figure(frequencies))
    np.savez(out_dir / "fig6.npz", **frequencies)

    with span("experiment.table2"):
        results, trainers, test_set = table2.run(settings, verbose=verbose,
                                                 return_trainers=True)
    section("Table II — comparison with learning-based PEB solvers",
            table2.format_table(results))
    with span("experiment.fig7"):
        buckets = fig7.run(settings, results=results)
    section("Fig. 7 — CD error distribution", fig7.format_figure(buckets))
    rows = [asdict_clean(r) for r in results]
    (out_dir / "table2.json").write_text(json.dumps(rows, indent=2))
    np.savez(out_dir / "fig7.npz",
             **{f"{name}_{axis}": values
                for name, axes in buckets.items() for axis, values in axes.items()})

    with span("experiment.table3"):
        ablation_results = table3.run(settings, verbose=verbose)
    section("Table III — ablation study", table3.format_table(ablation_results))
    (out_dir / "table3.json").write_text(
        json.dumps([asdict_clean(r) for r in ablation_results], indent=2))

    with span("experiment.fig8_fig9"):
        visual = fig8_fig9.from_trainer(trainers["SDM-PEB"], test_set, settings)
    section("Figs. 8 & 9 — prediction visualizations", fig8_fig9.format_figures(visual))
    np.savez_compressed(out_dir / "fig8_fig9.npz", truth=visual.truth,
                        prediction=visual.prediction, difference=visual.difference,
                        center_row=visual.center_row, corner_row=visual.corner_row)

    with span("experiment.runtime"):
        rigorous, runtime_rows = runtime.run(settings)
    section("Runtime — surrogates vs rigorous solver",
            runtime.format_table(rigorous, runtime_rows))

    section("Total", f"wall time {time.time() - started:.0f}s")
    (out_dir / "report.txt").write_text("".join(report))


def asdict_clean(result) -> dict:
    """MethodResult -> JSON-serializable dict (arrays to lists)."""
    from dataclasses import asdict

    raw = asdict(result)
    return {k: (v.tolist() if isinstance(v, np.ndarray) else v) for k, v in raw.items()}


def main(argv=None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="results")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    run_all(settings, Path(args.out))


if __name__ == "__main__":
    main()
