"""Optimizers operating on :class:`~repro.nn.module.Parameter` lists."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters, lr: float):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam with decoupled epsilon and optional weight decay (AdamW style)."""

    def __init__(self, parameters, lr: float = 1e-3, betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = p.data - self.lr * update


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, useful for logging training health.
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in parameters:
            p.grad = p.grad * scale
    return total
