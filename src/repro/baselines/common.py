"""Shared plumbing for baseline surrogates.

Every baseline follows the Trainer interface: forward maps photoacid
(B, D, H, W) to label Y (B, D, H, W), and ``set_output_stats`` installs
the output de-normalization affine.
"""

from __future__ import annotations

from repro import tensor as T
from repro.nn.module import Module


class SurrogateBase(Module):
    """Base class handling input reshaping and output de-normalization."""

    def __init__(self):
        super().__init__()
        self.output_mean = 0.0
        self.output_std = 1.0

    def set_output_stats(self, mean: float, std: float) -> None:
        """Record label statistics applied to the raw network output."""
        if std <= 0:
            raise ValueError("std must be positive")
        self.output_mean = float(mean)
        self.output_std = float(std)

    def _as_volume(self, acid):
        """Normalize input to (B, 1, D, H, W)."""
        if acid.ndim == 4:
            batch, depth, height, width = acid.shape
            return T.reshape(acid, (batch, 1, depth, height, width))
        if acid.ndim == 5:
            return acid
        raise ValueError(f"expected 4D or 5D input, got shape {acid.shape}")

    def _finish(self, decoded):
        """(B, 1, D, H, W) -> de-normalized (B, D, H, W)."""
        out = T.reshape(decoded, (decoded.shape[0],) + decoded.shape[2:])
        return out * self.output_std + self.output_mean

    def forward(self, acid):
        return self._finish(self.body(self._as_volume(acid)))

    def body(self, x):
        """(B, 1, D, H, W) -> (B, 1, D, H, W) network body."""
        raise NotImplementedError

    def predict_inhibitor(self, acid):
        """Inference convenience: photoacid volume(s) -> inhibitor volume(s)."""
        import numpy as np

        from repro.config import PEBConfig
        from repro.core.label import label_to_inhibitor
        from repro.tensor import Tensor, no_grad

        acid = np.asarray(acid, dtype=np.float64)
        squeeze = acid.ndim == 3
        batch = acid[None] if squeeze else acid
        with no_grad():
            label = self.forward(Tensor(batch)).numpy()
        inhibitor = label_to_inhibitor(label, PEBConfig().catalysis_rate)
        return inhibitor[0] if squeeze else inhibitor
