"""Selective-scan kernels: equivalence, gradients, and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ssm import scan
from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(11)


def decay(*shape):
    """Random decay factors in (0, 1], the domain produced by exp(ΔA)."""
    return np.exp(-RNG.uniform(0.01, 3.0, size=shape))


def drive(*shape):
    return RNG.standard_normal(shape)


class TestSequentialKernel:
    def test_matches_direct_recurrence(self):
        a, b = decay(1, 5, 2, 3), drive(1, 5, 2, 3)
        h = scan.scan_sequential(a, b)
        carry = np.zeros((1, 2, 3))
        for t in range(5):
            carry = a[:, t] * carry + b[:, t]
            assert np.allclose(h[:, t], carry)

    def test_identity_decay_is_cumsum(self):
        b = drive(2, 6, 1, 1)
        h = scan.scan_sequential(np.ones_like(b), b)
        assert np.allclose(h, np.cumsum(b, axis=1))

    def test_zero_decay_is_passthrough(self):
        b = drive(1, 4, 2, 2)
        h = scan.scan_sequential(np.zeros_like(b), b)
        assert np.allclose(h, b)


class TestChunkedKernel:
    @pytest.mark.parametrize("length", [1, 3, 16, 17, 40, 128])
    def test_matches_sequential(self, length):
        a, b = decay(2, length, 3, 4), drive(2, length, 3, 4)
        assert np.allclose(scan.scan_chunked(a, b), scan.scan_sequential(a, b))

    @pytest.mark.parametrize("chunk", [1, 2, 7, 16, 64])
    def test_chunk_size_invariant(self, chunk):
        a, b = decay(1, 33, 2, 2), drive(1, 33, 2, 2)
        assert np.allclose(scan.scan_chunked(a, b, chunk=chunk), scan.scan_sequential(a, b))

    def test_strong_decay_stable(self):
        """Very small decay factors must not overflow the cumprod trick."""
        a = np.full((1, 64, 1, 1), 1e-12)
        b = drive(1, 64, 1, 1)
        h = scan.scan_chunked(a, b)
        assert np.all(np.isfinite(h))
        assert np.allclose(h, scan.scan_sequential(a, b))

    def test_exact_zero_decay_matches_sequential(self):
        """Exact zeros kill the cumprod rescale (P_k/P_j = 0/0); the
        underflowing chunks must fall back to the exact recurrence."""
        a, b = decay(2, 40, 2, 2), drive(2, 40, 2, 2)
        a[0, 5, 0, 0] = 0.0
        a[1, 17, 1, 1] = 0.0
        a[0, 33] = 0.0
        h = scan.scan_chunked(a, b)
        assert np.all(np.isfinite(h))
        assert np.allclose(h, scan.scan_sequential(a, b), atol=1e-12)

    def test_all_zero_decay_is_passthrough(self):
        b = drive(1, 37, 2, 2)
        assert np.allclose(scan.scan_chunked(np.zeros_like(b), b), b)

    def test_denormal_decay_matches_sequential(self):
        """Denormal decays underflow the running product without being
        exactly zero; same fallback path, same exact answer."""
        a, b = decay(1, 48, 1, 2), drive(1, 48, 1, 2)
        a[0, 10] = 1e-310
        a[0, 30, 0, 1] = 5e-324
        h = scan.scan_chunked(a, b)
        assert np.all(np.isfinite(h))
        assert np.allclose(h, scan.scan_sequential(a, b), atol=1e-12)

    def test_short_sequence_clamps_chunk(self):
        """L < chunk must not pad up to the chunk size; results agree
        for every chunk setting."""
        a, b = decay(3, 4, 2, 2), drive(3, 4, 2, 2)
        for chunk in (4, 16, 64):
            assert np.allclose(scan.scan_chunked(a, b, chunk=chunk),
                               scan.scan_sequential(a, b))

    @settings(max_examples=25, deadline=None)
    @given(
        length=st.integers(1, 48),
        channels=st.integers(1, 3),
        states=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_property_kernels_agree(self, length, channels, states, seed):
        rng = np.random.default_rng(seed)
        a = np.exp(-rng.uniform(0.0, 5.0, size=(1, length, channels, states)))
        b = rng.standard_normal((1, length, channels, states))
        assert np.allclose(scan.scan_chunked(a, b), scan.scan_sequential(a, b), atol=1e-10)


class TestRunScan:
    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            scan.run_scan(decay(1, 2, 1, 1), drive(1, 2, 1, 1), mode="warp")


class TestDiagonalScanGrad:
    @pytest.mark.parametrize("mode", ["sequential", "chunked"])
    def test_gradcheck(self, mode):
        w = drive(1, 5, 2, 2)
        gradcheck(
            lambda ts: (scan.diagonal_scan(ts[0], ts[1], mode=mode) * w).sum(),
            [decay(1, 5, 2, 2), drive(1, 5, 2, 2)],
        )

    def test_gradcheck_long_sequence(self):
        w = drive(1, 35, 1, 2)
        gradcheck(
            lambda ts: (scan.diagonal_scan(ts[0], ts[1]) * w).sum(),
            [decay(1, 35, 1, 2), drive(1, 35, 1, 2)],
        )

    def test_modes_give_same_gradients(self):
        a_np, b_np = decay(1, 20, 2, 3), drive(1, 20, 2, 3)
        grads = {}
        for mode in ("sequential", "chunked"):
            a = Tensor(a_np.copy(), requires_grad=True)
            b = Tensor(b_np.copy(), requires_grad=True)
            scan.diagonal_scan(a, b, mode=mode).sum().backward()
            grads[mode] = (a.grad.copy(), b.grad.copy())
        assert np.allclose(grads["sequential"][0], grads["chunked"][0])
        assert np.allclose(grads["sequential"][1], grads["chunked"][1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            scan.diagonal_scan(Tensor(decay(1, 3, 1, 1)), Tensor(drive(1, 4, 1, 1)))

    def test_zero_decay_gradients_agree(self):
        """The backward reverse scan runs through the same chunked kernel,
        so exact-zero decays must give finite, mode-independent grads."""
        a_np, b_np = decay(1, 24, 2, 2), drive(1, 24, 2, 2)
        a_np[0, 7, 0, 0] = 0.0
        a_np[0, 19] = 0.0
        w = drive(1, 24, 2, 2)
        grads = {}
        for mode in ("sequential", "chunked"):
            a = Tensor(a_np.copy(), requires_grad=True)
            b = Tensor(b_np.copy(), requires_grad=True)
            (scan.diagonal_scan(a, b, mode=mode) * w).sum().backward()
            grads[mode] = (a.grad.copy(), b.grad.copy())
        for mode in grads:
            assert np.all(np.isfinite(grads[mode][0]))
            assert np.all(np.isfinite(grads[mode][1]))
        assert np.allclose(grads["sequential"][0], grads["chunked"][0], atol=1e-11)
        assert np.allclose(grads["sequential"][1], grads["chunked"][1], atol=1e-11)
