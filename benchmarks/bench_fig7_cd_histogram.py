"""Fig. 7 bench: CD-error distribution across methods.

Regenerates the Fig. 7 bucket percentages from the session-trained
models and benchmarks the CD-measurement path (development-rate →
Eikonal → per-contact CD) that produces them.
"""

import numpy as np

from repro.experiments import TABLE2_METHODS, fig7
from repro.litho import contact_cds, development_arrival


def test_bench_cd_measurement(benchmark, data, settings):
    """The full per-clip CD measurement chain on ground truth."""
    _, test_set = data
    sample = test_set.samples[0]
    config = settings.config

    def measure():
        arrival = development_arrival(sample.inhibitor, config.grid, config.develop)
        return contact_cds(arrival, sample.contacts, config.grid, config.develop)

    cds = benchmark(measure)
    assert cds["x"].shape == (len(sample.contacts),)


def test_regenerated_fig7(trained_methods):
    results = [trained_methods[name][1] for name in TABLE2_METHODS]
    buckets = fig7.run(results=results)
    print("\n" + fig7.format_figure(buckets))
    for name, axes in buckets.items():
        for axis in ("x", "y"):
            pct = axes[axis]
            assert np.isclose(np.nansum(pct), 100.0), (name, axis)
