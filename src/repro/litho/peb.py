"""Rigorous post-exposure bake solver (the S-Litho ground-truth substitute).

Integrates the paper's reaction-diffusion system (Eqs. 1-4):

    d[I]/dt = -k_c [I][A]
    d[A]/dt = -k_r [A][B] + div(D_A grad [A])
    d[B]/dt = -k_r [A][B] + div(D_B grad [B])

with anisotropic diffusion (lateral vs normal), zero-flux x-y boundary
conditions, a Robin boundary condition for acid at the resist top
surface, and zero-flux at the resist/substrate interface.

The integrator uses operator splitting where every sub-step is *exact*:

* lateral diffusion  — DCT spectral propagator (:mod:`repro.litho.dct`);
* normal diffusion + Robin loss — matrix exponential of the small
  (nz × nz) z-operator, including the affine saturation source term;
* reactions — closed-form solutions of the catalysis ODE (frozen acid)
  and the acid-base neutralization ODE (which conserves [A] - [B]).

Lie splitting is first-order in dt; Strang splitting (``splitting=
"strang"``) is second-order.  Because each sub-step is exact, the
solver tolerates time steps well above Table I's baseline 0.1 s, which
is what makes dataset generation tractable on a CPU (the convergence
bench quantifies the residual splitting error).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.linalg import expm

from repro.config import GridConfig, PEBConfig
from repro.obs import span
from repro.runtime.cache import cached_lateral_propagator, cached_z_propagator
from .dct import lateral_step_fdm


@dataclass
class PEBResult:
    """Final state of a PEB simulation (plus optional recorded frames)."""

    acid: np.ndarray
    base: np.ndarray
    inhibitor: np.ndarray
    times: list[float] = field(default_factory=list)
    trajectory: list[dict[str, np.ndarray]] = field(default_factory=list)


def _z_operator(grid: GridConfig, diffusivity: float, transfer: float,
                saturation: float) -> tuple[np.ndarray, np.ndarray]:
    """Build (M, c) with du/dt = M u + c for the z direction.

    Index 0 is the resist top surface.  Finite-volume discretization:
    Robin loss ``-(h/dz)(u_0 - u_sat)`` at the top, zero flux at the
    bottom.
    """
    nz, dz = grid.nz, grid.dz_nm
    main = np.zeros(nz, dtype=np.float64)
    upper = np.full(nz - 1, diffusivity / dz ** 2, dtype=np.float64)
    lower = np.full(nz - 1, diffusivity / dz ** 2, dtype=np.float64)
    main[:] = -2.0 * diffusivity / dz ** 2
    main[0] = -diffusivity / dz ** 2 - transfer / dz
    main[-1] = -diffusivity / dz ** 2
    matrix = np.diag(main) + np.diag(upper, 1) + np.diag(lower, -1)
    source = np.zeros(nz, dtype=np.float64)
    source[0] = transfer / dz * saturation
    return matrix, source


class _ZPropagator:
    """Exact one-step integrator of du/dt = M u + c along z."""

    def __init__(self, grid: GridConfig, diffusivity: float, transfer: float,
                 saturation: float, dt: float):
        matrix, source = _z_operator(grid, diffusivity, transfer, saturation)
        self.step_matrix = expm(dt * matrix)
        if np.any(source):
            # u+ = E u + M^{-1} (E - I) c; M is invertible when transfer > 0.
            self.affine = np.linalg.solve(
                matrix, (self.step_matrix - np.eye(grid.nz, dtype=np.float64)) @ source)
        else:
            self.affine = np.zeros(grid.nz, dtype=np.float64)

    def apply(self, u: np.ndarray) -> np.ndarray:
        """Advance a (nz, ny, nx) field one step along z."""
        return np.einsum("ij,jyx->iyx", self.step_matrix, u) + self.affine[:, None, None]


def catalysis_step(inhibitor: np.ndarray, acid: np.ndarray, rate: float, dt: float) -> np.ndarray:
    """Exact catalysis update with acid frozen over the step (Eq. 1)."""
    return inhibitor * np.exp(-rate * acid * dt)


def neutralization_step(acid: np.ndarray, base: np.ndarray, rate: float, dt: float) -> tuple[np.ndarray, np.ndarray]:
    """Exact acid-base neutralization update (reaction part of Eqs. 2-3).

    The difference d = [A] - [B] is conserved; the ODE dA/dt = -k A(A-d)
    has the closed form  A(t) = d / (1 - (B0/A0) exp(-k d t)).
    """
    diff = acid - base
    small = np.abs(diff) < 1e-10
    degenerate = acid < 1e-300
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        ratio = np.where(degenerate, 0.0, base / np.where(degenerate, 1.0, acid))
        decay = np.exp(np.clip(-rate * diff * dt, -700.0, 700.0))
        general = diff / (1.0 - ratio * decay)
        limit = acid / (1.0 + rate * acid * dt)
    acid_new = np.where(small, limit, general)
    acid_new = np.where(degenerate, 0.0, acid_new)
    acid_new = np.clip(acid_new, 0.0, None)
    base_new = np.clip(acid_new - diff, 0.0, None)
    return acid_new, base_new


class RigorousPEBSolver:
    """Operator-splitting reaction-diffusion solver for the PEB step.

    Parameters
    ----------
    grid, peb:
        Discretization and physics configuration (Table I defaults).
    lateral_mode:
        ``"dct"`` (exact spectral, default) or ``"fdm"`` (explicit
        Euler, kept for the solver-mode ablation).
    splitting:
        ``"lie"`` (first order) or ``"strang"`` (second order).
    time_step_s:
        Override of ``peb.time_step_s``; larger steps trade splitting
        accuracy for speed.
    """

    def __init__(self, grid: GridConfig, peb: PEBConfig, lateral_mode: str = "dct",
                 splitting: str = "lie", time_step_s: float | None = None):
        if lateral_mode not in ("dct", "fdm"):
            raise ValueError(f"unknown lateral_mode {lateral_mode!r}")
        if splitting not in ("lie", "strang"):
            raise ValueError(f"unknown splitting {splitting!r}")
        self.grid = grid
        self.peb = peb
        self.lateral_mode = lateral_mode
        self.splitting = splitting
        self.dt = time_step_s if time_step_s is not None else peb.time_step_s
        if self.dt <= 0:
            raise ValueError("time step must be positive")
        self._steps = int(round(peb.duration_s / self.dt))
        if self._steps < 1:
            raise ValueError("duration shorter than one time step")
        # Propagators are immutable and keyed on (grid, physics, dt), so
        # identical solver configurations share operator instances (the
        # expm / eigenvalue setup is the dominant construction cost).
        if lateral_mode == "dct":
            self._lat_acid = cached_lateral_propagator(grid, peb.diffusivity("acid", "lateral"), self.dt)
            self._lat_base = cached_lateral_propagator(grid, peb.diffusivity("base", "lateral"), self.dt)
        else:
            limit = 0.5 / (peb.diffusivity("acid", "lateral") * (1.0 / grid.dx_nm ** 2 + 1.0 / grid.dy_nm ** 2))
            if self.dt > limit:
                raise ValueError(f"explicit lateral step unstable: dt={self.dt} > {limit:.3f}")
        self._z_acid = cached_z_propagator(grid, peb.diffusivity("acid", "normal"),
                                           peb.transfer_coefficient_acid, peb.acid_saturation, self.dt)
        self._z_base = cached_z_propagator(grid, peb.diffusivity("base", "normal"),
                                           peb.transfer_coefficient_base, peb.base_saturation, self.dt)

    # ------------------------------------------------------------------
    def _diffuse(self, acid: np.ndarray, base: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        with span("peb.lateral", mode=self.lateral_mode):
            if self.lateral_mode == "dct":
                acid = self._lat_acid.apply(acid)
                base = self._lat_base.apply(base)
            else:
                acid = lateral_step_fdm(acid, self.peb.diffusivity("acid", "lateral"), self.dt,
                                        self.grid.dx_nm, self.grid.dy_nm)
                base = lateral_step_fdm(base, self.peb.diffusivity("base", "lateral"), self.dt,
                                        self.grid.dx_nm, self.grid.dy_nm)
        with span("peb.z"):
            return self._z_acid.apply(acid), self._z_base.apply(base)

    def _react(self, acid, base, inhibitor, dt):
        with span("peb.react"):
            inhibitor = catalysis_step(inhibitor, acid, self.peb.catalysis_rate, dt)
            acid, base = neutralization_step(acid, base, self.peb.neutralization_rate, dt)
        return acid, base, inhibitor

    def solve(self, acid0: np.ndarray, record_every: int | None = None) -> PEBResult:
        """Run the bake from the initial photoacid latent image.

        ``acid0`` has shape (nz, ny, nx) with index 0 the resist top.
        Initial base and inhibitor are uniform per Table I.
        """
        if acid0.shape != self.grid.shape:
            raise ValueError(f"acid0 shape {acid0.shape} does not match grid {self.grid.shape}")
        acid = np.array(acid0, dtype=np.float64)
        base = np.full_like(acid, self.peb.base_initial)
        inhibitor = np.full_like(acid, self.peb.inhibitor_initial)
        result = PEBResult(acid=acid, base=base, inhibitor=inhibitor)
        with span("peb.solve", steps=self._steps, dt_s=self.dt,
                  splitting=self.splitting, lateral_mode=self.lateral_mode,
                  grid=list(self.grid.shape)):
            for step in range(self._steps):
                if self.splitting == "lie":
                    acid, base, inhibitor = self._react(acid, base, inhibitor, self.dt)
                    acid, base = self._diffuse(acid, base)
                else:
                    acid, base, inhibitor = self._react(acid, base, inhibitor, self.dt / 2.0)
                    acid, base = self._diffuse(acid, base)
                    acid, base, inhibitor = self._react(acid, base, inhibitor, self.dt / 2.0)
                if record_every and (step + 1) % record_every == 0:
                    result.times.append((step + 1) * self.dt)
                    result.trajectory.append({
                        "acid": acid.copy(), "base": base.copy(), "inhibitor": inhibitor.copy(),
                    })
        result.acid, result.base, result.inhibitor = acid, base, inhibitor
        return result
