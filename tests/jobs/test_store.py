"""Job store: lifecycle, crash-safe writes, checkpoints, recovery."""

import json
import os

import numpy as np
import pytest

from repro.jobs import JOB_STATES, JobNotFound, JobRecord, JobStore


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


class TestLifecycle:
    def test_submit_creates_queued_record(self, store):
        record = store.submit("counter", {"iterations": 3})
        assert record.state == "queued"
        assert record.type == "counter"
        assert record.params == {"iterations": 3}
        assert record.attempts == 0
        loaded = store.get(record.id)
        assert loaded.to_dict() == store.get(record.id).to_dict()
        assert loaded.created_s > 0

    def test_ids_are_unique(self, store):
        ids = {store.submit("counter", {}).id for _ in range(20)}
        assert len(ids) == 20

    def test_get_unknown_raises(self, store):
        with pytest.raises(JobNotFound):
            store.get("nope")

    def test_list_is_oldest_first(self, store):
        first = store.submit("counter", {})
        second = store.submit("counter", {})
        listed = [r.id for r in store.list()]
        assert listed.index(first.id) < listed.index(second.id)

    def test_transition_updates_state_and_fields(self, store):
        record = store.submit("counter", {})
        store.transition(record.id, "running", attempts=1)
        loaded = store.get(record.id)
        assert loaded.state == "running"
        assert loaded.attempts == 1
        assert loaded.updated_s >= loaded.created_s

    def test_transition_rejects_unknown_state(self, store):
        record = store.submit("counter", {})
        with pytest.raises(ValueError, match="unknown job state"):
            store.transition(record.id, "zombie")

    def test_all_states_roundtrip(self, store):
        for state in JOB_STATES:
            record = store.submit("counter", {})
            store.transition(record.id, state)
            assert store.get(record.id).state == state


class TestCancellation:
    def test_cancel_queued_is_immediate(self, store):
        record = store.submit("counter", {})
        cancelled = store.request_cancel(record.id)
        assert cancelled.state == "cancelled"
        assert cancelled.cancel_requested

    def test_cancel_running_is_cooperative(self, store):
        record = store.submit("counter", {})
        store.transition(record.id, "running")
        flagged = store.request_cancel(record.id)
        assert flagged.state == "running"
        assert flagged.cancel_requested

    def test_cancel_terminal_is_noop(self, store):
        record = store.submit("counter", {})
        store.transition(record.id, "completed", result={"ok": True})
        after = store.request_cancel(record.id)
        assert after.state == "completed"
        assert not after.cancel_requested


class TestAtomicWrites:
    def test_record_write_leaves_no_temp_files(self, store):
        record = store.submit("counter", {})
        for _ in range(5):
            store.transition(record.id, "running")
            store.transition(record.id, "queued")
        names = os.listdir(store.root / record.id)
        assert not [n for n in names if n.endswith(".tmp")]

    def test_record_file_is_valid_json(self, store):
        record = store.submit("counter", {"iterations": 2})
        with open(store.root / record.id / "job.json") as handle:
            payload = json.load(handle)
        assert payload["id"] == record.id
        assert payload["state"] == "queued"

    def test_from_dict_ignores_unknown_fields(self):
        record = JobRecord.from_dict(
            {"id": "x", "type": "counter", "params": {},
             "future_field": 123})
        assert record.id == "x"


class TestCheckpoints:
    def test_checkpoint_roundtrip_is_bitwise(self, store):
        record = store.submit("counter", {})
        state = {
            "bias": np.array([1.25, -3.5, 7.125], dtype=np.float64),
            "iteration": np.int64(4),
        }
        store.save_checkpoint(record.id, state)
        loaded = store.load_checkpoint(record.id)
        assert set(loaded) == set(state)
        for key in state:
            assert np.array_equal(loaded[key], state[key])
            assert loaded[key].dtype == np.asarray(state[key]).dtype

    def test_missing_checkpoint_is_none(self, store):
        record = store.submit("counter", {})
        assert store.load_checkpoint(record.id) is None
        assert store.checkpoint_age_s(record.id) is None

    def test_checkpoint_age(self, store):
        record = store.submit("counter", {})
        store.save_checkpoint(record.id, {"iteration": np.int64(0)})
        age = store.checkpoint_age_s(record.id)
        assert age is not None and 0.0 <= age < 60.0


class TestRecovery:
    def test_recover_requeues_running(self, store):
        record = store.submit("counter", {})
        store.transition(record.id, "running", attempts=1)
        assert store.recover() == 1
        assert store.get(record.id).state == "queued"

    def test_recover_cancels_running_with_cancel_flag(self, store):
        record = store.submit("counter", {})
        store.transition(record.id, "running", cancel_requested=True)
        store.recover()
        assert store.get(record.id).state == "cancelled"

    def test_recover_leaves_other_states_alone(self, store):
        done = store.submit("counter", {})
        store.transition(done.id, "completed", result={})
        queued = store.submit("counter", {})
        assert store.recover() == 0
        assert store.get(done.id).state == "completed"
        assert store.get(queued.id).state == "queued"

    def test_store_survives_reopen(self, store):
        record = store.submit("counter", {"iterations": 5})
        store.save_checkpoint(record.id, {"iteration": np.int64(2)})
        reopened = JobStore(store.root)
        assert reopened.get(record.id).params == {"iterations": 5}
        assert int(reopened.load_checkpoint(record.id)["iteration"]) == 2


class TestStats:
    def test_counts_by_state(self, store):
        store.submit("counter", {})
        running = store.submit("counter", {})
        store.transition(running.id, "running")
        done = store.submit("counter", {})
        store.transition(done.id, "completed", result={})
        stats = store.stats()
        assert stats["counts"]["queued"] == 1
        assert stats["counts"]["running"] == 1
        assert stats["counts"]["completed"] == 1
        assert stats["total"] == 3

    def test_oldest_checkpoint_age_tracks_live_jobs(self, store):
        record = store.submit("counter", {})
        assert store.stats()["oldest_checkpoint_age_s"] is None
        store.save_checkpoint(record.id, {"iteration": np.int64(0)})
        age = store.stats()["oldest_checkpoint_age_s"]
        assert age is not None and age >= 0.0
