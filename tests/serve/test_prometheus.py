"""Prometheus text exposition: cumulative histograms must be well-formed.

Prometheus semantics the renderer must honor: ``_bucket`` series are
*cumulative* (each ``le`` bound counts everything at or below it, so
counts are monotone non-decreasing in ``le``), the ``+Inf`` bucket
equals ``_count``, and ``_sum`` is the running total of observed values.
"""

import re

import pytest

from repro.obs import counter, histogram, reset_metrics, timer
from repro.serve import render_prometheus


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


def bucket_series(text, name):
    """[(le, count)] for one histogram family, in emission order."""
    pattern = re.compile(rf'^{name}_bucket{{le="([^"]+)"}} (\d+)$', re.M)
    return [(le, int(count)) for le, count in pattern.findall(text)]


class TestHistogramFormat:
    BOUNDS = (0.1, 0.5, 1.0, 5.0)
    VALUES = (0.05, 0.3, 0.3, 0.7, 2.0, 100.0)

    def render(self):
        h = histogram("serve.request_latency_s", bounds=self.BOUNDS)
        for value in self.VALUES:
            h.observe(value)
        return render_prometheus()

    def test_buckets_are_cumulative_and_monotone(self):
        series = bucket_series(self.render(), "repro_serve_request_latency_s")
        counts = [count for _, count in series]
        assert counts == sorted(counts)
        # cumulative, not per-bucket: le=0.5 includes the le=0.1 value
        assert dict(series)["0.1"] == 1
        assert dict(series)["0.5"] == 3
        assert dict(series)["1"] == 4
        assert dict(series)["5"] == 5

    def test_inf_bucket_equals_count(self):
        text = self.render()
        series = dict(bucket_series(text, "repro_serve_request_latency_s"))
        assert series["+Inf"] == len(self.VALUES)
        assert f"repro_serve_request_latency_s_count {len(self.VALUES)}" in text

    def test_sum_matches_observations(self):
        text = self.render()
        match = re.search(r"^repro_serve_request_latency_s_sum (\S+)$", text, re.M)
        assert float(match.group(1)) == pytest.approx(sum(self.VALUES))

    def test_type_line_present(self):
        assert "# TYPE repro_serve_request_latency_s histogram" in self.render()

    def test_every_configured_bound_emitted(self):
        series = bucket_series(self.render(), "repro_serve_request_latency_s")
        assert [le for le, _ in series] == ["0.1", "0.5", "1", "5", "+Inf"]


class TestOtherFamilies:
    def test_counter_rendering(self):
        counter("serve.http.predict").inc(3)
        text = render_prometheus()
        assert "# TYPE repro_serve_http_predict counter" in text
        assert "repro_serve_http_predict_total 3" in text

    def test_timer_rendering(self):
        timer("serve.batch_compute").observe(0.25)
        text = render_prometheus()
        assert "# TYPE repro_serve_batch_compute_seconds summary" in text
        assert "repro_serve_batch_compute_seconds_count 1" in text

    def test_metric_names_flattened(self):
        histogram("health.shadow.cd_error_nm", bounds=(1.0,)).observe(0.5)
        text = render_prometheus()
        assert 'repro_health_shadow_cd_error_nm_bucket{le="1"} 1' in text
