"""Process-level gauges: RSS, open fds, uptime, live /dev/shm segments.

Read straight from ``/proc`` (Linux) with graceful degradation — every
reader returns a best-effort number and never raises, because a metrics
scrape must not be able to fail a health check.  :func:`refresh_process_gauges`
is called on each ``/metrics`` / ``/healthz`` scrape and by the
telemetry sampler, so the TSDB retains RSS/fd history too.
"""

from __future__ import annotations

import os
import resource
import time

from .metrics import gauge

__all__ = [
    "rss_bytes", "open_fd_count", "shm_segment_count",
    "refresh_process_gauges", "process_info",
]

_STARTED_S = time.time()
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Resident set size in bytes (0 when unreadable)."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        # ru_maxrss is a high-water mark, not current RSS, but it is the
        # best portable fallback (kilobytes on Linux)
        try:
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except (OSError, ValueError):
            return 0


def open_fd_count() -> int:
    """Number of open file descriptors (0 when unreadable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:
        try:
            return len(os.listdir("/dev/fd"))
        except OSError:
            return 0


def shm_segment_count(prefix: str = "repro-") -> int:
    """Live ``/dev/shm`` segments with our prefix (leak canary: shared
    weight segments should die with the server that published them)."""
    try:
        return sum(1 for name in os.listdir("/dev/shm")
                   if name.startswith(prefix))
    except OSError:
        return 0


def uptime_s() -> float:
    return time.time() - _STARTED_S


def refresh_process_gauges() -> None:
    """Refresh the ``process.*`` gauges from /proc (scrape-time)."""
    gauge("process.rss_bytes").set(float(rss_bytes()))
    gauge("process.open_fds").set(float(open_fd_count()))
    gauge("process.uptime_s").set(round(uptime_s(), 3))
    gauge("process.shm_segments").set(float(shm_segment_count()))


def process_info() -> dict:
    """The ``process`` block for ``/healthz`` and flight dumps."""
    return {
        "pid": os.getpid(),
        "rss_bytes": rss_bytes(),
        "open_fds": open_fd_count(),
        "uptime_s": round(uptime_s(), 3),
        "shm_segments": shm_segment_count(),
    }
