"""SelectiveSSM behaviour and HiPPO initialization."""

import numpy as np
import pytest

from repro import nn
from repro.ssm import SelectiveSSM, hippo_legs_matrix, s4d_real_init, dt_init
from repro.tensor import Tensor

RNG = np.random.default_rng(13)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestHippo:
    def test_legs_matrix_structure(self):
        matrix = hippo_legs_matrix(4)
        assert np.allclose(np.diag(matrix), [-1.0, -2.0, -3.0, -4.0])
        assert np.allclose(np.triu(matrix, k=1), 0.0)
        assert matrix[2, 0] == -np.sqrt(5.0 * 1.0)

    def test_legs_matrix_is_stable(self):
        eigenvalues = np.linalg.eigvals(hippo_legs_matrix(8))
        assert np.all(eigenvalues.real < 0)

    def test_s4d_real_matches_legs_diagonal(self):
        assert np.allclose(s4d_real_init(3, 5)[0], np.diag(hippo_legs_matrix(5)))

    def test_dt_init_in_range(self):
        bias = dt_init(100, dt_min=1e-3, dt_max=1e-1)
        dt = np.log1p(np.exp(bias))
        assert np.all(dt >= 1e-3 * 0.99) and np.all(dt <= 1e-1 * 1.01)


class TestSelectiveSSM:
    def test_output_shape(self):
        ssm = SelectiveSSM(channels=4, state_dim=3)
        assert ssm(Tensor(rand(2, 10, 4))).shape == (2, 10, 4)

    def test_wrong_channels_raises(self):
        ssm = SelectiveSSM(channels=4)
        with pytest.raises(ValueError):
            ssm(Tensor(rand(1, 5, 3)))

    def test_invalid_discretization_raises(self):
        with pytest.raises(ValueError):
            SelectiveSSM(channels=2, discretization="midpoint")

    def test_causality(self):
        """Output at time t must not depend on inputs at time > t."""
        nn.init.seed(3)
        ssm = SelectiveSSM(channels=3, state_dim=4)
        x = rand(1, 8, 3)
        base = ssm(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 5:] += 10.0
        out = ssm(Tensor(perturbed)).data
        assert np.allclose(out[0, :5], base[0, :5])
        assert not np.allclose(out[0, 5:], base[0, 5:])

    def test_selectivity_input_dependence(self):
        """Two different prefixes must propagate differently (selection)."""
        nn.init.seed(4)
        ssm = SelectiveSSM(channels=2, state_dim=2)
        x1, x2 = rand(1, 6, 2), rand(1, 6, 2)
        x2[0, 3:] = x1[0, 3:]
        y1, y2 = ssm(Tensor(x1)).data, ssm(Tensor(x2)).data
        assert not np.allclose(y1[0, 3:], y2[0, 3:])

    def test_gradients_reach_all_parameters(self):
        ssm = SelectiveSSM(channels=3, state_dim=2)
        ssm(Tensor(rand(1, 7, 3))).sum().backward()
        for name, param in ssm.named_parameters():
            assert param.grad is not None, name

    def test_zoh_and_euler_differ(self):
        nn.init.seed(5)
        zoh = SelectiveSSM(channels=2, state_dim=2, discretization="zoh")
        nn.init.seed(5)
        euler = SelectiveSSM(channels=2, state_dim=2, discretization="euler")
        x = Tensor(rand(1, 5, 2))
        assert not np.allclose(zoh(x).data, euler(x).data)

    def test_scan_modes_equivalent(self):
        nn.init.seed(6)
        chunked = SelectiveSSM(channels=2, state_dim=2, scan_mode="chunked")
        nn.init.seed(6)
        sequential = SelectiveSSM(channels=2, state_dim=2, scan_mode="sequential")
        x = Tensor(rand(1, 40, 2))
        assert np.allclose(chunked(x).data, sequential(x).data)

    def test_decay_keeps_activations_bounded(self):
        ssm = SelectiveSSM(channels=2, state_dim=2)
        x = Tensor(np.ones((1, 200, 2)))
        out = ssm(x).data
        assert np.all(np.isfinite(out))
        assert np.abs(out).max() < 1e3
