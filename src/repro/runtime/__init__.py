"""Performance layer: process pools, FFT threading and operator caches.

``repro.runtime`` centralizes the knobs that decide how fast the
reproduction runs on a given machine without changing any numerics:

* :mod:`repro.runtime.pool` — a fork-based worker pool for
  embarrassingly parallel stages (rigorous dataset generation), with a
  deterministic serial fallback;
* :mod:`repro.runtime.fft` — the thread count handed to ``scipy.fft``
  (DCT diffusion propagator, S4D global convolution);
* :mod:`repro.runtime.cache` — LRU caches for the PEB propagators,
  whose construction is dominated by ``expm`` / eigenvalue setup and is
  repeated verbatim across solver instances, benches and pool workers;
* :mod:`repro.runtime.sync` — lock factories whose products turn into
  instrumented wrappers under ``REPRO_SANITIZE=1``, recording lock
  acquisition order (inversion detection), fork-time safety and
  per-lock contention.

Environment variables: ``REPRO_WORKERS`` (process count for dataset
generation) and ``REPRO_FFT_WORKERS`` (scipy.fft thread count); see
``docs/performance.md``.
"""

from .pool import resolve_workers, fork_available, parallel_map
from .fft import fft_workers, set_fft_workers
from .cache import (
    cached_lateral_propagator, cached_z_propagator,
    clear_propagator_caches, propagator_cache_info,
)
from .sync import (
    make_lock, make_rlock, make_condition, sanitize_locks,
    lock_sanitizer_enabled, check_fork_safety, sync_violations,
    sync_report, reset_sync_state, held_locks,
    LockSanitizerError, LockOrderError, ForkSafetyError, SyncViolation,
)

__all__ = [
    "resolve_workers", "fork_available", "parallel_map",
    "fft_workers", "set_fft_workers",
    "cached_lateral_propagator", "cached_z_propagator",
    "clear_propagator_caches", "propagator_cache_info",
    "make_lock", "make_rlock", "make_condition", "sanitize_locks",
    "lock_sanitizer_enabled", "check_fork_safety", "sync_violations",
    "sync_report", "reset_sync_state", "held_locks",
    "LockSanitizerError", "LockOrderError", "ForkSafetyError", "SyncViolation",
]
