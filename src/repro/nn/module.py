"""Module/Parameter abstractions for building networks."""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.tensor import Tensor


def normalize_weights_path(path: str | Path) -> Path:
    """Canonical on-disk path for a weights file.

    ``np.savez`` silently appends ``.npz`` to extension-less paths, so
    ``save("w")`` used to write ``w.npz`` while ``load("w")`` looked for
    ``w``.  Both directions now agree on ``<path>.npz`` whenever the
    suffix is missing.
    """
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Submodules and parameters assigned as attributes are registered
    automatically, mirroring the torch ``nn.Module`` contract:
    ``parameters()``, ``named_parameters()``, ``train()/eval()``,
    ``state_dict()/load_state_dict()`` all work on the attribute tree.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in the module tree, depth-first."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter data in-place.

        Strict mode (the default) requires the key sets to match exactly
        and raises one ``KeyError`` listing every missing and unexpected
        dotted name.  ``strict=False`` loads the intersection and
        silently skips the rest (partial restores, transfer between
        architecture variants).  Shape mismatches on keys that *are*
        loaded always raise a ``ValueError`` listing every offender.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if strict and (missing or unexpected):
            lines = [f"load_state_dict: state does not match module "
                     f"({len(missing)} missing, {len(unexpected)} unexpected)"]
            if missing:
                lines.append("  missing from state: " + ", ".join(missing))
            if unexpected:
                lines.append("  unexpected in state: " + ", ".join(unexpected))
            lines.append("  (pass strict=False to load the matching subset)")
            raise KeyError("\n".join(lines))
        loadable = {name: np.asarray(state[name]) for name in own if name in state}
        mismatched = [f"{name}: state {value.shape} vs parameter {own[name].shape}"
                      for name, value in loadable.items() if value.shape != own[name].shape]
        if mismatched:
            raise ValueError("load_state_dict: shape mismatch for "
                             f"{len(mismatched)} parameter(s)\n  " + "\n  ".join(mismatched))
        for name, value in loadable.items():
            param = own[name]
            param.data = value.astype(param.data.dtype).copy()

    def save(self, path: str | Path) -> Path:
        """Save parameters to an ``.npz`` file; returns the actual path."""
        target = normalize_weights_path(path)
        np.savez(str(target), **self.state_dict())
        return target

    def load(self, path: str | Path, strict: bool = True) -> None:
        """Load parameters from an ``.npz`` file (extension optional)."""
        target = normalize_weights_path(path)
        with np.load(str(target)) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files}, strict=strict)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """Holds submodules in a list, registering them for traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        setattr(self, f"item{index}", module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Identity(Module):
    """Pass-through module."""

    def forward(self, x):
        return x
