"""Trace report: JSONL loading, per-span aggregation, CLI rendering."""

import json

import numpy as np
import pytest

from repro import nn
from repro.baselines import DeepCNN, DeepCNNConfig
from repro.cli import main as cli_main
from repro.core import TrainConfig, Trainer
from repro.obs import disable_tracing, enable_tracing, propagator_cache_stats
from repro.obs.report import format_report, load_events, summarize_spans


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    disable_tracing()


def span_line(name, dur, pid=1):
    return json.dumps({"type": "span", "name": name, "pid": pid, "id": 1,
                       "parent": None, "depth": 0, "t_wall_s": 0.0,
                       "dur_s": dur, "attrs": {}})


class TestLoadEvents:
    def test_skips_blank_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(span_line("a", 1.0) + "\n\nnot json\n" +
                        span_line("b", 2.0) + "\n" + '{"type": "spa')
        events = load_events(path)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_tolerates_truncated_multibyte_last_line(self, tmp_path):
        """A live writer can be mid-write when the reader opens the file;
        a partial UTF-8 multi-byte sequence at EOF must be skipped, not
        raised as UnicodeDecodeError."""
        path = tmp_path / "t.jsonl"
        complete = (span_line("a", 1.0) + "\n").encode("utf-8")
        partial = json.dumps(
            {"type": "span", "name": "héllo", "pid": 1, "id": 2,
             "parent": None, "depth": 0, "t_wall_s": 0.0, "dur_s": 1.0,
             "attrs": {}}, ensure_ascii=False).encode("utf-8")
        cut = partial[:partial.index("é".encode("utf-8")) + 1]
        assert cut[-1] >= 0x80    # the cut really splits a multi-byte char
        path.write_bytes(complete + cut)
        events = load_events(path)
        assert [e["name"] for e in events] == ["a"]

    def test_tolerates_truncation_mid_span_forest(self, tmp_path):
        from repro.obs.export import build_span_forest
        path = tmp_path / "t.jsonl"
        payload = span_line("kept", 1.0).encode("utf-8")
        path.write_bytes(payload + b"\n" + payload[: len(payload) // 2])
        roots = build_span_forest(load_events(path))
        assert [r.name for r in roots] == ["kept"]


class TestSummarize:
    def test_aggregates_by_name_sorted_by_total(self, tmp_path):
        lines = [span_line("fast", 0.1), span_line("slow", 5.0),
                 span_line("fast", 0.3, pid=2)]
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(lines) + "\n")
        summaries = summarize_spans(load_events(path))
        assert [s.name for s in summaries] == ["slow", "fast"]
        fast = summaries[1]
        assert fast.count == 2
        assert fast.total_s == pytest.approx(0.4)
        assert fast.min_s == pytest.approx(0.1)
        assert fast.max_s == pytest.approx(0.3)
        assert fast.mean_s == pytest.approx(0.2)
        assert fast.pids == 2

    def test_non_span_events_ignored(self):
        events = [{"type": "event", "name": "cache"}]
        assert summarize_spans(events) == []

    def test_format_empty(self):
        text = format_report([])
        assert "no span events" in text

    def test_format_limit(self, tmp_path):
        lines = [span_line(f"s{i}", float(i + 1)) for i in range(5)]
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(lines) + "\n")
        text = format_report(summarize_spans(load_events(path)), limit=2)
        assert "more span name(s)" in text


class TestCliReport:
    def test_report_from_real_fit_trace(self, tmp_path, capsys):
        """Acceptance: the report subcommand renders a per-span summary
        from a trace produced by an actual Trainer.fit run."""
        trace_path = tmp_path / "fit.jsonl"
        nn.init.seed(0)
        model = DeepCNN(DeepCNNConfig(width=4, num_blocks=1))
        rng = np.random.default_rng(11)
        x = rng.random((4, 2, 8, 8))
        y = 2.0 * x + 1.0
        enable_tracing(trace_path)
        Trainer(model, x, y, TrainConfig(epochs=2, batch_size=2)).fit()
        disable_tracing()

        assert cli_main(["report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        for name in ("trainer.fit", "trainer.epoch", "trainer.step"):
            assert name in out

    def test_report_missing_file(self, tmp_path, capsys):
        assert cli_main(["report", str(tmp_path / "absent.jsonl")]) == 1
        assert "no trace file" in capsys.readouterr().out


class TestCacheStats:
    def test_propagator_cache_stats_shape(self):
        stats = propagator_cache_stats(record=False)
        assert set(stats) == {"lateral", "z", "hit_rate"}
        assert 0.0 <= stats["hit_rate"] <= 1.0
