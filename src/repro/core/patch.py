"""Patch embedding and merging layers (Section III-B, Fig. 3).

Depthwise *overlapped* patch merging downsamples the spatial (H, W)
dimensions with a strided convolution whose kernel is larger than its
stride, so neighbouring patches share boundary voxels — this preserves
the local continuity that reaction-diffusion fields demand.  Depth
resolution is always retained.  The non-overlapped variant (kernel ==
stride) is kept for the Fig. 3 ablation.
"""

from __future__ import annotations

from repro.nn.conv import Conv3d
from repro.nn.module import Module


class OverlappedPatchEmbedding(Module):
    """Strided overlapping Conv3d: (B, C, D, H, W) -> (B, C', D, H/s, W/s).

    ``patch_size`` is the in-plane kernel extent, ``stride`` the in-plane
    downsampling factor; the depth axis uses a kernel of ``depth_kernel``
    with unit stride and same-padding, so D is preserved.
    """

    def __init__(self, in_channels: int, out_channels: int, patch_size: int,
                 stride: int, depth_kernel: int = 3):
        super().__init__()
        if patch_size < stride:
            raise ValueError("overlapped embedding requires patch_size >= stride")
        if patch_size % 2 != 1:
            raise ValueError("patch_size must be odd for symmetric same-padding")
        self.stride = stride
        # SegFormer-style padding: output size is exactly H/stride for
        # inputs divisible by the stride.
        pad_plane = patch_size // 2
        pad_depth = (depth_kernel - 1) // 2
        self.proj = Conv3d(in_channels, out_channels,
                           kernel_size=(depth_kernel, patch_size, patch_size),
                           stride=(1, stride, stride),
                           padding=(pad_depth, pad_plane, pad_plane))

    def forward(self, x):
        return self.proj(x)


class NonOverlappedPatchMerging(Module):
    """Kernel == stride merging (Fig. 3a), for the overlap ablation."""

    def __init__(self, in_channels: int, out_channels: int, stride: int):
        super().__init__()
        self.stride = stride
        self.proj = Conv3d(in_channels, out_channels,
                           kernel_size=(1, stride, stride),
                           stride=(1, stride, stride), padding=0)

    def forward(self, x):
        return self.proj(x)


def make_merging(kind: str, in_channels: int, out_channels: int, patch_size: int,
                 stride: int) -> Module:
    """Factory: ``kind`` is 'overlapped' or 'non_overlapped'."""
    if kind == "overlapped":
        return OverlappedPatchEmbedding(in_channels, out_channels, patch_size, stride)
    if kind == "non_overlapped":
        return NonOverlappedPatchMerging(in_channels, out_channels, stride)
    raise ValueError(f"unknown patch merging kind {kind!r}")
