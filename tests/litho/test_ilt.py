"""Differentiable ILT path: forward identity, gradient consistency
against the finite-difference oracle, and the gradient OPC loop.

The gradient-vs-perturbation agreement test is the anchor that lets the
gradient optimizer replace the perturbation path with confidence: the
autograd mask-bias gradient must match a central-difference estimate of
the same loss to high precision.
"""

import io

import numpy as np
import pytest

from repro.config import GridConfig, LithoConfig
from repro.litho import ilt
from repro.litho.exposure import initial_photoacid
from repro.litho.mask import generate_clip, rasterize
from repro.litho.opc import calibrate_mask_bias
from repro.litho.optics import aerial_image_stack
from repro.litho.profile import contact_cds, development_arrival
from repro.tensor import Tensor
import repro.tensor as T

GRID = GridConfig(size_um=0.8, nx=32, ny=32, nz=2)
CONFIG = LithoConfig(grid=GRID)


@pytest.fixture(scope="module")
def clip():
    return generate_clip(3, grid=GRID, edge_margin_nm=100.0)


@pytest.fixture(scope="module")
def backend():
    return ilt.GaussianPEBBackend(CONFIG)


@pytest.fixture(scope="module")
def opc(clip, backend):
    return ilt.GradientOPC(clip, CONFIG, backend)


class TestForwardIdentity:
    def test_rasterize_t_bitwise_at_zero_bias(self, clip):
        k = len(clip.contacts)
        zero = Tensor(np.zeros(k, dtype=np.float64))
        pattern = ilt.rasterize_t(clip.contacts, zero, zero, GRID)
        assert np.array_equal(pattern.data, clip.pattern)

    def test_rasterize_t_bitwise_at_fixed_bias(self, clip):
        from dataclasses import replace as dc_replace

        k = len(clip.contacts)
        rng = np.random.default_rng(0)
        bias_x = rng.uniform(-20.0, 20.0, k)
        bias_y = rng.uniform(-20.0, 20.0, k)
        resized = [
            dc_replace(c, width_nm=max(c.width_nm + bx, 10.0),
                       height_nm=max(c.height_nm + by, 10.0))
            for c, bx, by in zip(clip.contacts, bias_x, bias_y)
        ]
        expected = rasterize(resized, GRID)
        pattern = ilt.rasterize_t(clip.contacts, Tensor(bias_x),
                                  Tensor(bias_y), GRID)
        assert np.array_equal(pattern.data, expected)

    def test_aerial_image_t_bitwise(self, clip):
        tensor_out = ilt.aerial_image_t(Tensor(clip.pattern), GRID,
                                        CONFIG.optics)
        numpy_out = aerial_image_stack(clip.pattern, GRID, CONFIG.optics)
        assert np.array_equal(tensor_out.data, numpy_out)

    def test_photoacid_t_bitwise(self, clip):
        aerial = aerial_image_stack(clip.pattern, GRID, CONFIG.optics)
        expected = initial_photoacid(aerial, CONFIG.exposure)
        got = ilt.photoacid_t(Tensor(aerial), CONFIG.exposure)
        assert np.array_equal(got.data, expected)

    def test_label_to_inhibitor_t_bitwise(self):
        from repro.core.label import label_to_inhibitor

        rng = np.random.default_rng(1)
        label = rng.normal(size=(2, 8, 8))
        expected = label_to_inhibitor(label, 0.9)
        got = ilt.label_to_inhibitor_t(Tensor(label), 0.9)
        assert np.array_equal(got.data, expected)


class TestAerialAdjoint:
    def test_vjp_matches_central_difference(self, clip):
        """The hand-derived Abbe adjoint against a directional FD probe."""
        rng = np.random.default_rng(2)
        weights = rng.random((GRID.nz, GRID.ny, GRID.nx))
        direction = rng.random((GRID.ny, GRID.nx))
        pattern = Tensor(clip.pattern.copy(), requires_grad=True)
        out = ilt.aerial_image_t(pattern, GRID, CONFIG.optics)
        T.sum_(out * weights).backward()

        def objective(p):
            return float(np.sum(
                aerial_image_stack(p, GRID, CONFIG.optics) * weights))

        eps = 1e-6
        fd = (objective(clip.pattern + eps * direction)
              - objective(clip.pattern - eps * direction)) / (2.0 * eps)
        analytic = float(np.sum(pattern.grad * direction))
        assert analytic == pytest.approx(fd, rel=1e-6)


class TestGradientVsPerturbation:
    def test_mask_bias_gradient_matches_finite_difference(self, clip, opc):
        """Satellite 1: the autograd mask-bias gradient agrees with the
        central-difference (perturbation) oracle it replaces."""
        k = len(clip.contacts)
        rng = np.random.default_rng(7)
        bias_x = rng.uniform(-5.0, 5.0, k)
        bias_y = rng.uniform(-5.0, 5.0, k)
        bias_x_t = Tensor(bias_x.copy(), requires_grad=True)
        bias_y_t = Tensor(bias_y.copy(), requires_grad=True)
        loss = opc.loss(bias_x_t, bias_y_t, opc.targets_x, opc.targets_y)
        loss.backward()
        autograd = np.concatenate([bias_x_t.grad, bias_y_t.grad])
        finite = ilt.finite_difference_bias_gradient(
            opc, bias_x, bias_y, opc.targets_x, opc.targets_y, eps_nm=1e-3)
        np.testing.assert_allclose(autograd, finite, rtol=1e-5, atol=1e-7)


class TestSoftMetrology:
    def test_soft_cds_track_true_cds(self, clip, backend):
        """The sigmoid CD tracks the Eikonal CD to within a small offset
        wherever the contact prints."""
        aerial = aerial_image_stack(clip.pattern, GRID, CONFIG.optics)
        acid = initial_photoacid(aerial, CONFIG.exposure)
        inhibitor = backend.inhibitor(acid)
        soft_x, soft_y = ilt.soft_contact_cds(
            Tensor(inhibitor), clip.contacts, GRID, CONFIG.develop)
        arrival = development_arrival(inhibitor, GRID, CONFIG.develop)
        true_cds = contact_cds(arrival, clip.contacts, GRID, CONFIG.develop)
        for soft, true in ((soft_x.data, true_cds["x"]),
                           (soft_y.data, true_cds["y"])):
            opened = true > 0.0
            assert opened.any()
            assert np.all(np.abs(soft[opened] - true[opened]) < 20.0)


class TestGradientOPC:
    def test_reduces_per_axis_rms(self, clip, backend):
        opc = ilt.GradientOPC(clip, CONFIG, backend)
        state = opc.run()
        result, state = opc.finalize(state)
        assert result.iterations == opc.opt.iterations
        assert result.forward_solves == opc.opt.iterations + 1
        assert result.final_rms_nm < result.initial_rms_nm / 2.0

    def test_beats_calibrate_on_per_axis_rms(self, clip, backend):
        """The acceptance-criterion comparison in miniature: lower
        per-axis CD-RMSE than the proportional baseline at a fraction of
        the forward solves."""
        opc = ilt.GradientOPC(clip, CONFIG, backend)
        result, _ = opc.finalize(opc.run())
        baseline = calibrate_mask_bias(clip, CONFIG, backend, iterations=20)
        targets_x = opc.targets_x
        targets_y = opc.targets_y
        pattern = rasterize(baseline.clip.contacts, GRID)
        aerial = aerial_image_stack(pattern, GRID, CONFIG.optics)
        acid = initial_photoacid(aerial, CONFIG.exposure)
        arrival = development_arrival(backend.inhibitor(acid), GRID,
                                      CONFIG.develop)
        cds = contact_cds(arrival, clip.contacts, GRID, CONFIG.develop)
        err_x = np.where(cds["x"] > 0, cds["x"] - targets_x, -targets_x)
        err_y = np.where(cds["y"] > 0, cds["y"] - targets_y, -targets_y)
        baseline_rms = float(np.sqrt(np.mean(
            np.concatenate([err_x, err_y]) ** 2)))
        assert result.final_rms_nm < baseline_rms
        assert result.forward_solves < (20 + 1)

    def test_step_is_bitwise_deterministic_through_checkpoint(
            self, clip, backend):
        """The property the jobs executor relies on: serializing the
        state mid-run and resuming produces bitwise-identical results."""
        opc = ilt.GradientOPC(clip, CONFIG, backend)
        straight = opc.init_state()
        for _ in range(6):
            straight, _ = opc.step(straight)

        resumed = opc.init_state()
        for _ in range(3):
            resumed, _ = opc.step(resumed)
        buffer = io.BytesIO()
        np.savez(buffer, **resumed)
        buffer.seek(0)
        with np.load(buffer) as archive:
            resumed = {key: archive[key] for key in archive.files}
        fresh_opc = ilt.GradientOPC(clip, CONFIG, backend)
        for _ in range(3):
            resumed, _ = fresh_opc.step(resumed)

        assert set(straight) == set(resumed)
        for key in straight:
            assert np.array_equal(straight[key], resumed[key]), key

    def test_progress_payload(self, clip, backend):
        opc = ilt.GradientOPC(clip, CONFIG, backend)
        _, progress = opc.step(opc.init_state())
        assert progress["iteration"] == 1
        assert progress["forward_solves"] == 1
        assert progress["cd_rmse_nm"] > 0.0
        assert 0.0 <= progress["opened_fraction"] <= 1.0

    def test_adam_mode_runs(self, clip, backend):
        opt = ilt.GradientOPCConfig(iterations=2, optimizer="adam")
        opc = ilt.GradientOPC(clip, CONFIG, backend, opt)
        state = opc.run()
        assert int(state["iteration"]) == 2

    def test_unknown_optimizer_rejected(self, clip, backend):
        opt = ilt.GradientOPCConfig(optimizer="sgd")
        opc = ilt.GradientOPC(clip, CONFIG, backend, opt)
        with pytest.raises(ValueError, match="unknown optimizer"):
            opc.step(opc.init_state())


class TestGaussianBackend:
    def test_numpy_and_tensor_paths_identical(self, clip, backend):
        aerial = aerial_image_stack(clip.pattern, GRID, CONFIG.optics)
        acid = initial_photoacid(aerial, CONFIG.exposure)
        with T.no_grad():
            tensor_path = backend.inhibitor_t(Tensor(acid)).data
        assert np.array_equal(backend.inhibitor(acid), tensor_path)

    def test_inhibitor_in_unit_range(self, clip, backend):
        aerial = aerial_image_stack(clip.pattern, GRID, CONFIG.optics)
        acid = initial_photoacid(aerial, CONFIG.exposure)
        inhibitor = backend.inhibitor(acid)
        assert inhibitor.min() >= 0.0
        assert inhibitor.max() <= 1.0


class TestSurrogateBackend:
    def test_matches_predict_inhibitor_bitwise(self):
        from repro import nn
        from repro.experiments import build_method

        nn.init.seed(0)
        small = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
        model, _ = build_method("SDM-PEB", small)
        model.set_output_stats(0.5, 1.0)
        backend = ilt.DifferentiableSurrogateBackend(model)
        acid = np.random.default_rng(3).random(small.shape)
        with T.no_grad():
            tensor_path = backend.inhibitor_t(Tensor(acid)).data
        assert np.array_equal(backend.inhibitor(acid), tensor_path)

    def test_gradients_flow_through_surrogate(self):
        from repro import nn
        from repro.experiments import build_method

        nn.init.seed(0)
        small = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
        model, _ = build_method("SDM-PEB", small)
        model.set_output_stats(0.5, 1.0)
        backend = ilt.DifferentiableSurrogateBackend(model)
        acid = Tensor(np.random.default_rng(4).random(small.shape),
                      requires_grad=True)
        out = backend.inhibitor_t(acid)
        T.mean(out).backward()
        assert acid.grad is not None
        assert np.abs(acid.grad).max() > 0.0
