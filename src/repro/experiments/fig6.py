"""Fig. 6: value-distribution histograms of photoacid and inhibitor.

The paper motivates the PEB focal loss with the extreme imbalance of
the inhibitor distribution (orders of magnitude between bins on a log
axis) versus the broad photoacid distribution.  This experiment
computes both histograms over a generated dataset and renders them as
text bars plus machine-readable frequencies.

Run:  python -m repro.experiments.fig6 [--quick]
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_dataset
from .harness import ExperimentSettings

BINS = np.linspace(0.0, 1.0, 11)
BIN_LABELS = [f"[{lo:.1f}, {hi:.1f})" for lo, hi in zip(BINS[:-1], BINS[1:])]


def histogram(values: np.ndarray) -> np.ndarray:
    """Normalized frequency per Fig. 6 bin."""
    counts, _ = np.histogram(np.clip(values, 0.0, 1.0 - 1e-12), bins=BINS)
    return counts / counts.sum()


def imbalance_ratio(frequencies: np.ndarray) -> float:
    """Ratio between most and least populated (non-empty) bin."""
    positive = frequencies[frequencies > 0]
    return float(positive.max() / positive.min())


def run(settings: ExperimentSettings | None = None) -> dict[str, np.ndarray]:
    """Histogram photoacid and inhibitor values across the dataset."""
    settings = settings if settings is not None else ExperimentSettings()
    dataset = generate_dataset(settings.num_clips, settings.config,
                               base_seed=settings.base_seed,
                               time_step_s=settings.time_step_s,
                               cache_dir=settings.cache_dir)
    return {
        "photoacid": histogram(dataset.inputs()),
        "inhibitor": histogram(dataset.inhibitors()),
    }


def format_figure(frequencies: dict[str, np.ndarray]) -> str:
    """ASCII rendering: linear bars for acid, log-annotated for inhibitor."""
    lines = []
    for name, freq in frequencies.items():
        lines.append(f"\n(Fig. 6) {name} value distribution "
                     f"(imbalance ratio {imbalance_ratio(freq):.1e}):")
        for label, value in zip(BIN_LABELS, freq):
            bar = "#" * int(round(60 * value / max(freq.max(), 1e-12)))
            lines.append(f"  {label:>11}  {value:9.2e}  {bar}")
    return "\n".join(lines)


def main(argv=None) -> dict[str, np.ndarray]:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    frequencies = run(settings)
    print(format_figure(frequencies))
    return frequencies


if __name__ == "__main__":
    main()
