"""Compiled inference plans: capture, compile, replay, identity, safety.

The contract under test is strict bitwise identity: for any supported
``no_grad`` forward, replaying the compiled plan produces exactly the
bytes the autograd tape produces — across batch shapes, across
consecutive replays, and after other inputs have passed through the
same arena.  Anything the compiler cannot prove aborts capture with
:class:`PlanCaptureError` instead of guessing.
"""

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.tensor import (
    PlanCaptureError, PlanExecutionError, Tensor, capture, einsum, no_grad,
    where,
)
from repro.tensor import functional as F


def rng(seed=0):
    return np.random.default_rng(seed)


def capture_and_check(fn, *examples, label=None):
    """Capture ``fn`` and assert bitwise identity on a fresh input set."""
    with no_grad():
        plan = capture(fn, *examples, label=label)
        fresh = [rng(1234).random(e.shape) for e in examples]
        expected = fn(*[Tensor(f) for f in fresh]).numpy()
        produced = plan.run(*fresh)
    assert produced.dtype == expected.dtype
    assert np.array_equal(produced, expected)
    return plan


class TestElementwiseAndShape:
    def test_elementwise_chain_bitwise(self):
        def fn(t):
            return ((t * 2.0 + 1.0).tanh() - t.sigmoid()).exp() / (t + 3.0)

        plan = capture_and_check(fn, rng().random((4, 5)))
        # adjacent dying-input elementwise steps write in place
        assert plan.stats()["fused_steps"] > 0

    def test_shape_ops_bitwise(self):
        def fn(t):
            a = t.reshape(2, 12).transpose((1, 0))
            b = a[3:9].reshape(2, 3, 2).swapaxes(0, 2)
            return (b + b.flip(1)).sum(axis=0)

        capture_and_check(fn, rng(3).random((2, 3, 4)))

    def test_reductions_and_softmax_bitwise(self):
        def fn(t):
            s = F.softmax(t, axis=-1) + F.log_softmax(t, axis=1)
            return s.mean(axis=0) + t.max(axis=0) + t.sum()

        capture_and_check(fn, rng(4).random((3, 4, 5)))

    def test_matmul_einsum_bitwise(self):
        w = rng(5).standard_normal((6, 4))

        def fn(t):
            projected = t @ Tensor(w)
            return einsum("bi,bj->ij", projected, projected)

        capture_and_check(fn, rng(6).random((8, 6)))

    def test_constant_folding_prunes_weight_only_steps(self):
        w = Tensor(rng(7).random((3, 3)))

        def fn(t):
            static = (w * 2.0).exp()  # no input dependency: folds away
            return t @ static

        plan = capture_and_check(fn, rng(8).random((5, 3)))
        assert plan.stats()["folded_steps"] > 0


class TestCaptureFailure:
    def test_uninstrumented_op_aborts_capture(self):
        def fn(t):
            data = np.sort(t.data, axis=-1)
            return Tensor.from_op(data, [(t, lambda g: g)], op="sort")

        with no_grad(), pytest.raises(PlanCaptureError):
            capture(fn, rng(9).random((2, 3)))

    def test_tensor_condition_where_aborts_capture(self):
        cond = Tensor((rng(10).random((2, 3)) > 0.5).astype(np.float64))

        def fn(t):
            return where(cond, t, t * 2.0)

        with no_grad(), pytest.raises(PlanCaptureError):
            capture(fn, rng(11).random((2, 3)))

    def test_baked_data_dependent_values_fail_validation(self):
        # an ndarray condition computed from the traced input would be
        # frozen into the plan; the second-input validation replay must
        # reject the capture rather than serve stale control flow
        def fn(t):
            mask = (t.data > 0.5).astype(np.float64)
            return t * Tensor(mask)

        with no_grad(), pytest.raises(PlanCaptureError):
            capture(fn, rng(12).random((4, 4)))


class TestReplayContract:
    def test_shape_mismatch_raises_execution_error(self):
        plan = capture_and_check(lambda t: t * 2.0 + 1.0, rng(13).random((2, 3)))
        with pytest.raises(PlanExecutionError):
            plan.run(rng(14).random((3, 3)))
        with pytest.raises(PlanExecutionError):
            plan.run(rng(14).random((2, 3)).astype(np.float32))

    def test_consecutive_replays_do_not_alias(self):
        plan = capture_and_check(lambda t: (t + 1.0).tanh(), rng(15).random((3, 3)))
        a_in, b_in = rng(16).random((3, 3)), rng(17).random((3, 3))
        with no_grad():
            out_a = plan.run(a_in)
            snapshot = out_a.copy()
            out_b = plan.run(b_in)
        # the second replay reuses the arena; the first result must be a
        # detached copy, not a view into recycled storage
        assert np.array_equal(out_a, snapshot)
        assert not np.shares_memory(out_a, out_b)

    def test_replay_does_not_mutate_input(self):
        plan = capture_and_check(lambda t: t * -1.0, rng(18).random((2, 2)))
        x = rng(19).random((2, 2))
        keep = x.copy()
        with no_grad():
            plan.run(x)
        assert np.array_equal(x, keep)


GRID = GridConfig(size_um=1.0, nx=8, ny=8, nz=2)


@pytest.fixture(scope="module")
def sdmpeb_model():
    nn.init.seed(0)
    model, _ = build_method("SDM-PEB", GRID)
    model.set_output_stats(0.5, 1.0)
    model.eval()
    return model


class TestFullModelIdentity:
    @pytest.mark.parametrize("batch", [1, 2, 4, 8])
    def test_sdmpeb_plan_matches_tape_bitwise(self, sdmpeb_model, batch):
        shape = (batch, 1) + GRID.shape
        x0 = rng(20 + batch).random(shape)
        x1 = rng(120 + batch).random(shape)
        with no_grad():
            plan = capture(lambda t: sdmpeb_model(t), x0, label=f"sdmpeb-b{batch}")
            for x in (x0, x1):
                expected = sdmpeb_model(Tensor(x)).numpy()
                assert np.array_equal(plan.run(x), expected)

    def test_sdmpeb_arena_reuse_is_safe(self, sdmpeb_model):
        shape = (2, 1) + GRID.shape
        x0, x1 = rng(30).random(shape), rng(31).random(shape)
        with no_grad():
            plan = capture(lambda t: sdmpeb_model(t), x0)
            first = plan.run(x0)
            snapshot = first.copy()
            plan.run(x1)
        assert np.array_equal(first, snapshot)

    def test_sdmpeb_compile_stats(self, sdmpeb_model):
        shape = (1, 1) + GRID.shape
        with no_grad():
            plan = capture(lambda t: sdmpeb_model(t), rng(32).random(shape))
        stats = plan.stats()
        assert stats["compiled_steps"] < stats["captured_steps"]
        assert stats["fused_steps"] > 0
        assert stats["arena_bytes"] > 0
        assert stats["replays"] >= 2  # the validation replays are counted
