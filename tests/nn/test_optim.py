"""Optimizer and scheduler behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_param(start=5.0):
    return Parameter(np.array([start]))


def loss_of(p):
    return ((p - 3.0) ** 2.0).sum()


class TestSGD:
    def test_single_step(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        loss_of(p).backward()
        opt.step()
        # grad = 2*(5-3) = 4, p <- 5 - 0.4
        assert np.allclose(p.data, [4.6])

    def test_converges(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert np.allclose(p.data, [3.0], atol=1e-4)

    def test_momentum_accelerates(self):
        plain, momentum = quadratic_param(), quadratic_param()
        opt_a = nn.SGD([plain], lr=0.01)
        opt_b = nn.SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            for p, opt in [(plain, opt_a), (momentum, opt_b)]:
                opt.zero_grad()
                loss_of(p).backward()
                opt.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = nn.SGD([p], lr=0.1, weight_decay=0.5)
        (p * 0.0).sum().backward()
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = quadratic_param()
        nn.SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [5.0])

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss_of(p).backward()
            opt.step()
        assert np.allclose(p.data, [3.0], atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        p = quadratic_param()
        opt = nn.Adam([p], lr=0.1)
        loss_of(p).backward()
        opt.step()
        # Adam's bias-corrected first step is ~lr in magnitude.
        assert np.isclose(abs(p.data[0] - 5.0), 0.1, rtol=1e-4)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        norm = nn.clip_grad_norm([p], 1.0)
        assert np.isclose(norm, 0.5) and np.allclose(p.grad, [0.5])

    def test_clips_above_threshold(self):
        p = Parameter(np.array([1.0, 1.0]))
        p.grad = np.array([3.0, 4.0])
        norm = nn.clip_grad_norm([p], 1.0)
        assert np.isclose(norm, 5.0)
        assert np.isclose(np.linalg.norm(p.grad), 1.0)


class TestSchedulers:
    def test_step_decay_matches_paper_schedule(self):
        p = quadratic_param()
        opt = nn.SGD([p], lr=0.03)
        sched = nn.StepDecay(opt, step_size=100, gamma=0.7)
        for _ in range(250):
            sched.step()
        assert np.isclose(opt.lr, 0.03 * 0.7 ** 2)

    def test_step_decay_lr_at(self):
        p = quadratic_param()
        sched = nn.StepDecay(nn.SGD([p], lr=1.0), step_size=10, gamma=0.5)
        assert np.isclose(sched.lr_at(0), 1.0)
        assert np.isclose(sched.lr_at(10), 0.5)
        assert np.isclose(sched.lr_at(25), 0.25)

    def test_step_decay_invalid_step_size(self):
        p = quadratic_param()
        with pytest.raises(ValueError):
            nn.StepDecay(nn.SGD([p], lr=1.0), step_size=0, gamma=0.5)

    def test_cosine_decay_endpoints(self):
        p = quadratic_param()
        sched = nn.CosineDecay(nn.SGD([p], lr=1.0), total_epochs=10, min_lr=0.1)
        assert np.isclose(sched.lr_at(0), 1.0)
        assert np.isclose(sched.lr_at(10), 0.1)
        assert sched.lr_at(5) < 1.0
