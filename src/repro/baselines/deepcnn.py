"""DeepCNN baseline (Watanabe et al. [41], with residual connections).

A plain 3D convolutional network: stem, residual conv blocks, head.
The paper's comparison "customized [41] with a residual connection for
adaption to our problem"; this is that architecture at reproduction
scale.  Fast but purely local — it cannot model long-range acid
diffusion, which is exactly the failure mode Table II exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tensor import functional as F
from repro.nn.conv import Conv3d
from repro.nn.module import Module, ModuleList
from .common import SurrogateBase


@dataclass(frozen=True)
class DeepCNNConfig:
    width: int = 16
    num_blocks: int = 3
    kernel_size: int = 3


class ResidualBlock(Module):
    """conv-ReLU-conv with identity skip."""

    def __init__(self, channels: int, kernel_size: int = 3):
        super().__init__()
        pad = kernel_size // 2
        self.conv1 = Conv3d(channels, channels, kernel_size, padding=pad)
        self.conv2 = Conv3d(channels, channels, kernel_size, padding=pad)

    def forward(self, x):
        return x + self.conv2(F.relu(self.conv1(x)))


class DeepCNN(SurrogateBase):
    """Residual 3D CNN surrogate."""

    def __init__(self, config: DeepCNNConfig | None = None):
        super().__init__()
        self.config = config if config is not None else DeepCNNConfig()
        cfg = self.config
        pad = cfg.kernel_size // 2
        self.stem = Conv3d(1, cfg.width, cfg.kernel_size, padding=pad)
        self.blocks = ModuleList([ResidualBlock(cfg.width, cfg.kernel_size)
                                  for _ in range(cfg.num_blocks)])
        self.head = Conv3d(cfg.width, 1, cfg.kernel_size, padding=pad)

    def body(self, x):
        x = F.relu(self.stem(x))
        for block in self.blocks:
            x = block(x)
        return self.head(x)
