"""Eikonal solvers: analytic cases and cross-solver agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.litho import eikonal


class TestGodunovUpdate:
    def test_single_axis(self):
        value = eikonal.godunov_update([(1.0, 2.0), (np.inf, 1.0), (np.inf, 1.0)], 3.0)
        assert np.isclose(value, 1.0 + 3.0 * 2.0)

    def test_two_axes_symmetric(self):
        value = eikonal.godunov_update([(0.0, 1.0), (0.0, 1.0), (np.inf, 1.0)], 1.0)
        assert np.isclose(value, np.sqrt(0.5))

    def test_all_infinite(self):
        assert eikonal.godunov_update([(np.inf, 1.0)] * 3, 1.0) == np.inf

    def test_causality(self):
        """Result never below the smallest upwind neighbour."""
        value = eikonal.godunov_update([(2.0, 1.0), (2.5, 1.0), (9.0, 1.0)], 0.5)
        assert value > 2.0


class TestConstantSlowness:
    def test_planar_front(self):
        """Uniform slowness: arrival is depth * slowness (planar front)."""
        slowness = np.full((6, 5, 5), 2.0)
        spacing = (3.0, 1.0, 1.0)
        times = eikonal.fast_marching(slowness, spacing)
        for k in range(6):
            assert np.allclose(times[k], 2.0 * 3.0 * (k + 1))

    def test_fim_matches_analytic(self):
        slowness = np.full((5, 4, 4), 0.7)
        times = eikonal.fast_iterative(slowness, (2.0, 1.0, 1.0))
        expected = 0.7 * 2.0 * (np.arange(5) + 1)
        assert np.allclose(times, expected[:, None, None])

    def test_fsm_matches_analytic(self):
        slowness = np.full((4, 3, 3), 1.5)
        times = eikonal.fast_sweeping(slowness, (1.0, 1.0, 1.0))
        expected = 1.5 * (np.arange(4) + 1)
        assert np.allclose(times, expected[:, None, None])


class TestLayeredMedium:
    def test_slow_layer_delays_arrival(self):
        slowness = np.ones((4, 4, 4))
        slowness[2] = 10.0
        times = eikonal.fast_marching(slowness, (1.0, 1.0, 1.0))
        assert np.allclose(times[3], 1.0 + 1.0 + 10.0 + 1.0)

    def test_fast_channel_wins(self):
        """A fast vertical channel lets the front undercut a slow region."""
        slowness = np.full((6, 9, 9), 5.0)
        slowness[:, 4, 4] = 0.1  # fast channel down the middle
        times = eikonal.fast_marching(slowness, (1.0, 1.0, 1.0))
        assert times[5, 4, 4] < times[5, 0, 0] / 3.0
        # neighbours of the channel benefit from lateral spill
        assert times[5, 4, 5] < times[5, 0, 0]


class TestSolverAgreement:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_property_fmm_fim_fsm_agree(self, seed):
        rng = np.random.default_rng(seed)
        slowness = np.exp(rng.uniform(-1.0, 2.0, size=(4, 6, 6)))
        spacing = (2.0, 1.0, 1.5)
        fmm = eikonal.fast_marching(slowness, spacing)
        fim = eikonal.fast_iterative(slowness, spacing)
        fsm = eikonal.fast_sweeping(slowness, spacing, max_iterations=30)
        assert np.allclose(fmm, fim, rtol=1e-6, atol=1e-8)
        assert np.allclose(fmm, fsm, rtol=1e-6, atol=1e-8)

    def test_high_contrast_agreement(self):
        rng = np.random.default_rng(9)
        slowness = np.where(rng.random((5, 8, 8)) > 0.5, 100.0, 0.01)
        fmm = eikonal.fast_marching(slowness, (1.0, 1.0, 1.0))
        fim = eikonal.fast_iterative(slowness, (1.0, 1.0, 1.0))
        assert np.allclose(fmm, fim, rtol=1e-6)


class TestValidation:
    @pytest.mark.parametrize("solver", [eikonal.fast_marching, eikonal.fast_iterative,
                                        eikonal.fast_sweeping])
    def test_nonpositive_slowness_raises(self, solver):
        with pytest.raises(ValueError):
            solver(np.zeros((2, 2, 2)), (1.0, 1.0, 1.0))

    def test_monotone_in_depth_for_uniform_lateral(self):
        rng = np.random.default_rng(3)
        column = np.exp(rng.uniform(0.0, 1.0, size=4))
        slowness = np.tile(column[:, None, None], (1, 5, 5))
        times = eikonal.fast_iterative(slowness, (1.0, 1.0, 1.0))
        assert np.all(np.diff(times, axis=0) > 0.0)
