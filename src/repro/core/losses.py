"""Training objectives of SDM-PEB (Section III-D).

Three terms combine into the total loss (Eq. 22):

* :func:`max_squared_error` — DeePEB's MaxSE (Eq. 16), the single worst
  voxel error;
* :class:`PEBFocalLoss` — Eq. 17, an error-modulated squared loss that
  up-weights hard voxels to counter the extreme value imbalance of the
  inhibitor distribution (Fig. 6);
* :class:`DepthDivergenceRegularization` — Eqs. 18-21, a KL divergence
  between softmax-normalized layer-to-layer forward-difference maps,
  aligning the predicted depthwise evolution with the ground truth.

Predictions/targets are (B, D, H, W) tensors in label (Y) space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tensor as T
from repro.tensor import Tensor, ensure_tensor
from repro.tensor import functional as F


def max_squared_error(prediction, target) -> Tensor:
    """MaxSE (Eq. 16): the largest squared voxel error."""
    prediction, target = ensure_tensor(prediction), ensure_tensor(target)
    diff = prediction - target
    return (diff * diff).max()


class PEBFocalLoss:
    """PEB focal loss (Eq. 17): ``sum |e|^gamma * e^2`` over voxels.

    Parameters
    ----------
    gamma:
        Focusing parameter; the paper sets γ = 1.
    reduction:
        ``"sum"`` reproduces Eq. 17 literally; ``"mean"`` divides by the
        voxel count, which keeps gradient magnitudes independent of the
        (scaled-down) grid size and is the trainer default.
    """

    def __init__(self, gamma: float = 1.0, reduction: str = "mean"):
        if reduction not in ("sum", "mean"):
            raise ValueError(f"unknown reduction {reduction!r}")
        if gamma < 0:
            raise ValueError("gamma must be non-negative")
        self.gamma = gamma
        self.reduction = reduction

    def __call__(self, prediction, target) -> Tensor:
        prediction, target = ensure_tensor(prediction), ensure_tensor(target)
        diff = prediction - target
        weight = T.abs_(diff) ** self.gamma if self.gamma != 0 else None
        squared = diff * diff
        modulated = squared * weight if weight is not None else squared
        return modulated.sum() if self.reduction == "sum" else modulated.mean()


class DepthDivergenceRegularization:
    """Differential depth divergence regularization (Eqs. 18-21).

    Layer-wise forward differences ΔY_d = Y_{d+1} - Y_d are converted to
    spatial probability maps by a temperature-τ softmax over (H, W), and
    the loss is the KL divergence of ground truth from prediction,
    summed over layers and averaged over the batch.
    """

    def __init__(self, temperature: float = 0.1):
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def _difference_probabilities(self, volume) -> Tensor:
        volume = ensure_tensor(volume)
        delta = volume[:, 1:] - volume[:, :-1]           # (B, D-1, H, W)
        b, d = delta.shape[0], delta.shape[1]
        flat = T.reshape(delta, (b, d, -1)) * (1.0 / self.temperature)
        return F.softmax(flat, axis=-1)

    def __call__(self, prediction, target) -> Tensor:
        prediction, target = ensure_tensor(prediction), ensure_tensor(target)
        if prediction.shape != target.shape:
            raise ValueError("prediction and target shapes must match")
        if prediction.shape[1] < 2:
            return Tensor(np.zeros(()))
        p = self._difference_probabilities(prediction)
        with_floor = 1e-12
        q = self._difference_probabilities(target)
        ratio = T.log(p + with_floor) - T.log(q + with_floor)
        kl = (p * ratio).sum(axis=-1)                    # (B, D-1)
        return kl.sum(axis=1).mean()


@dataclass
class LossConfig:
    """Weights and hyperparameters of the combined objective (Eq. 22)."""

    alpha: float = 1.0      # PEB focal loss weight
    beta: float = 0.1       # depth divergence weight
    gamma: float = 1.0      # focal focusing parameter
    temperature: float = 0.1
    focal_reduction: str = "mean"
    use_maxse: bool = True
    use_focal: bool = True
    use_divergence: bool = True


class SDMPEBLoss:
    """The combined objective ``L = MaxSE + α·FL + β·Div`` with ablations.

    Setting ``use_focal`` / ``use_divergence`` to False reproduces the
    'w/o. Focal Loss' / 'w/o. Regularization' rows of Table III.
    """

    def __init__(self, config: LossConfig | None = None):
        self.config = config if config is not None else LossConfig()
        self._focal = PEBFocalLoss(self.config.gamma, self.config.focal_reduction)
        self._divergence = DepthDivergenceRegularization(self.config.temperature)

    def __call__(self, prediction, target) -> Tensor:
        components = self.components(prediction, target)
        return components["total"]

    def components(self, prediction, target) -> dict[str, Tensor]:
        """All loss terms plus the weighted total, for logging."""
        cfg = self.config
        terms: dict[str, Tensor] = {}
        total = None

        def accumulate(value):
            nonlocal total
            total = value if total is None else total + value

        if cfg.use_maxse:
            terms["maxse"] = max_squared_error(prediction, target)
            accumulate(terms["maxse"])
        if cfg.use_focal:
            terms["focal"] = self._focal(prediction, target)
            accumulate(terms["focal"] * cfg.alpha)
        if cfg.use_divergence:
            terms["divergence"] = self._divergence(prediction, target)
            accumulate(terms["divergence"] * cfg.beta)
        if total is None:
            raise ValueError("at least one loss term must be enabled")
        terms["total"] = total
        return terms
