"""Tests for the runtime lock sanitizer (repro.runtime.sync).

The wrappers must behave exactly like the plain primitives they stand in
for, and the two seeded failure modes the acceptance criteria name — a
two-lock order inversion and a fork with a held lock — must be detected
with structured reports naming the offending sites.
"""

import os
import threading

import pytest

from repro.obs import metrics_snapshot, reset_metrics
from repro.runtime import fork_available, parallel_map
from repro.runtime.sync import (
    ForkSafetyError, LockOrderError, SanitizedLock, check_fork_safety,
    held_locks, lock_sanitizer_enabled, make_condition, make_lock, make_rlock,
    reset_sync_state, sanitize_locks, sync_report, sync_violations,
)


@pytest.fixture(autouse=True)
def _clean_state():
    reset_sync_state()
    reset_metrics()
    yield
    reset_sync_state()
    reset_metrics()


class TestFactories:
    def test_disabled_factories_return_plain_primitives(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with sanitize_locks(enabled=False):
            assert not lock_sanitizer_enabled()
            assert isinstance(make_lock("x"), type(threading.Lock()))
            assert isinstance(make_rlock("x"), type(threading.RLock()))
            assert isinstance(make_condition("x"), threading.Condition)

    def test_env_variable_activates(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert lock_sanitizer_enabled()
        assert isinstance(make_lock("x"), SanitizedLock)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not lock_sanitizer_enabled()

    def test_enabled_factories_instrument(self):
        with sanitize_locks():
            assert isinstance(make_lock("x"), SanitizedLock)
            lock = make_rlock("r")
            assert isinstance(lock, SanitizedLock)
            condition = make_condition("c")
            assert isinstance(condition, threading.Condition)
            assert isinstance(condition._lock, SanitizedLock)


class TestLockSemantics:
    def test_wrapper_is_a_working_mutex(self):
        with sanitize_locks():
            lock = make_lock("m")
            counts = [0]

            def bump():
                for _ in range(200):
                    with lock:
                        counts[0] += 1

            threads = [threading.Thread(target=bump) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert counts[0] == 800
            assert not lock.locked()

    def test_nonblocking_acquire_reports_failure(self):
        with sanitize_locks():
            lock = make_lock("nb")
            lock.acquire()
            grabbed = []
            t = threading.Thread(target=lambda: grabbed.append(lock.acquire(False)))
            t.start()
            t.join()
            assert grabbed == [False]
            lock.release()

    def test_rlock_reentrancy(self):
        with sanitize_locks():
            lock = make_rlock("re")
            with lock:
                with lock:
                    assert held_locks() == ["re"]
            assert held_locks() == []

    def test_condition_wait_notify_over_shared_lock(self):
        with sanitize_locks():
            lock = make_lock("cv")
            ready = make_condition("cv", lock=lock)
            state = []

            def waiter():
                with ready:
                    while not state:
                        ready.wait(1.0)
                    state.append("seen")

            t = threading.Thread(target=waiter)
            t.start()
            with ready:
                state.append("set")
                ready.notify_all()
            t.join(2.0)
            assert not t.is_alive()
            assert state == ["set", "seen"]
            # wait() fully released the lock: nothing held afterwards
            assert held_locks() == []

    def test_held_locks_tracks_acquisition(self):
        with sanitize_locks():
            a, b = make_lock("a"), make_lock("b")
            with a:
                with b:
                    assert held_locks() == ["a", "b"]
            assert held_locks() == []


class TestOrderInversion:
    def test_seeded_two_lock_inversion_is_detected(self):
        with sanitize_locks():
            a, b = make_lock("alpha"), make_lock("beta")
            with a:
                with b:
                    pass
            with pytest.raises(LockOrderError) as excinfo:
                with b:
                    with a:
                        pass
            message = str(excinfo.value)
            assert "alpha" in message and "beta" in message
            # the structured report names both acquisition sites
            assert message.count("test_sync.py") == 2
            kinds = [v.kind for v in sync_violations()]
            assert kinds == ["lock-order"]

    def test_consistent_order_is_clean(self):
        with sanitize_locks():
            a, b = make_lock("one"), make_lock("two")
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert sync_violations() == []

    def test_transitive_inversion_is_detected(self):
        with sanitize_locks(raise_on_violation=False):
            a, b, c = make_lock("a3"), make_lock("b3"), make_lock("c3")
            with a:
                with b:
                    pass
            with b:
                with c:
                    pass
            with c:
                with a:
                    pass
            assert [v.kind for v in sync_violations()] == ["lock-order"]

    def test_report_only_mode_records_without_raising(self):
        with sanitize_locks(raise_on_violation=False):
            a, b = make_lock("ra"), make_lock("rb")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
            assert [v.kind for v in sync_violations()] == ["lock-order"]


class TestForkSafety:
    def test_fork_with_held_lock_is_detected(self):
        with sanitize_locks():
            lock = make_lock("forky")
            lock.acquire()
            try:
                with pytest.raises(ForkSafetyError) as excinfo:
                    check_fork_safety()
            finally:
                lock.release()
            assert "forky" in str(excinfo.value)
            assert [v.kind for v in sync_violations()] == ["fork-held-lock"]

    def test_parallel_map_refuses_dispatch_with_held_lock(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with sanitize_locks():
            lock = make_lock("dispatch")
            with lock:
                with pytest.raises(ForkSafetyError):
                    parallel_map(abs, [1, -2, 3], workers=2)
            # released: same dispatch goes through
            assert parallel_map(abs, [1, -2, 3], workers=2) == [1, 2, 3]

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="no os.fork")
    def test_at_fork_hook_records_held_lock(self):
        if not fork_available():
            pytest.skip("fork start method unavailable")
        with sanitize_locks(raise_on_violation=False):
            lock = make_lock("hooked")
            lock.acquire()
            pid = os.fork()
            if pid == 0:
                os._exit(0)
            os.waitpid(pid, 0)
            lock.release()
            assert "fork-held-lock" in [v.kind for v in sync_violations()]

    def test_other_thread_holding_lock_is_report_only(self):
        with sanitize_locks():
            lock = make_lock("elsewhere")
            entered = threading.Event()
            release = threading.Event()

            def holder():
                with lock:
                    entered.set()
                    release.wait(5.0)

            t = threading.Thread(target=holder, daemon=True)
            t.start()
            assert entered.wait(5.0)
            try:
                found = check_fork_safety()  # must not raise
            finally:
                release.set()
                t.join(5.0)
            assert "fork-held-lock-other" in [v.kind for v in found]

    def test_clean_state_reports_nothing(self):
        with sanitize_locks():
            make_lock("idle")
            assert check_fork_safety() == []


class TestMetricsAndReport:
    def test_contention_and_acquire_counters(self):
        with sanitize_locks():
            lock = make_lock("contended")
            taken = threading.Event()
            release = threading.Event()

            def holder():
                with lock:
                    taken.set()
                    release.wait(5.0)

            t = threading.Thread(target=holder)
            t.start()
            assert taken.wait(5.0)
            waiter = threading.Thread(target=lambda: lock.acquire() and lock.release())
            waiter.start()
            release.set()
            waiter.join(5.0)
            t.join(5.0)
            snapshot = metrics_snapshot()
            assert snapshot["sync.acquire.contended"]["value"] >= 2
            assert snapshot["sync.contention.contended"]["value"] >= 1
            assert snapshot["sync.wait.contended"]["count"] >= 1

    def test_sync_report_shape(self):
        with sanitize_locks():
            a, b = make_lock("ta"), make_lock("tb")
            with a:
                with b:
                    report = sync_report()
            assert report["enabled"]
            assert report["locks_created"] >= 2
            assert report["order_edges"] >= 1
            assert report["violations"] == []
