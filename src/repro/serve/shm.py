"""Shared-memory weight store for the multi-process serving backend.

A pooled server forks N batcher workers, and every one of them needs the
same checkpoint parameters.  Pickling the state dict into each worker
would copy the weights N times and make respawn proportional to model
size; instead the parent publishes the weights **once** into a
``multiprocessing.shared_memory`` segment and workers map it as
read-only float64 numpy views (zero copies after publish, and the
read-only flag turns any accidental in-place parameter write into a
loud ``ValueError`` instead of silent cross-worker corruption).

The segment is keyed by the registry's sha256 content-hash manifest:
``segment_name("sha256:<hex>")`` is deterministic, so publishing the
same checkpoint twice (two ``ServedModel``s over one registry entry, or
a respawned worker re-attaching) reuses the existing segment instead of
allocating a second copy.  A process-local refcount decides when the
segment is actually unlinked; ``release`` on the last reference removes
the ``/dev/shm`` entry, which the drain paths (normal close, SIGTERM)
and the leak tests both rely on.

Layout: parameters are packed back to back in sorted-name order, each
8-byte aligned (they are float64 by the registry's publish contract).
The :class:`ShmSpec` carrying ``(name, offset, shape, dtype)`` travels
to workers by pickle; the bytes travel through the kernel, not the
pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.obs import counter
from repro.runtime.sync import make_lock

__all__ = [
    "ShmSpec", "WeightStore", "segment_name", "publish_weights",
    "release_weights", "attach_views", "shm_stats", "live_segments",
]

#: every segment this module creates carries this prefix, so leak checks
#: and operators can enumerate them (``ls /dev/shm/repro-w-*``)
SEGMENT_PREFIX = "repro-w-"

#: parameter offsets are aligned to this many bytes (float64 width)
_ALIGN = 8


@dataclass(frozen=True)
class ShmSpec:
    """Everything a worker needs to map the weights (picklable)."""

    #: shared-memory segment name (the ``/dev/shm`` entry)
    name: str
    #: exact payload size in bytes (the kernel may round the segment up)
    nbytes: int
    #: ``(param_name, byte_offset, shape, dtype_str)`` in pack order
    layout: tuple
    #: ``sha256:<hex>`` of the checkpoint the segment was packed from
    content_hash: str


def segment_name(content_hash: str) -> str:
    """Deterministic segment name for a manifest content hash."""
    digest = content_hash.split(":", 1)[-1]
    return f"{SEGMENT_PREFIX}{digest[:24]}"


def _pack_layout(state: dict) -> tuple[tuple, int]:
    """``(layout, total_bytes)`` for a state dict, sorted by name."""
    layout = []
    offset = 0
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        layout.append((name, offset, tuple(array.shape), str(array.dtype)))
        offset += array.nbytes
    return tuple(layout), offset


def _views_over(buf, spec: ShmSpec, writeable: bool) -> dict[str, np.ndarray]:
    views = {}
    for name, offset, shape, dtype in spec.layout:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buf, offset=offset)
        view.setflags(write=writeable)
        views[name] = view
    return views


class WeightStore:
    """One published checkpoint living in a shared-memory segment.

    Handles are refcounted per process: :func:`publish_weights` on an
    already-published hash returns the same store with its refcount
    bumped, and :meth:`release` unlinks the segment only when the last
    reference drops.  ``close``/``unlink`` ordering follows the stdlib
    contract: close the mapping everywhere, unlink exactly once.
    """

    def __init__(self, shm: shared_memory.SharedMemory, spec: ShmSpec):
        self._shm = shm
        self.spec = spec
        self.refs = 1

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes

    def views(self) -> dict[str, np.ndarray]:
        """Read-only parameter views over the live segment."""
        return _views_over(self._shm.buf, self.spec, writeable=False)

    def _close_and_unlink(self) -> None:
        # drop every numpy view before closing: an exported buffer keeps
        # the mmap pinned and close() would raise BufferError
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. concurrent external cleanup)


_stores: dict[str, WeightStore] = {}
_stores_lock = make_lock("serve.shm.registry")


def publish_weights(state: dict, content_hash: str) -> WeightStore:
    """Publish a float64 state dict into shared memory (or reuse it).

    Publishing the same ``content_hash`` twice returns the existing
    segment with its refcount bumped — the weights exist once per box,
    not once per server object.  A leftover on-disk segment from a
    crashed previous run is adopted only if its bytes match the state
    being published; anything stale is unlinked and repacked.
    """
    layout, nbytes = _pack_layout(state)
    if nbytes == 0:
        raise ValueError("cannot publish an empty state dict to shared memory")
    name = segment_name(content_hash)
    spec = ShmSpec(name=name, nbytes=nbytes, layout=layout,
                   content_hash=content_hash)
    with _stores_lock:
        store = _stores.get(name)
        if store is not None:
            store.refs += 1
            counter("serve.shm.reused").inc()
            return store
        shm = _create_or_adopt(spec, state)
        store = WeightStore(shm, spec)
        _stores[name] = store
        counter("serve.shm.published").inc()
        return store


def _create_or_adopt(spec: ShmSpec, state: dict) -> shared_memory.SharedMemory:
    try:
        shm = shared_memory.SharedMemory(name=spec.name, create=True,
                                         size=spec.nbytes)
    except FileExistsError:
        # a previous process published this hash (or crashed mid-way);
        # adopt only if the bytes verify against what we'd write
        shm = shared_memory.SharedMemory(name=spec.name)
        if shm.size >= spec.nbytes and _segment_matches(shm, spec, state):
            counter("serve.shm.adopted").inc()
            return shm
        shm.close()
        try:
            shared_memory.SharedMemory(name=spec.name).unlink()
        except FileNotFoundError:
            pass
        shm = shared_memory.SharedMemory(name=spec.name, create=True,
                                         size=spec.nbytes)
    for name, view in _views_over(shm.buf, spec, writeable=True).items():
        view[...] = state[name]
    return shm


def _segment_matches(shm: shared_memory.SharedMemory, spec: ShmSpec,
                     state: dict) -> bool:
    views = _views_over(shm.buf, spec, writeable=False)
    return all(np.array_equal(views[name], state[name], equal_nan=True)
               for name, _, _, _ in spec.layout)


def release_weights(store: WeightStore) -> None:
    """Drop one reference; unlink the segment when the last one goes."""
    with _stores_lock:
        store.refs -= 1
        if store.refs > 0:
            return
        _stores.pop(store.name, None)
        store._close_and_unlink()
        counter("serve.shm.unlinked").inc()


def attach_views(spec: ShmSpec) -> tuple[shared_memory.SharedMemory,
                                         dict[str, np.ndarray]]:
    """Worker-side: map an existing segment as read-only views.

    The caller owns the returned handle and must ``close()`` it before
    exit (never ``unlink`` — the publisher does that exactly once).
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    if shm.size < spec.nbytes:
        shm.close()
        raise ValueError(
            f"shared-memory segment {spec.name} is {shm.size} bytes, "
            f"expected at least {spec.nbytes} (stale segment?)")
    return shm, _views_over(shm.buf, spec, writeable=False)


def live_segments() -> list[str]:
    """Names of segments this process currently has published."""
    with _stores_lock:
        return sorted(_stores)


def shm_stats() -> dict:
    """Accounting snapshot for ``/healthz`` and ``/metrics``."""
    with _stores_lock:
        segments = [{
            "name": store.name,
            "nbytes": store.nbytes,
            "refs": store.refs,
            "params": len(store.spec.layout),
            "content_hash": store.spec.content_hash,
        } for store in _stores.values()]
    segments.sort(key=lambda s: s["name"])
    return {
        "segments": segments,
        "segment_count": len(segments),
        "total_bytes": sum(s["nbytes"] for s in segments),
    }
