"""Shape-manipulation primitives with backward rules."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, ensure_tensor


def reshape(a, *shape) -> Tensor:
    """Return a view of ``a`` with a new shape."""
    a = ensure_tensor(a)
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    out = a.data.reshape(shape)
    return Tensor.from_op(out, [(a, lambda g: g.reshape(a.shape))],
                          capture=("reshape", {"shape": out.shape}))


def transpose(a, axes=None) -> Tensor:
    """Permute dimensions (numpy ``transpose`` semantics)."""
    a = ensure_tensor(a)
    out = np.transpose(a.data, axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)
    return Tensor.from_op(out, [(a, lambda g: np.transpose(g, inverse))],
                          capture=("transpose", {"axes": axes}))


def swapaxes(a, axis1: int, axis2: int) -> Tensor:
    """Swap two dimensions."""
    a = ensure_tensor(a)
    out = np.swapaxes(a.data, axis1, axis2)
    return Tensor.from_op(out, [(a, lambda g: np.swapaxes(g, axis1, axis2))],
                          capture=("swapaxes", {"axis1": axis1, "axis2": axis2}))


def moveaxis(a, source: int, destination: int) -> Tensor:
    """Move a dimension to a new position."""
    a = ensure_tensor(a)
    out = np.moveaxis(a.data, source, destination)
    return Tensor.from_op(out, [(a, lambda g: np.moveaxis(g, destination, source))],
                          capture=("moveaxis", {"source": source,
                                                "destination": destination}))


def getitem(a, index) -> Tensor:
    """Basic indexing/slicing; gradient scatters back into place."""
    a = ensure_tensor(a)
    out = a.data[index]

    def vjp(g):
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, g)
        return grad

    return Tensor.from_op(out, [(a, vjp)], capture=("getitem", {"index": index}))


def concatenate(tensors, axis: int = 0) -> Tensor:
    """Join tensors along an existing axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    parents = []
    for i, t in enumerate(tensors):
        def vjp(g, i=i):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            return g[tuple(slicer)]
        parents.append((t, vjp))
    return Tensor.from_op(out, parents, capture=("concatenate", {"axis": axis}))


def stack(tensors, axis: int = 0) -> Tensor:
    """Join tensors along a new axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)
    parents = []
    for i, t in enumerate(tensors):
        def vjp(g, i=i):
            return np.take(g, i, axis=axis)
        parents.append((t, vjp))
    return Tensor.from_op(out, parents, capture=("stack", {"axis": axis}))


def pad(a, pad_width, constant_value: float = 0.0) -> Tensor:
    """Constant-pad; gradient crops the padding back off."""
    a = ensure_tensor(a)
    pad_width = [(int(lo), int(hi)) for lo, hi in pad_width]
    out = np.pad(a.data, pad_width, constant_values=constant_value)

    def vjp(g):
        slicer = tuple(slice(lo, g.shape[i] - hi) for i, (lo, hi) in enumerate(pad_width))
        return g[slicer]

    return Tensor.from_op(out, [(a, vjp)],
                          capture=("pad", {"pad_width": pad_width,
                                           "constant_value": constant_value}))


def flip(a, axis) -> Tensor:
    """Reverse along the given axis/axes."""
    a = ensure_tensor(a)
    out = np.flip(a.data, axis=axis)
    return Tensor.from_op(out, [(a, lambda g: np.flip(g, axis=axis))],
                          capture=("flip", {"axis": axis}))


def broadcast_to(a, shape) -> Tensor:
    """Broadcast ``a`` to ``shape``; gradient sums over broadcast axes."""
    from .tensor import unbroadcast

    a = ensure_tensor(a)
    out = np.broadcast_to(a.data, shape).copy()
    return Tensor.from_op(out, [(a, lambda g: unbroadcast(g, a.shape))],
                          capture=("broadcast_to", {"shape": out.shape}))


def repeat_interleave(a, repeats: int, axis: int) -> Tensor:
    """Repeat each element ``repeats`` times along ``axis``.

    This is the building block for nearest-neighbour upsampling; the
    gradient sums each block of repeated entries.
    """
    a = ensure_tensor(a)
    out = np.repeat(a.data, repeats, axis=axis)

    def vjp(g):
        new_shape = list(a.shape)
        new_shape.insert(axis + 1, repeats)
        return g.reshape(new_shape).sum(axis=axis + 1)

    return Tensor.from_op(out, [(a, vjp)],
                          capture=("repeat_interleave", {"repeats": repeats,
                                                         "axis": axis}))


def split(a, sections: int, axis: int = 0) -> list[Tensor]:
    """Split into ``sections`` equal chunks along ``axis``."""
    a = ensure_tensor(a)
    if a.shape[axis] % sections:
        raise ValueError(f"axis {axis} of size {a.shape[axis]} not divisible by {sections}")
    step = a.shape[axis] // sections
    chunks = []
    for i in range(sections):
        slicer = [slice(None)] * a.ndim
        slicer[axis] = slice(i * step, (i + 1) * step)
        chunks.append(getitem(a, tuple(slicer)))
    return chunks


def _install_methods():
    Tensor.reshape = reshape
    Tensor.transpose = transpose
    Tensor.swapaxes = swapaxes
    Tensor.moveaxis = moveaxis
    Tensor.__getitem__ = getitem
    Tensor.flip = flip


_install_methods()
