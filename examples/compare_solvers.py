"""Compare all five learned PEB solvers (a small Table II).

Trains DeepCNN, TEMPO-resist, FNO, DeePEB and SDM-PEB on the same
clips and prints the paper-style comparison table.  Uses a reduced
setting so it finishes in a few minutes; run the full reproduction with

    python -m repro.experiments.table2

Usage:  python examples/compare_solvers.py
"""

from repro.config import GridConfig, LithoConfig
from repro.experiments import ExperimentSettings, table2

settings = ExperimentSettings(
    num_clips=10,
    epochs=12,
    lr_step_size=5,
    config=LithoConfig(grid=GridConfig(size_um=1.0, nx=32, ny=32, nz=4)),
    cd_clips=2,
    cache_dir=".repro_cache",
)

print("Training all five methods on a shared 10-clip dataset "
      "(reduced scale; see repro.experiments.table2 for the full run)...\n")
results = table2.run(settings, verbose=True)
print()
print(table2.format_table(results))
print("\nPaper's Table II shape: SDM-PEB < DeePEB < {FNO, TEMPO-resist, "
      "DeepCNN} on inhibitor/rate error and CD error.")
