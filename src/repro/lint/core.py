"""Lint framework core: diagnostics, rule registry, suppressions.

A :class:`Rule` inspects one :class:`LintFile` (parsed source plus its
repo-relative path) and yields :class:`Diagnostic` objects.  Rules are
registered by id via :func:`register_rule`; the runner applies every
registered rule to every file and filters the results through the
``# repro-lint: disable=...`` suppression comments.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: order defines severity ranking for sorting/reporting
SEVERITIES = ("error", "warning")

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"


@dataclass
class LintFile:
    """A parsed source file handed to every rule.

    ``relpath`` is the forward-slash path rules use for applicability
    (e.g. only ``repro/tensor/ops_*.py`` gets the tape rules); it may be
    virtual, which is how the test fixtures exercise path-scoped rules.
    """

    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    _line_suppressions: dict[int, set[str]] | None = None
    _file_suppressions: set[str] | None = None

    @classmethod
    def parse(cls, relpath: str, source: str) -> "LintFile":
        tree = ast.parse(source, filename=relpath)
        return cls(relpath=relpath, source=source, tree=tree, lines=source.splitlines())

    # ------------------------------------------------------------------
    # Path helpers used by rules for applicability
    # ------------------------------------------------------------------
    def package_path(self) -> str:
        """Path relative to the ``repro`` package root, or '' if outside it."""
        parts = PurePosixPath(self.relpath.replace("\\", "/")).parts
        if "repro" in parts:
            index = len(parts) - 1 - parts[::-1].index("repro")
            return "/".join(parts[index + 1:])
        return ""

    def in_package(self, *subpackages: str) -> bool:
        """True when the file lives under ``repro/<subpackage>/`` (or is
        the module ``repro/<subpackage>.py``)."""
        pkg = self.package_path()
        return any(pkg.startswith(f"{sub}/") or pkg == f"{sub}.py" for sub in subpackages)

    # ------------------------------------------------------------------
    # Suppressions
    # ------------------------------------------------------------------
    def _scan_suppressions(self) -> None:
        per_line: dict[int, set[str]] = {}
        per_file: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            if "repro-lint" not in text:
                continue
            for kind, ids in _SUPPRESS_RE.findall(text):
                rules = {r.strip().upper() for r in ids.split(",") if r.strip()}
                if kind == "disable-file":
                    per_file |= rules
                else:
                    per_line.setdefault(lineno, set()).update(rules)
        self._line_suppressions = per_line
        self._file_suppressions = per_file

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if self._line_suppressions is None:
            self._scan_suppressions()
        assert self._line_suppressions is not None and self._file_suppressions is not None
        if {"ALL", rule_id.upper()} & self._file_suppressions:
            return True
        on_line = self._line_suppressions.get(line, set())
        return bool({"ALL", rule_id.upper()} & on_line)

    def comment_on_or_above(self, lineno: int) -> bool:
        """True if line ``lineno`` carries a trailing comment or is
        directly preceded by a comment-only line (used by REP006)."""
        if 1 <= lineno <= len(self.lines) and "#" in self.lines[lineno - 1]:
            return True
        previous = lineno - 2
        return previous >= 0 and self.lines[previous].lstrip().startswith("#")


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``, ``severity`` and ``description`` and
    implement :meth:`check`, yielding diagnostics.  Use :meth:`report`
    to build them with the rule's id/severity filled in.
    """

    id: str = "REP000"
    severity: str = "error"
    description: str = ""

    def check(self, file: LintFile):
        raise NotImplementedError
        yield  # pragma: no cover

    def report(self, file: LintFile, node: ast.AST | int, message: str) -> Diagnostic:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line, col = getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
        return Diagnostic(
            path=file.relpath, line=line, col=col,
            rule=self.id, severity=self.severity, message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    if not cls.id or cls.id in _REGISTRY:
        raise ValueError(f"duplicate or empty rule id: {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules sorted by id."""
    return [rule for _, rule in sorted(_REGISTRY.items())]


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id.upper()]


def run_rules(file: LintFile, select: set[str] | None = None) -> list[Diagnostic]:
    """Apply (selected) registered rules to one file, honouring
    suppression comments, and return diagnostics sorted by position."""
    found: list[Diagnostic] = []
    for rule in all_rules():
        if select and rule.id not in select:
            continue
        for diag in rule.check(file):
            if not file.is_suppressed(diag.rule, diag.line):
                found.append(diag)
    found.sort(key=lambda d: (d.line, d.col, d.rule))
    return found
