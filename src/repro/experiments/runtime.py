"""Runtime comparison: learned surrogates vs the rigorous solver.

The paper reports SDM-PEB at 1.06 s vs S-Litho's 147 s (138×), with the
method-vs-method ordering DeepCNN < SDM-PEB < FNO < DeePEB «
TEMPO-resist.  This experiment times the rigorous solver and every
untrained surrogate's forward pass on one clip and reports the speedup
factors (absolute numbers differ on the numpy substrate; the ordering
and the orders-of-magnitude gap are the reproduced shape).

Run:  python -m repro.experiments.runtime [--quick]
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.data import simulate_clip
from repro.tensor import Tensor, no_grad
from .harness import ExperimentSettings, TABLE2_METHODS, build_method


@dataclass
class RuntimeRow:
    name: str
    seconds: float
    speedup_vs_rigorous: float


def time_forward(model, acid: np.ndarray, repeats: int = 3) -> float:
    """Best-of-N forward wall time on one clip."""
    x = Tensor(acid[None])
    with no_grad():
        model(x)  # warm-up
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            model(x)
            times.append(time.perf_counter() - start)
    return min(times)


def run(settings: ExperimentSettings | None = None) -> tuple[float, list[RuntimeRow]]:
    """Returns (rigorous seconds, per-method runtime rows)."""
    settings = settings if settings is not None else ExperimentSettings()
    sample = simulate_clip(settings.base_seed, settings.config,
                           time_step_s=settings.time_step_s)
    rigorous = sample.rigorous_seconds
    rows = []
    for name in TABLE2_METHODS:
        nn.init.seed(settings.init_seed)
        model, _ = build_method(name, settings.config.grid)
        seconds = time_forward(model, sample.acid)
        rows.append(RuntimeRow(name, seconds, rigorous / seconds))
    return rigorous, rows


def format_table(rigorous: float, rows: list[RuntimeRow]) -> str:
    header = f"{'Solver':<16} {'RT (s)':>10} {'speedup':>9}"
    lines = [header, "-" * len(header),
             f"{'Rigorous (ours)':<16} {rigorous:>10.3f} {'1x':>9}"]
    for row in rows:
        lines.append(f"{row.name:<16} {row.seconds:>10.3f} "
                     f"{row.speedup_vs_rigorous:>8.0f}x")
    return "\n".join(lines)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    rigorous, rows = run(settings)
    print(format_table(rigorous, rows))
    return rigorous, rows


if __name__ == "__main__":
    main()
