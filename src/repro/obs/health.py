"""Physics health monitors for served predictions.

The serving stack answers with a *surrogate's* idea of the inhibitor
field; nothing in the HTTP path knows whether that answer is still
physical.  This module watches two layers of sanity, both strictly
observation-only (inputs and outputs are only ever read — bitwise
identity of served predictions with monitoring on vs off is pinned by
``tests/serve/test_determinism.py``):

* **Invariant checks** (:func:`check_prediction`, cheap, run inline in
  the batcher worker): every value finite; the implied inhibitor
  concentration inside ``[0, 1]`` (Eq. 1 keeps ``[I] = I0·exp(-k∫A)``
  in that interval for any non-negative acid); and deprotection
  monotone — binned by input-acid level, mean predicted inhibitor must
  be non-increasing as acid grows, because more acid can only deprotect
  more.  Violations increment ``health.violations.*`` counters, feed
  magnitude histograms and emit ``health.violation`` trace events; they
  never block or mutate the response.

* **Shadow audits** (:class:`ShadowAuditor`, sampled, off-thread): every
  Nth served request is re-solved with the rigorous
  ``RigorousPEBSolver`` on a background daemon thread and the
  surrogate-vs-rigorous inhibitor RMSE and center-row CD error land in
  ``health.shadow.*`` histograms — the online analog of the offline
  Table II evaluation, surfacing input-distribution drift the
  invariants cannot see.

Wire-up: :meth:`HealthMonitor.observe_batch` from the model's batched
forward; everything it produces is visible through ``/metrics`` and the
trace sink.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.config import GridConfig, PEBConfig
from repro.runtime.sync import make_condition, make_lock

from .context import TraceContext, use_context
from .metrics import counter, histogram, timer
from .trace import span, trace_event

__all__ = [
    "HealthConfig", "HealthMonitor", "ShadowAuditor", "check_prediction",
    "threshold_cd_nm",
]

#: bucket bounds for error-magnitude histograms (dimensionless fractions)
_ERROR_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0)
#: bucket bounds for CD-error histograms (nm)
_CD_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for the invariant checks and the sampled shadow audit."""

    #: run the cheap per-prediction invariant checks
    check_invariants: bool = True
    #: tolerance on the [0, 1] range check (numerical slack, not physics)
    range_tolerance: float = 1e-9
    #: acid-level bins for the monotonicity check (0 disables it)
    monotonicity_bins: int = 8
    #: slack allowed on binned-mean increases (surrogate noise floor)
    monotonicity_tolerance: float = 0.02
    #: audit every Nth served request against the rigorous solver
    #: (0 disables shadow auditing entirely)
    shadow_every: int = 0
    #: pending shadow audits beyond this are dropped, never queued —
    #: the audit thread must not become a hidden backlog
    shadow_backlog: int = 4
    #: rigorous-solver step for audits; coarser than Table I's baseline
    #: because audits are drift detectors, not ground-truth regeneration
    shadow_time_step_s: float = 1.0


def threshold_cd_nm(inhibitor: np.ndarray, grid: GridConfig,
                    threshold: float = 0.5) -> float:
    """Critical dimension of the center row of the top slice, in nm.

    Width of the region where the inhibitor falls below ``threshold``
    (deprotected resist), with linear interpolation at the crossings —
    a deliberately cheap stand-in for full metrology, good enough to
    see the surrogate's printed feature drifting from the rigorous one.
    Returns 0.0 when nothing crosses the threshold.
    """
    row = np.asarray(inhibitor, dtype=np.float64)[0, inhibitor.shape[1] // 2, :]
    below = row < threshold
    if not below.any():
        return 0.0
    dx = grid.dx_nm
    indices = np.flatnonzero(below)
    left, right = indices[0], indices[-1]
    left_edge = float(left)
    if left > 0:
        span_v = row[left - 1] - row[left]
        if span_v > 0:
            left_edge = left - 1 + (row[left - 1] - threshold) / span_v
    right_edge = float(right)
    if right < row.size - 1:
        span_v = row[right + 1] - row[right]
        if span_v > 0:
            right_edge = right + 1 - (row[right + 1] - threshold) / span_v
    return float((right_edge - left_edge) * dx)


def check_prediction(acid: np.ndarray, inhibitor: np.ndarray,
                     config: HealthConfig) -> dict:
    """Invariant verdicts for one served prediction (pure, read-only).

    ``inhibitor`` is the prediction already mapped to concentration
    space.  Returns ``{"finite": bool, "range": bool, "monotone": bool,
    "range_excess": float, "monotone_excess": float}`` where True means
    the invariant *holds*.
    """
    inhibitor = np.asarray(inhibitor)
    finite = bool(np.isfinite(inhibitor).all())
    verdict = {"finite": finite, "range": True, "monotone": True,
               "range_excess": 0.0, "monotone_excess": 0.0}
    if not finite:
        # range/monotonicity are meaningless over NaN/Inf
        verdict["range"] = verdict["monotone"] = False
        return verdict
    low = float(inhibitor.min())
    high = float(inhibitor.max())
    excess = max(0.0 - low, high - 1.0, 0.0)
    if excess > config.range_tolerance:
        verdict["range"] = False
        verdict["range_excess"] = excess
    bins = config.monotonicity_bins
    if bins > 1:
        acid_flat = np.asarray(acid, dtype=np.float64).ravel()
        inh_flat = inhibitor.astype(np.float64, copy=False).ravel()
        lo, hi = float(acid_flat.min()), float(acid_flat.max())
        if hi > lo:
            edges = np.linspace(lo, hi, bins + 1, dtype=np.float64)
            which = np.clip(np.digitize(acid_flat, edges[1:-1]), 0, bins - 1)
            sums = np.bincount(which, weights=inh_flat, minlength=bins)
            counts = np.bincount(which, minlength=bins)
            present = counts > 0
            means = sums[present] / counts[present]
            rises = np.diff(means)
            worst = float(rises.max()) if rises.size else 0.0
            if worst > config.monotonicity_tolerance:
                verdict["monotone"] = False
                verdict["monotone_excess"] = worst
    return verdict


@dataclass
class _AuditItem:
    acid: np.ndarray
    inhibitor: np.ndarray
    request_id: str | None
    ctx: TraceContext | None


class ShadowAuditor:
    """Background re-solver: rigorous PEB on a sample of served inputs.

    Audits are fire-and-forget: :meth:`offer` copies the arrays, drops
    the item when the backlog is full (``health.shadow.dropped``) and
    returns immediately — the serving hot path never waits on a
    rigorous solve.  Results are recorded as histograms only; nothing
    flows back into responses.
    """

    def __init__(self, grid: GridConfig, peb: PEBConfig | None = None,
                 config: HealthConfig | None = None):
        self.grid = grid
        self.peb = peb if peb is not None else PEBConfig()
        self.config = config if config is not None else HealthConfig()
        self._items: deque[_AuditItem] = deque()
        self._lock = make_lock("obs.shadow")
        self._ready = make_condition("obs.shadow", lock=self._lock)
        #: queued plus in-flight audits; drives :meth:`drain`
        self._pending = 0
        self._closed = False
        self._solver = None
        self._audits_done = 0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-shadow-audit")
        self._thread.start()

    def offer(self, acid: np.ndarray, inhibitor: np.ndarray,
              request_id: str | None = None,
              ctx: TraceContext | None = None) -> bool:
        """Queue one audit; False when dropped (backlog full / closed)."""
        with self._ready:
            if self._closed or len(self._items) >= self.config.shadow_backlog:
                counter("health.shadow.dropped").inc()
                return False
            self._items.append(_AuditItem(
                acid=np.array(acid, dtype=np.float64),
                inhibitor=np.array(inhibitor, dtype=np.float64),
                request_id=request_id, ctx=ctx))
            self._pending += 1
            self._ready.notify()
        return True

    def _get_solver(self):
        solver = self._solver
        if solver is None:
            from repro.litho.peb import RigorousPEBSolver

            with self._ready:
                if self._solver is None:
                    self._solver = RigorousPEBSolver(
                        self.grid, self.peb,
                        time_step_s=self.config.shadow_time_step_s)
                solver = self._solver
        return solver

    def _run(self) -> None:
        while True:
            with self._ready:
                while not self._items and not self._closed:
                    self._ready.wait()
                if not self._items:
                    return
                item = self._items.popleft()
            try:
                self._audit(item)
            except Exception as error:  # noqa: BLE001 - audits must never kill serving
                counter("health.shadow.errors").inc()
                trace_event("health.shadow_error", error=type(error).__name__)
            finally:
                with self._ready:
                    self._pending -= 1
                    self._ready.notify_all()

    def _audit(self, item: _AuditItem) -> None:
        with use_context(item.ctx):
            with span("health.shadow_audit", request_id=item.request_id), \
                    timer("health.shadow.audit").time():
                rigorous = self._get_solver().solve(item.acid).inhibitor
                diff = item.inhibitor - rigorous
                rmse = float(np.sqrt(np.mean(diff * diff)))
                cd_surrogate = threshold_cd_nm(item.inhibitor, self.grid)
                cd_rigorous = threshold_cd_nm(rigorous, self.grid)
                cd_error = abs(cd_surrogate - cd_rigorous)
                histogram("health.shadow.rmse", bounds=_ERROR_BOUNDS).observe(rmse)
                histogram("health.shadow.cd_error_nm", bounds=_CD_BOUNDS).observe(cd_error)
                counter("health.shadow.audits").inc()
                with self._ready:
                    self._audits_done += 1
                trace_event("health.shadow", request_id=item.request_id,
                            rmse=rmse, cd_error_nm=cd_error)

    @property
    def audits_done(self) -> int:
        with self._ready:
            return self._audits_done

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Wait for queued and in-flight audits to finish; True when drained."""
        deadline = time.monotonic() + timeout_s
        with self._ready:
            while self._pending > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ready.wait(remaining)
        return True

    def _discard_backlog_locked(self) -> None:
        """Drop queued (not in-flight) items; caller holds ``self._ready``."""
        dropped = len(self._items)
        if not dropped:
            return
        self._items.clear()
        self._pending -= dropped  # repro-lint: disable=REP101 (caller holds self._ready)
        counter("health.shadow.dropped").inc(dropped)
        self._ready.notify_all()

    def close(self, timeout_s: float = 5.0, drain: bool = True) -> bool:
        """Stop the audit worker within ``timeout_s`` seconds.

        With ``drain=True`` the backlog keeps being audited until the
        deadline; whatever is still queued when it expires is dropped
        (counted under ``health.shadow.dropped``) so the join is
        bounded.  With ``drain=False`` the backlog is discarded up
        front.  Returns True when the worker thread actually exited —
        False only if it was still inside a rigorous solve at the
        deadline (it is a daemon thread, so process exit is never held
        up either way).
        """
        deadline = time.monotonic() + timeout_s
        with self._ready:
            if not self._closed:
                self._closed = True
                if not drain:
                    self._discard_backlog_locked()
                self._ready.notify_all()
        self._thread.join(max(0.0, deadline - time.monotonic()))
        if self._thread.is_alive():
            # deadline hit mid-drain: drop the remainder so the worker
            # exits right after its current solve, and give it a moment
            with self._ready:
                self._discard_backlog_locked()
                self._ready.notify_all()
            self._thread.join(0.1)
        return not self._thread.is_alive()


class HealthMonitor:
    """Per-model sentinel combining invariant checks and shadow audits.

    One instance per :class:`~repro.serve.ServedModel`; ``observe_batch``
    runs on the batcher worker thread after each batched forward.  The
    label→inhibitor mapping is recomputed here on copies — the served
    response arrays are never touched.
    """

    def __init__(self, grid: GridConfig, catalysis_rate: float,
                 config: HealthConfig | None = None,
                 peb: PEBConfig | None = None, name: str = "default"):
        self.grid = grid
        self.catalysis_rate = float(catalysis_rate)
        self.config = config if config is not None else HealthConfig()
        self.name = name
        self._seen = 0
        self._violations = 0
        self._count_lock = make_lock("obs.health.counts")
        self.auditor = (ShadowAuditor(grid, peb=peb, config=self.config)
                        if self.config.shadow_every > 0 else None)

    def _implied_inhibitor(self, label: np.ndarray) -> np.ndarray:
        from repro.core.label import label_to_inhibitor

        return label_to_inhibitor(label, self.catalysis_rate)

    def observe_batch(self, acids: np.ndarray, labels: np.ndarray,
                      request_ids: list[str | None] | None = None,
                      ctxs: list[TraceContext | None] | None = None) -> None:
        """Check every (acid, prediction) pair of one batched forward.

        Never raises and never mutates its arguments; serving-visible
        side effects are limited to metrics, trace events and (sampled)
        audit enqueues.
        """
        try:
            with span("serve.health", size=len(labels)):
                for index in range(len(labels)):
                    rid = request_ids[index] if request_ids else None
                    ctx = ctxs[index] if ctxs else None
                    self._observe_one(acids[index], labels[index], rid, ctx)
        except Exception as error:  # noqa: BLE001 - monitors must never break serving
            counter("health.monitor_errors").inc()
            trace_event("health.monitor_error", error=type(error).__name__)

    def _observe_one(self, acid: np.ndarray, label: np.ndarray,
                     request_id: str | None, ctx: TraceContext | None) -> None:
        with self._count_lock:
            self._seen += 1
            seen = self._seen
        counter("health.checks").inc()
        if self.config.check_invariants:
            inhibitor = self._implied_inhibitor(label)
            verdict = check_prediction(acid, inhibitor, self.config)
            failed = [k for k in ("finite", "range", "monotone") if not verdict[k]]
            for kind in failed:
                counter(f"health.violations.{kind}").inc()
            if failed:
                with self._count_lock:
                    self._violations += 1
                histogram("health.range_excess", bounds=_ERROR_BOUNDS).observe(
                    verdict["range_excess"])
                trace_event("health.violation", request_id=request_id,
                            kinds=failed,
                            range_excess=verdict["range_excess"],
                            monotone_excess=verdict["monotone_excess"])
        else:
            inhibitor = None
        if self.auditor is not None and (seen - 1) % self.config.shadow_every == 0:
            if inhibitor is None:
                inhibitor = self._implied_inhibitor(label)
            self.auditor.offer(acid, inhibitor, request_id=request_id, ctx=ctx)

    def stats(self) -> dict:
        """Operational snapshot for ``/healthz``."""
        with self._count_lock:
            seen, violations = self._seen, self._violations
        return {
            "checked": seen,
            "violations": violations,
            "shadow_audits": self.auditor.audits_done if self.auditor else 0,
            "shadow_every": self.config.shadow_every,
        }

    def close(self) -> None:
        if self.auditor is not None:
            self.auditor.close()
