"""Optical (Abbe) aerial-image simulation."""

import numpy as np
import pytest

from repro.config import GridConfig, OpticsConfig
from repro.litho import optics


GRID = GridConfig(nx=64, ny=64, nz=4)


class TestSourcePupil:
    def test_cutoff_value(self):
        cfg = OpticsConfig()
        assert np.isclose(optics.pupil_cutoff(cfg), 1.35 / 193.0)

    def test_source_points_on_annulus(self):
        cfg = OpticsConfig(sigma_inner=0.5, sigma_outer=0.8, source_points=8)
        sx, sy = optics.source_points(cfg)
        radii = np.hypot(sx, sy) / optics.pupil_cutoff(cfg)
        assert np.all((radii > 0.49) & (radii < 0.81))
        assert len(sx) == 8


class TestAerialImage:
    def test_open_frame_is_uniform(self):
        cfg = OpticsConfig(absorption_per_um=0.0, substrate_reflectivity=0.0)
        image = optics.aerial_image_stack(np.ones((64, 64)), GRID, cfg)
        assert np.allclose(image, 1.0, atol=1e-9)

    def test_dark_frame_is_dark(self):
        image = optics.aerial_image_stack(np.zeros((64, 64)), GRID, OpticsConfig())
        assert np.allclose(image, 0.0, atol=1e-12)

    def test_intensity_non_negative(self):
        rng = np.random.default_rng(0)
        image = optics.aerial_image_stack(rng.random((64, 64)), GRID, OpticsConfig())
        assert np.all(image >= 0.0)

    def test_absorption_attenuates_with_depth(self):
        cfg = OpticsConfig(absorption_per_um=5.0, substrate_reflectivity=0.0)
        image = optics.aerial_image_stack(np.ones((64, 64)), GRID, cfg)
        layer_means = image.mean(axis=(1, 2))
        assert np.all(np.diff(layer_means) < 0.0)

    def test_standing_wave_period(self):
        """Standing waves oscillate with period λ/(2n) in depth."""
        cfg = OpticsConfig(substrate_reflectivity=0.3)
        depths = np.linspace(0.0, 200.0, 4001)
        grid = GridConfig(nz=4, thickness_nm=200.0)
        factor = optics.standing_wave_factor(depths, grid, cfg)
        period = cfg.wavelength_nm / (2.0 * cfg.resist_index)
        shift = int(round(period / (depths[1] - depths[0])))
        assert np.allclose(factor[:-shift], factor[shift:], atol=1e-3)

    def test_standing_wave_unit_mean(self):
        cfg = OpticsConfig(substrate_reflectivity=0.25)
        depths = np.linspace(0.0, 10 * cfg.wavelength_nm / (2 * cfg.resist_index), 10000,
                             endpoint=False)
        grid = GridConfig(nz=4, thickness_nm=float(depths[-1]))
        factor = optics.standing_wave_factor(depths, grid, cfg)
        assert abs(factor.mean() - 1.0) < 1e-2

    def test_zero_reflectivity_is_identity(self):
        cfg = OpticsConfig(substrate_reflectivity=0.0)
        depths = np.linspace(0.0, 80.0, 9)
        assert np.allclose(optics.standing_wave_factor(depths, GRID, cfg), 1.0)

    def test_standing_waves_create_depth_structure(self):
        pattern = np.zeros((64, 64))
        pattern[28:36, 28:36] = 1.0
        with_sw = optics.aerial_image_stack(pattern, GRID, OpticsConfig(substrate_reflectivity=0.4))
        without = optics.aerial_image_stack(pattern, GRID, OpticsConfig(substrate_reflectivity=0.0))
        variation_with = np.abs(np.diff(with_sw, axis=0)).mean()
        variation_without = np.abs(np.diff(without, axis=0)).mean()
        assert variation_with > 2.0 * variation_without

    def test_small_contact_blurred_below_clear_field(self):
        """A sub-resolution contact must image with intensity << 1."""
        pattern = np.zeros((64, 64))
        pattern[30:33, 30:33] = 1.0  # ~47 nm at 15.6 nm pixels
        image = optics.aerial_image_stack(pattern, GRID, OpticsConfig())
        assert 0.0 < image.max() < 0.7

    def test_image_peak_near_contact_center(self):
        pattern = np.zeros((64, 64))
        pattern[30:34, 28:32] = 1.0
        image = optics.aerial_image_stack(pattern, GRID, OpticsConfig())
        peak = np.unravel_index(np.argmax(image[0]), image[0].shape)
        assert abs(peak[0] - 31.5) <= 2 and abs(peak[1] - 29.5) <= 2

    def test_defocus_changes_through_depth(self):
        pattern = np.zeros((64, 64))
        pattern[30:34, 30:34] = 1.0
        cfg = OpticsConfig(absorption_per_um=0.0, focus_offset_nm=0.0)
        deep_grid = GridConfig(nx=64, ny=64, nz=4, thickness_nm=400.0)
        image = optics.aerial_image_stack(pattern, deep_grid, cfg)
        assert not np.allclose(image[0], image[-1])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            optics.aerial_image_stack(np.ones((32, 32)), GRID, OpticsConfig())

    def test_depth_positions(self):
        grid = GridConfig(nz=4, thickness_nm=80.0)
        assert np.allclose(optics.depth_positions(grid), [10.0, 30.0, 50.0, 70.0])
