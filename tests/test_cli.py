"""CLI: every subcommand exercised end-to-end at micro scale."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import cli


def run_cli(args) -> int:
    return cli.main(args)


COMMON = ["--clips", "3", "--nx", "16", "--nz", "2", "--clip-um", "0.8"]


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    cache = str(base / "cache")
    weights = str(base / "model.npz")
    # simulate + train once for the whole module
    assert run_cli(["simulate", *COMMON, "--cache", cache]) == 0
    assert run_cli(["train", *COMMON, "--cache", cache, "--method", "DeepCNN",
                    "--epochs", "2", "--weights", weights]) == 0
    return base, cache, weights


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["train", "--method", "GPT-7"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["simulate"])
        assert args.clips == 12 and args.nx == 32


class TestSimulate:
    def test_cache_populated(self, workspace):
        _, cache, _ = workspace
        assert len(list(Path(cache).glob("clip_*.npz"))) >= 3


class TestTrain:
    def test_weights_and_metadata_written(self, workspace):
        base, _, weights = workspace
        assert Path(weights).exists()
        meta = json.loads(Path(weights).with_suffix(".json").read_text())
        assert meta["method"] == "DeepCNN"
        assert "output_mean" in meta and "output_std" in meta


class TestPredict:
    def test_prediction_file(self, workspace):
        base, cache, weights = workspace
        out = str(base / "prediction.npz")
        code = run_cli(["predict", *COMMON, "--cache", cache,
                        "--weights", weights, "--clip", "0", "--out", out])
        assert code == 0
        with np.load(out) as archive:
            assert archive["inhibitor"].shape == (2, 16, 16)
            assert np.all(np.isfinite(archive["inhibitor"]))


class TestEvaluate:
    def test_evaluation_runs(self, workspace, capsys):
        base, cache, weights = workspace
        code = run_cli(["evaluate", *COMMON, "--cache", cache, "--weights", weights])
        assert code == 0
        output = capsys.readouterr().out
        assert "NRMSE(I)" in output and "CD error" in output


class TestFriendlyErrors:
    """Missing/broken weights must produce a short message, not a traceback."""

    def test_predict_missing_weights(self, workspace, capsys):
        base, cache, _ = workspace
        code = run_cli(["predict", *COMMON, "--cache", cache,
                        "--weights", str(base / "nope.npz"),
                        "--out", str(base / "p.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nope.npz" in err
        assert "Traceback" not in err
        assert "train" in err  # points at the command that produces weights

    def test_evaluate_missing_weights(self, workspace, capsys):
        base, cache, _ = workspace
        code = run_cli(["evaluate", *COMMON, "--cache", cache,
                        "--weights", str(base / "missing" / "w.npz")])
        assert code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_corrupt_weights_file(self, workspace, capsys):
        base, cache, _ = workspace
        bad = base / "corrupt.npz"
        bad.write_bytes(b"definitely not a zip archive")
        code = run_cli(["evaluate", *COMMON, "--cache", cache,
                        "--weights", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_serve_missing_checkpoint(self, capsys):
        code = run_cli(["serve", "--ckpt", "/nonexistent/model.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err


class TestTrainManifest:
    def test_train_writes_manifest_sidecar(self, workspace):
        _, _, weights = workspace
        manifest_file = Path(weights).with_suffix("").with_name("model.manifest.json")
        assert manifest_file.exists()
        manifest = json.loads(manifest_file.read_text())
        assert manifest["model_class"] == "DeepCNN"
        assert manifest["content_hash"].startswith("sha256:")
