"""Durable long-running jobs on the serve stack.

Everything the serving front end ran before this package finishes in
milliseconds; real lithography usage is dominated by minutes-long
optimization loops *through* the simulator.  ``repro.jobs`` adds that
workload class:

* :mod:`repro.jobs.store` — a crash-safe on-disk job store (JSON record
  plus ``.npz`` optimizer checkpoint per job, written via
  write-temp-then-rename) that survives worker crashes and full server
  restarts;
* :mod:`repro.jobs.types` — the job-type registry mapping a job's
  ``type`` string to a checkpointable stepper (flagship:
  ``opc_gradient``, gradient-based ILT/OPC via
  :class:`repro.litho.ilt.GradientOPC`);
* :mod:`repro.jobs.executor` — the scheduler thread that claims queued
  jobs and runs them chunk-by-chunk in disposable forked step
  processes, checkpointing between chunks so a SIGKILLed worker or a
  restarted server resumes from the last checkpoint with
  bitwise-identical results.
"""

from .store import (
    JOB_STATES, JobError, JobNotFound, JobRecord, JobStore,
)
from .types import JobTypeError, build_stepper, job_type_names, register_job_type
from .executor import JobExecutor, JobExecutorConfig

__all__ = [
    "JOB_STATES", "JobError", "JobNotFound", "JobRecord", "JobStore",
    "JobTypeError", "build_stepper", "job_type_names", "register_job_type",
    "JobExecutor", "JobExecutorConfig",
]
