"""``python -m repro.lint`` entry point."""

import sys

from .runner import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
