"""Ring-buffer TSDB: rolling windows, derived rates, window quantiles."""

import threading

import pytest

from repro.obs import (
    Ring, TelemetrySampler, TimeSeriesDB, counter, gauge, histogram,
    metrics_snapshot, reset_metrics, timer,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


class TestRing:
    def test_keeps_only_capacity_newest(self):
        ring = Ring(4)
        for value in range(10):
            ring.push(value)
        assert ring.values() == [6, 7, 8, 9]
        assert ring.latest() == 9
        assert ring.total_pushed == 10

    def test_partial_fill(self):
        ring = Ring(8)
        ring.push(1)
        ring.push(2)
        assert ring.values() == [1, 2]
        assert len(ring) == 2

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            Ring(1)


class TestRecordAndDeltas:
    def make_db(self, samples=6, inc=5):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        c = counter("serve.http.status.200")
        for i in range(samples):
            c.inc(inc)
            db.record(t_wall_s=100.0 + i)
        return db

    def test_counter_delta_over_window(self):
        db = self.make_db()
        # 3-second window = 3 slots back from the newest sample
        assert db.counter_delta("serve.http.status.200", 3.0) == 15.0
        # full retention
        assert db.counter_delta("serve.http.status.200") == 25.0

    def test_counter_delta_prefix_sums_families(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        ok, created = counter("s.status.200"), counter("s.status.201")
        for i in range(4):
            ok.inc(2)
            created.inc(1)
            db.record(t_wall_s=100.0 + i)
        assert db.counter_delta_prefix("s.status.2", 2.0) == 6.0

    def test_rate_is_per_second(self):
        db = self.make_db(samples=6, inc=10)
        assert db.rate("serve.http.status.200", 4.0) == pytest.approx(10.0)

    def test_rate_clamps_counter_reset_to_zero(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        c = counter("x")
        c.inc(100)
        db.record(t_wall_s=100.0)
        reset_metrics()          # simulated process restart
        c = counter("x")
        c.inc(1)
        db.record(t_wall_s=101.0)
        assert db.rate("x") == 0.0
        assert db.counter_delta("x") == 0.0

    def test_unknown_metric_is_zero_not_error(self):
        db = self.make_db()
        assert db.counter_delta("nope") == 0.0
        assert db.rate("nope") == 0.0
        assert db.window_quantile("nope", 0.5) is None

    def test_timer_rate_uses_count(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        t = timer("serve.request")
        for i in range(4):
            t.observe(0.1)
            t.observe(0.1)
            db.record(t_wall_s=100.0 + i)
        assert db.rate("serve.request", 2.0) == pytest.approx(2.0)

    def test_gauge_series_tracks_levels(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        g = gauge("process.rss_bytes")
        for level in (10.0, 30.0, 20.0):
            g.set(level)
            db.record()
        assert db.gauge_series("process.rss_bytes") == [10.0, 30.0, 20.0]

    def test_metric_registered_mid_flight(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        counter("early").inc()
        db.record(t_wall_s=100.0)
        late = counter("late")
        for i in range(3):
            late.inc(4)
            db.record(t_wall_s=101.0 + i)
        assert db.counter_delta("late", 2.0) == 8.0


class TestWindowQuantiles:
    BOUNDS = (0.1, 0.5, 1.0, 5.0)

    def test_quantile_over_window_ignores_old_observations(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        h = histogram("lat", bounds=self.BOUNDS)
        db.record(t_wall_s=99.0)     # baseline before any observation
        # old samples: all fast
        for _ in range(100):
            h.observe(0.05)
        db.record(t_wall_s=100.0)
        db.record(t_wall_s=101.0)
        # recent window: all slow
        for _ in range(100):
            h.observe(2.0)
        db.record(t_wall_s=102.0)
        p50_recent = db.window_quantile("lat", 0.5, window_s=1.0)
        p50_all = db.window_quantile("lat", 0.5)
        assert 1.0 < p50_recent <= 5.0
        assert p50_all < 1.0

    def test_quantile_interpolates_within_bucket(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        h = histogram("lat", bounds=self.BOUNDS)
        db.record(t_wall_s=100.0)
        for _ in range(10):
            h.observe(0.3)       # all in the (0.1, 0.5] bucket
        db.record(t_wall_s=101.0)
        p50 = db.window_quantile("lat", 0.5)
        assert 0.1 <= p50 <= 0.5

    def test_overflow_bucket_reports_top_bound(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        h = histogram("lat", bounds=self.BOUNDS)
        db.record(t_wall_s=100.0)
        h.observe(50.0)
        db.record(t_wall_s=101.0)
        assert db.window_quantile("lat", 0.99) == pytest.approx(5.0)

    def test_empty_window_is_none(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        h = histogram("lat", bounds=self.BOUNDS)
        h.observe(0.3)
        db.record(t_wall_s=100.0)
        db.record(t_wall_s=101.0)   # no new observations in this window
        assert db.window_quantile("lat", 0.5, window_s=1.0) is None


class TestSeriesPayload:
    def test_series_is_json_shaped_with_derived_views(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        c = counter("serve.http.predict")
        h = histogram("serve.request_latency_s", bounds=(0.1, 1.0))
        g = gauge("process.rss_bytes")
        for i in range(4):
            c.inc(3)
            h.observe(0.5)
            g.set(1000.0 * i)
            db.record(t_wall_s=100.0 + i)
        payload = db.series()
        assert payload["interval_s"] == 1.0
        assert payload["samples"] == 4
        series = payload["series"]
        assert series["serve.http.predict"]["rate_per_s"][-1] == 3.0
        assert series["process.rss_bytes"]["values"][-1] == 3000.0
        quantiles = series["serve.request_latency_s"]["quantiles"]
        assert set(quantiles) == {"p50", "p99"}

    def test_prefix_filter(self):
        db = TimeSeriesDB(interval_s=1.0, slots=10)
        counter("serve.a").inc()
        counter("jobs.b").inc()
        db.record(t_wall_s=100.0)
        db.record(t_wall_s=101.0)
        assert set(db.series(prefix="serve.")["series"]) == {"serve.a"}

    def test_rolls_over_capacity(self):
        db = TimeSeriesDB(interval_s=1.0, slots=5)
        c = counter("x")
        for i in range(20):
            c.inc()
            db.record(t_wall_s=100.0 + i)
        assert db.samples == 20
        assert len(db.times()) == 5
        assert len(db.series()["series"]["x"]["rate_per_s"]) <= 5


class TestSampler:
    def test_sample_once_records_registry(self):
        counter("a").inc(2)
        sampler = TelemetrySampler(interval_s=60.0, slots=10)
        sampler.sample_once()
        counter("a").inc(3)
        sampler.sample_once()
        assert sampler.db.counter_delta("a") == 3.0
        sampler.close()

    def test_snapshot_errors_counted_not_raised(self):
        def broken():
            raise RuntimeError("boom")
        sampler = TelemetrySampler(interval_s=60.0, slots=10,
                                   snapshot_fn=broken)
        sampler.sample_once()
        assert sampler.stats()["sample_errors"] == 1
        sampler.close()

    def test_start_close_lifecycle(self):
        sampler = TelemetrySampler(interval_s=60.0, slots=10,
                                   snapshot_fn=metrics_snapshot)
        sampler.start()
        assert sampler.db.samples == 1        # the baseline sample
        assert sampler.stats()["running"]
        sampler.close()
        assert not sampler.stats()["running"]

    def test_concurrent_reads_during_writes(self):
        db = TimeSeriesDB(interval_s=1.0, slots=16)
        c = counter("x")
        errors = []

        def writer():
            for i in range(200):
                c.inc()
                db.record(t_wall_s=100.0 + i)

        def reader():
            try:
                for _ in range(200):
                    db.series()
                    db.rate("x", 5.0)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer)] + \
            [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
