"""Thread-count policy for ``scipy.fft`` calls on the hot paths.

scipy's pocketfft backend threads over the *batch* axes of a transform
when passed ``workers=``; the DCT diffusion propagator (nz transforms
per step) and the S4D global convolution (B*C transforms) both batch
enough to benefit.  The count resolves as: explicit
:func:`set_fft_workers` override > ``REPRO_FFT_WORKERS`` > all cores.
Pool workers pin it to 1 (see :mod:`repro.runtime.pool`) so process- and
thread-level parallelism never multiply.

Threading does not change numerics: pocketfft computes identical
results regardless of worker count.
"""

from __future__ import annotations

import os

__all__ = ["fft_workers", "set_fft_workers"]

_override: int | None = None


def fft_workers() -> int:
    """The ``workers=`` value to pass to ``scipy.fft`` transforms."""
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_FFT_WORKERS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(f"REPRO_FFT_WORKERS={env!r} is not an integer") from exc
    return max(1, os.cpu_count() or 1)


def set_fft_workers(count: int | None) -> None:
    """Process-wide override of the FFT thread count (None resets to the
    environment/cpu-count policy)."""
    global _override
    if count is not None:
        count = int(count)
        if count < 1:
            raise ValueError(f"fft worker count must be >= 1, got {count}")
    _override = count
