"""Experiment harness regenerating every table and figure of the paper."""

from .harness import (
    ExperimentSettings, MethodResult, TABLE2_METHODS,
    build_method, build_ablation, prepare_data, train_method,
    evaluate_method, run_methods, sdmpeb_config_for,
)
from . import table2, table3, fig6, fig7, fig8_fig9, runtime, process_window

__all__ = [
    "ExperimentSettings", "MethodResult", "TABLE2_METHODS",
    "build_method", "build_ablation", "prepare_data", "train_method",
    "evaluate_method", "run_methods", "sdmpeb_config_for",
    "table2", "table3", "fig6", "fig7", "fig8_fig9", "runtime", "process_window",
]
