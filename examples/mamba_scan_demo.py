"""Inside the SDM unit: selective scans on depthwise sequences.

A standalone demonstration of the state-space machinery (Section II-B /
III-C): builds a selective SSM, shows the causal selective scan on a
synthetic depthwise signal, compares the sequential kernel with the
chunked "hardware-aware" kernel, and demonstrates the three-direction
PEB selective scan on a feature volume.

    python examples/mamba_scan_demo.py
"""

import time

import numpy as np

from repro import nn
from repro.core import SDMUnit
from repro.ssm import SelectiveSSM, scan_chunked, scan_sequential, hippo_legs_matrix
from repro.tensor import Tensor

rng = np.random.default_rng(0)

print("1) HiPPO initialization (Eq. 6): diagonal of the LegS matrix")
print("   A diag:", np.diag(hippo_legs_matrix(6)))

print("\n2) selective scan kernels agree, chunked is faster on long sequences")
length = 4096
a = np.exp(-rng.uniform(0.01, 2.0, size=(1, length, 8, 4)))
b = rng.standard_normal((1, length, 8, 4))
start = time.perf_counter()
h_seq = scan_sequential(a, b)
t_seq = time.perf_counter() - start
start = time.perf_counter()
h_chunk = scan_chunked(a, b)
t_chunk = time.perf_counter() - start
print(f"   max |difference| = {np.abs(h_seq - h_chunk).max():.2e}")
print(f"   sequential {t_seq * 1e3:.1f} ms vs chunked {t_chunk * 1e3:.1f} ms "
      f"({t_seq / t_chunk:.1f}x)")

print("\n3) SelectiveSSM is causal and input-selective")
nn.init.seed(0)
ssm = SelectiveSSM(channels=4, state_dim=8)
x = rng.standard_normal((1, 12, 4))
y = ssm(Tensor(x)).numpy()
perturbed = x.copy()
perturbed[0, 6] += 5.0
y2 = ssm(Tensor(perturbed)).numpy()
print(f"   change before t=6: {np.abs(y2[0, :6] - y[0, :6]).max():.2e} (causal)")
print(f"   change after  t=6: {np.abs(y2[0, 6:] - y[0, 6:]).max():.2f} (propagates)")

print("\n4) the SDM unit mixes a (B, C, D, H, W) volume across depth")
unit = SDMUnit(channels=6, state_dim=4)
volume = rng.standard_normal((1, 6, 8, 6, 6))
out = unit(Tensor(volume)).numpy()
perturbed = volume.copy()
perturbed[0, 0, 4] += 1.0     # poke one channel at depth level 4
out2 = unit(Tensor(perturbed)).numpy()
per_level = np.abs(out2 - out).max(axis=(0, 1, 3, 4))
print("   max |output change| per depth level after poking level 4:")
for level, change in enumerate(per_level):
    marker = " <- poked" if level == 4 else ""
    print(f"     level {level}: {change:.4f}{marker}")
print("   (non-zero at every level: the three-direction scan carries "
      "information both down and up the resist stack)")
