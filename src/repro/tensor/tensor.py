"""Core reverse-mode autograd tensor.

This module provides the :class:`Tensor` class — an ndarray wrapper that
records the operations applied to it so gradients can be computed with
:meth:`Tensor.backward`.  The design mirrors the classic define-by-run
tape: every differentiable operation creates a new tensor whose
``_parents`` list holds ``(parent_tensor, vjp)`` pairs, where ``vjp`` maps
the output gradient to the contribution to that parent's gradient.

The engine is deliberately small and explicit: the full operator set
lives in the sibling ``ops_*`` modules which attach methods onto
:class:`Tensor` when :mod:`repro.tensor` is imported.
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading

import numpy as np

DEFAULT_DTYPE = np.float64

_state = threading.local()


class SanitizeError(RuntimeError):
    """Raised by the tape sanitizer on a non-finite value or a vjp whose
    output does not match its parent's shape/dtype."""


def _grad_enabled() -> bool:
    return getattr(_state, "grad_enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient recording.

    Operations executed inside the block create constant tensors with no
    tape, which is both faster and lighter on memory.  Used by
    evaluation loops and optimizer update steps.
    """
    previous = _grad_enabled()
    _state.grad_enabled = False
    try:
        yield
    finally:
        _state.grad_enabled = previous


def is_grad_enabled() -> bool:
    """Return whether operations are currently being recorded."""
    return _grad_enabled()


def is_sanitize_enabled() -> bool:
    """Return whether the tape sanitizer is active.

    An explicit :func:`sanitize` block wins; otherwise the
    ``REPRO_SANITIZE`` environment variable decides, so whole test runs
    and CLI invocations can opt in without code changes.
    """
    flag = getattr(_state, "sanitize", None)
    if flag is not None:
        return flag
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false", "False")


@contextlib.contextmanager
def sanitize(enabled: bool = True):
    """Context manager toggling the tape sanitizer.

    While active, every op's forward output is checked for NaN/Inf as it
    is recorded, and every vjp result is checked during backward for
    NaN/Inf and for shape/dtype mismatch against its parent.  Failures
    raise :class:`SanitizeError` naming the offending op and the operand
    shapes, which turns a loss that "goes NaN somewhere" into a stack
    trace pointing at the first bad op.
    """
    previous = getattr(_state, "sanitize", None)
    _state.sanitize = bool(enabled)
    try:
        yield
    finally:
        _state.sanitize = previous


def _is_float_array(arr: np.ndarray) -> bool:
    return np.issubdtype(arr.dtype, np.floating) or np.issubdtype(arr.dtype, np.complexfloating)


def _describe_operands(parents) -> str:
    return ", ".join(f"{tuple(p.shape)}:{p.dtype}" for p, _ in parents) or "<no operands>"


def _sanitize_forward(data: np.ndarray, parents, op_name: str) -> None:
    if _is_float_array(data) and not np.all(np.isfinite(data)):
        bad = int(np.count_nonzero(~np.isfinite(data)))
        raise SanitizeError(
            f"op '{op_name}' produced {bad} non-finite value(s) in output of shape "
            f"{tuple(data.shape)} (operands: {_describe_operands(parents)})"
        )


def _sanitize_vjp(contribution: np.ndarray, parent: "Tensor", op_name: str) -> None:
    contribution = np.asarray(contribution)
    if contribution.shape != parent.data.shape:
        raise SanitizeError(
            f"vjp of op '{op_name}' returned gradient of shape {tuple(contribution.shape)} "
            f"for a parent of shape {tuple(parent.data.shape)}"
        )
    if (_is_float_array(contribution) and _is_float_array(parent.data)
            and contribution.dtype != parent.data.dtype):
        raise SanitizeError(
            f"vjp of op '{op_name}' returned dtype {contribution.dtype} for a parent of "
            f"dtype {parent.data.dtype} (silent promotion)"
        )
    if _is_float_array(contribution) and not np.all(np.isfinite(contribution)):
        bad = int(np.count_nonzero(~np.isfinite(contribution)))
        raise SanitizeError(
            f"vjp of op '{op_name}' produced {bad} non-finite gradient value(s) for a "
            f"parent of shape {tuple(parent.data.shape)}"
        )


def as_array(value, dtype=DEFAULT_DTYPE) -> np.ndarray:
    """Coerce ``value`` (scalar, sequence, ndarray or Tensor) to ndarray."""
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A multidimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array.
    requires_grad:
        If True, gradients will be accumulated into ``self.grad`` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name", "_op")

    # Let Tensor win against ndarray in mixed binary ops.
    __array_priority__ = 200

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents: list[tuple[Tensor, object]] = []
        self.name = name
        self._op: str | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def from_op(data: np.ndarray, parents, op: str | None = None,
                capture=None) -> "Tensor":
        """Create the result tensor of an operation.

        ``parents`` is an iterable of ``(tensor, vjp)`` pairs; pairs whose
        tensor does not require grad are dropped.  When grad recording is
        globally disabled, or no parent requires grad, the result is a
        plain constant tensor.

        ``op`` names the operation for sanitizer error messages; when
        omitted under :func:`sanitize`, the calling function's name is
        used, which matches the public op name for every ``ops_*`` module.

        ``capture`` is the op's plan-capture descriptor, a
        ``(kernel_name, params)`` pair consumed by ``repro.tensor.plan``
        while a plan capture is active on this thread.  Ops that omit it
        abort any in-progress capture (the caller falls back to the
        tape), so un-instrumented custom ops degrade gracefully instead
        of being replayed incorrectly.
        """
        out = Tensor(data)
        builder = getattr(_state, "plan_builder", None)
        if builder is not None:
            parents = list(parents)
            builder.record(out, parents, capture)
        if is_sanitize_enabled():
            parents = list(parents)
            out._op = op or sys._getframe(1).f_code.co_name
            _sanitize_forward(out.data, parents, out._op)
        if _grad_enabled():
            kept = [(p, fn) for p, fn in parents if p.requires_grad]
            if kept:
                out.requires_grad = True
                out._parents = kept
        return out

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        out = Tensor(self.data)
        builder = getattr(_state, "plan_builder", None)
        if builder is not None:
            builder.alias(out, self)
        return out

    def copy(self) -> "Tensor":
        """Return a constant deep copy of this tensor's data."""
        builder = getattr(_state, "plan_builder", None)
        if builder is not None:
            return Tensor.from_op(self.data.copy(), [(self, lambda g: None)],
                                  op="copy", capture=("copy", {}))
        return Tensor(self.data.copy())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a tensor with exactly one element, got shape "
                f"{tuple(self.shape)} ({self.data.size} elements)"
            )
        return float(self.data.reshape(-1)[0])

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults
            to ones, which is the conventional seed for scalar losses.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        seed_owned = False
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
            seed_owned = True
        else:
            grad = as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}")

        sanitizing = is_sanitize_enabled()
        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        # Ownership discipline: a buffer returned by a vjp may alias
        # forward data (identity-like vjps return the incoming gradient,
        # others return cached activations), so it is stored *borrowed*
        # and never written to.  Only buffers this pass allocated itself
        # (`owned`) are accumulated into with np.add(..., out=...);
        # everything else falls back to the allocating `a + b`.
        owned: set[int] = {id(self)} if seed_owned else set()
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if not node._parents:
                # Leaf: accumulate into .grad.  An owned buffer transfers
                # straight into .grad (nothing else references it); a
                # borrowed one is copied so the tape stays untouched.
                if node.grad is None:
                    node.grad = node_grad if id(node) in owned else node_grad.copy()
                elif (node.grad.shape == node_grad.shape
                      and np.result_type(node.grad.dtype, node_grad.dtype) == node.grad.dtype):
                    np.add(node.grad, node_grad, out=node.grad)
                else:
                    node.grad = node.grad + node_grad
                continue
            for parent, vjp in node._parents:
                contribution = vjp(node_grad)
                if contribution is None:
                    continue
                if sanitizing:
                    _sanitize_vjp(contribution, parent, node._op or "<unnamed op>")
                contribution = np.asarray(contribution)
                key = id(parent)
                accumulated = grads.get(key)
                if accumulated is None:
                    grads[key] = contribution
                elif (key in owned
                      and accumulated.shape == contribution.shape
                      and np.result_type(accumulated.dtype, contribution.dtype) == accumulated.dtype):
                    np.add(accumulated, contribution, out=accumulated)
                else:
                    grads[key] = accumulated + contribution
                    owned.add(key)

    def _topological_order(self) -> list["Tensor"]:
        """Nodes reachable from self, ordered output-to-input."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None


def ensure_tensor(value) -> Tensor:
    """Return ``value`` as a Tensor (constants wrap without grad)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)
