"""Process-local metric primitives: counters, timers, histograms.

A :class:`MetricsRegistry` is a flat ``name -> metric`` namespace; the
module-level registry (reached through :func:`counter`, :func:`timer`
and :func:`histogram`) is what the instrumented code paths use.  All
metrics live in plain Python floats/ints — they never allocate numpy
arrays and never touch simulation state, which is what keeps the layer
provably non-perturbing.

Metrics are process-local by design: pool workers fork their own copy
of the registry, and their numbers die with them.  Cross-process
visibility goes through the trace sink (:mod:`repro.obs.trace`), whose
append-only JSONL file is shared by every process.
"""

from __future__ import annotations

import math
import threading
import time


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time level that can go up and down.

    Counters accumulate; gauges are *set* (queue depth, RSS, burn rate).
    The distinction matters at the Prometheus boundary: a gauge renders
    without the ``_total`` suffix and with ``# TYPE ... gauge``, so rate
    queries are never run over a value that was never cumulative.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Timer:
    """Accumulated wall time with count/min/max, usable as a context manager.

    ``with timer("trainer.step").time(): ...`` records one observation;
    :meth:`observe` records an externally measured duration.
    """

    __slots__ = ("name", "count", "total_s", "min_s", "max_s")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def time(self) -> "_TimerContext":
        return _TimerContext(self)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "timer", "count": self.count, "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0, "max_s": self.max_s,
        }


class _TimerContext:
    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer):
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.observe(time.perf_counter() - self._start)


def default_buckets() -> tuple[float, ...]:
    """Geometric decade/half-decade bounds spanning µs to minutes."""
    return tuple(10.0 ** (e / 2.0) for e in range(-12, 5))


class Histogram:
    """Fixed-boundary histogram plus running count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else default_buckets()
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.bucket_counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram", "count": self.count, "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "bounds": list(self.bounds), "bucket_counts": list(self.bucket_counts),
        }


class MetricsRegistry:
    """A flat namespace of metrics, created on first use.

    Asking for an existing name with a different metric kind raises, so
    ``counter("x")`` and ``timer("x")`` can never silently alias.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Timer | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, *args)
                    self._metrics[name] = metric
        if not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)

    def histogram(self, name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
        if name in self._metrics or bounds is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, bounds)

    def snapshot(self) -> dict:
        """``name -> metric snapshot`` for everything ever registered."""
        return {name: metric.snapshot() for name, metric in sorted(self._metrics.items())}

    def reset(self) -> None:
        """Drop every metric (tests; between experiment repetitions)."""
        with self._lock:
            self._metrics.clear()


#: the process-wide registry used by all instrumented code paths
_REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """The process-wide counter called ``name`` (created on first use)."""
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """The process-wide gauge called ``name`` (created on first use)."""
    return _REGISTRY.gauge(name)


def timer(name: str) -> Timer:
    """The process-wide timer called ``name`` (created on first use)."""
    return _REGISTRY.timer(name)


def histogram(name: str, bounds: tuple[float, ...] | None = None) -> Histogram:
    """The process-wide histogram called ``name`` (created on first use)."""
    return _REGISTRY.histogram(name, bounds)


def metrics_snapshot() -> dict:
    """Snapshot of every metric in the process-wide registry."""
    return _REGISTRY.snapshot()


def reset_metrics() -> None:
    """Clear the process-wide registry."""
    return _REGISTRY.reset()
