"""Composite differentiable functions built from the primitive ops."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, ensure_tensor
from . import ops_basic as B
from . import ops_reduce as R
from . import ops_shape as S


def relu(x) -> Tensor:
    """Rectified linear unit."""
    return B.maximum(x, 0.0)


def leaky_relu(x, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU used between the decoder's transposed convolutions."""
    x = ensure_tensor(x)
    positive = x.data >= 0
    scale = np.where(positive, 1.0, negative_slope)
    return Tensor.from_op(x.data * scale, [(x, lambda g: g * scale)],
                          capture=("leaky_relu",
                                   {"negative_slope": negative_slope}))


def silu(x) -> Tensor:
    """SiLU / swish activation, ``x * sigmoid(x)`` — used in the SDM unit."""
    x = ensure_tensor(x)
    return B.mul(x, B.sigmoid(x))


def gelu(x) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = ensure_tensor(x)
    inner = B.mul(B.add(x, B.mul(B.pow_(x, 3.0), 0.044715)), np.sqrt(2.0 / np.pi))
    return B.mul(B.mul(x, 0.5), B.add(B.tanh(inner), 1.0))


def softplus(x) -> Tensor:
    """Numerically stable softplus, ``log(1 + exp(x))``.

    Used by Mamba's Δ parameterisation (Eq. 11 of the paper).
    """
    x = ensure_tensor(x)
    data = x.data
    out = np.maximum(data, 0.0) + np.log1p(np.exp(-np.abs(data)))
    sig = 1.0 / (1.0 + np.exp(-np.clip(data, -60.0, 60.0)))
    return Tensor.from_op(out, [(x, lambda g: g * sig)],
                          capture=("softplus", {}))


def detached_max(x, axis: int = -1) -> Tensor:
    """``max`` over ``axis`` (keepdims) treated as a constant shift.

    The softmax stabilizer must not contribute gradient (the true vjp of
    the shift cancels anyway), but it *is* data-dependent, so it has to
    be an op on the tape: wrapping the raw ndarray in a plain ``Tensor``
    would bake a capture-time value into compiled inference plans.  The
    ``None`` contribution is skipped by ``backward``.
    """
    x = ensure_tensor(x)
    out = x.data.max(axis=axis, keepdims=True)
    return Tensor.from_op(out, [(x, lambda g: None)],
                          capture=("detached_max", {"axis": axis}))


def softmax(x, axis: int = -1) -> Tensor:
    """Softmax along ``axis`` (max-subtracted for stability)."""
    x = ensure_tensor(x)
    shifted = B.sub(x, detached_max(x, axis=axis))
    exps = B.exp(shifted)
    return B.div(exps, R.sum_(exps, axis=axis, keepdims=True))


def log_softmax(x, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``."""
    x = ensure_tensor(x)
    shifted = B.sub(x, detached_max(x, axis=axis))
    lse = B.log(R.sum_(B.exp(shifted), axis=axis, keepdims=True))
    return B.sub(shifted, lse)


def layer_norm(x, weight=None, bias=None, axis: int = -1, eps: float = 1e-5) -> Tensor:
    """Layer normalization over ``axis`` with optional affine parameters."""
    x = ensure_tensor(x)
    mu = R.mean(x, axis=axis, keepdims=True)
    centered = B.sub(x, mu)
    variance = R.mean(B.mul(centered, centered), axis=axis, keepdims=True)
    inv_std = B.pow_(B.add(variance, eps), -0.5)
    normalized = B.mul(centered, inv_std)
    if weight is not None:
        normalized = B.mul(normalized, weight)
    if bias is not None:
        normalized = B.add(normalized, bias)
    return normalized


def mse_loss(prediction, target) -> Tensor:
    """Mean squared error."""
    diff = B.sub(prediction, target)
    return R.mean(B.mul(diff, diff))


# Fallback generator for callers that do not thread their own; seeded so
# repeated runs of the same script stay reproducible.
_DROPOUT_RNG = np.random.default_rng(0)


def dropout(x, p: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout; identity at evaluation time."""
    if not training or p <= 0.0:
        return ensure_tensor(x)
    x = ensure_tensor(x)
    rng = rng if rng is not None else _DROPOUT_RNG
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return Tensor.from_op(x.data * mask, [(x, lambda g: g * mask)])


def flatten_spatial(x) -> Tensor:
    """Flatten (B, C, D, H, W) to the sequence layout (B, C, D*H*W)."""
    b, c = x.shape[:2]
    return S.reshape(x, (b, c, -1))
