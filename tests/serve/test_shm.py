"""Shared-memory weight-segment lifecycle: zero leaked segments after
normal drain, SIGTERM, and simulated worker crash; publish-twice reuses
the segment for an identical manifest hash.

Every test in this module runs under the ``shm_leak_check`` fixture,
which snapshots the live ``/dev/shm/repro-w-*`` population before the
test and asserts the test leaves it exactly as found.
"""

import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.experiments import build_method
from repro.serve import (
    BatchPolicy, ServedModel, load_checkpoint, save_checkpoint,
)
from repro.serve.shm import (
    SEGMENT_PREFIX, attach_views, live_segments, publish_weights,
    release_weights, segment_name, shm_stats,
)

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
SHM_DIR = Path("/dev/shm")


def on_disk_segments() -> set:
    if not SHM_DIR.is_dir():
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*")}


@pytest.fixture(autouse=True)
def shm_leak_check():
    """Snapshot live segments; the test must leave the set unchanged."""
    before = on_disk_segments()
    yield
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = on_disk_segments() - before
        if not leaked:
            break
        time.sleep(0.05)
    assert on_disk_segments() - before == set(), \
        f"leaked shm segments: {on_disk_segments() - before}"
    stale = [s for s in live_segments() if s not in before]
    assert not stale, \
        f"process-local store still tracks released segments: {stale}"


@pytest.fixture(scope="module")
def checkpoint(tmp_path_factory):
    nn.init.seed(0)
    model, _ = build_method("SDM-PEB", GRID)
    model.set_output_stats(0.5, 1.0)
    path = tmp_path_factory.mktemp("shm-ckpt") / "model.npz"
    save_checkpoint(model, path, method="SDM-PEB", grid=GRID)
    return path


def tiny_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "layer.weight": rng.random((4, 3)),
        "layer.bias": rng.random((4,)),
        "head.weight": rng.random((2, 4)),
    }


FAKE_HASH = "sha256:" + "ab" * 32
OTHER_HASH = "sha256:" + "cd" * 32


class TestPublishAttachRelease:
    def test_views_are_readonly_and_exact(self):
        state = tiny_state()
        store = publish_weights(state, FAKE_HASH)
        try:
            views = store.views()
            assert set(views) == set(state)
            for name, view in views.items():
                assert view.dtype == np.float64
                assert np.array_equal(view, state[name])
                with pytest.raises(ValueError):
                    view[...] = 0.0
        finally:
            release_weights(store)
        assert segment_name(FAKE_HASH) not in on_disk_segments()

    def test_attach_views_maps_same_bytes(self):
        state = tiny_state(1)
        store = publish_weights(state, FAKE_HASH)
        try:
            shm, views = attach_views(store.spec)
            for name in state:
                assert np.array_equal(views[name], state[name])
                assert not views[name].flags.writeable
            del views
            shm.close()
        finally:
            release_weights(store)

    def test_publish_twice_reuses_segment_for_identical_hash(self):
        state = tiny_state(2)
        first = publish_weights(state, FAKE_HASH)
        second = publish_weights(state, FAKE_HASH)
        assert second is first
        assert first.refs == 2
        assert shm_stats()["segment_count"] >= 1
        release_weights(first)
        # still alive: one reference remains
        assert segment_name(FAKE_HASH) in on_disk_segments()
        release_weights(second)
        assert segment_name(FAKE_HASH) not in on_disk_segments()

    def test_distinct_hashes_get_distinct_segments(self):
        a = publish_weights(tiny_state(3), FAKE_HASH)
        b = publish_weights(tiny_state(4), OTHER_HASH)
        try:
            assert a.name != b.name
            names = {s["name"] for s in shm_stats()["segments"]}
            assert {a.name, b.name} <= names
        finally:
            release_weights(a)
            release_weights(b)

    def test_stale_on_disk_segment_is_repacked(self):
        """A leftover segment with wrong bytes (crashed previous run) is
        unlinked and repacked rather than adopted."""
        state = tiny_state(5)
        name = segment_name(FAKE_HASH)
        stale = shared_memory.SharedMemory(name=name, create=True, size=64)
        stale.buf[:8] = b"garbage!"
        stale.close()
        store = publish_weights(state, FAKE_HASH)
        try:
            assert np.array_equal(store.views()["layer.weight"],
                                  state["layer.weight"])
        finally:
            release_weights(store)


class TestServedModelLifecycle:
    def test_normal_drain_unlinks(self, checkpoint):
        loaded, manifest = load_checkpoint(checkpoint)
        served = ServedModel(loaded, manifest, BatchPolicy(max_batch_size=1),
                             workers=2)
        name = segment_name(manifest.content_hash)
        assert name in on_disk_segments()
        served.close(drain=True)
        assert name not in on_disk_segments()

    def test_two_served_models_share_one_segment(self, checkpoint):
        loaded_a, manifest = load_checkpoint(checkpoint)
        loaded_b, _ = load_checkpoint(checkpoint)
        a = ServedModel(loaded_a, manifest, BatchPolicy(max_batch_size=1),
                        workers=2)
        b = ServedModel(loaded_b, manifest, BatchPolicy(max_batch_size=1),
                        workers=2)
        name = segment_name(manifest.content_hash)
        matching = [s for s in shm_stats()["segments"] if s["name"] == name]
        assert len(matching) == 1 and matching[0]["refs"] == 2
        a.close()
        assert name in on_disk_segments()   # b still holds a reference
        b.close()
        assert name not in on_disk_segments()

    def test_worker_crash_does_not_leak(self, checkpoint):
        """SIGKILLed workers never unlink (only the publisher does); the
        parent's close still removes the segment exactly once."""
        loaded, manifest = load_checkpoint(checkpoint)
        served = ServedModel(loaded, manifest, BatchPolicy(max_batch_size=1),
                             workers=2)
        name = segment_name(manifest.content_hash)
        for handle in served.pool._workers:
            os.kill(handle.process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            stats = served.pool.stats()
            if stats["alive"] == stats["workers"] and stats["restarts"] >= 2:
                break
            time.sleep(0.05)
        assert name in on_disk_segments()
        served.close()
        assert name not in on_disk_segments()


class TestSigtermDrain:
    def test_sigterm_unlinks_segments(self, checkpoint, tmp_path):
        """A pooled CLI server receiving SIGTERM drains and unlinks its
        weight segment on the way out."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env.pop("REPRO_SERVE_WORKERS", None)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--ckpt", str(checkpoint), "--port", "0", "--serve-workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            cwd=Path(__file__).resolve().parents[2], env=env)
        try:
            loaded, manifest = load_checkpoint(checkpoint)
            name = segment_name(manifest.content_hash)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if name in on_disk_segments():
                    break
                if process.poll() is not None:
                    break
                time.sleep(0.05)
            assert process.poll() is None, \
                f"server died early:\n{process.stdout.read()}"
            assert name in on_disk_segments()
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60.0)
            assert name not in on_disk_segments()
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(10.0)
