"""Summarize a trace JSONL file into a per-span table.

This is the consumer side of :mod:`repro.obs.trace`: load the events,
aggregate spans by name, and render a text table — what ``python -m
repro.cli report trace.jsonl`` prints and what the benchmark harness
embeds into ``BENCH_perf.json`` as the stage breakdown.

Aggregation is by span *name* across all processes.  ``total_s`` sums
wall-clock durations, so for spans that ran concurrently in pool
workers it can legitimately exceed the enclosing span's duration —
that is CPU-seconds across the fleet, not elapsed time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SpanSummary", "load_events", "summarize_spans", "format_report"]


@dataclass
class SpanSummary:
    """Aggregate statistics for every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0
    pids: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def load_events(path: str | Path) -> list[dict]:
    """Parse a JSONL trace; skips blank/corrupt lines (a truncated last
    line from a killed — or still-appending — process must not poison
    the whole report).

    The file is read as bytes and decoded per line: a live writer's
    partial last line can end mid-multi-byte-UTF-8-sequence, which would
    raise ``UnicodeDecodeError`` during text-mode iteration before any
    JSON filtering got the chance to skip it.
    """
    events = []
    with open(path, "rb") as handle:
        payload = handle.read()
    for raw in payload.split(b"\n"):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


def summarize_spans(events: list[dict]) -> list[SpanSummary]:
    """Aggregate span events by name, sorted by descending total time."""
    by_name: dict[str, SpanSummary] = {}
    pids_by_name: dict[str, set] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        name = str(event.get("name", "<unnamed>"))
        duration = float(event.get("dur_s", 0.0))
        summary = by_name.get(name)
        if summary is None:
            summary = by_name[name] = SpanSummary(name=name)
            pids_by_name[name] = set()
        summary.count += 1
        summary.total_s += duration
        summary.min_s = min(summary.min_s, duration)
        summary.max_s = max(summary.max_s, duration)
        pids_by_name[name].add(event.get("pid"))
    for name, summary in by_name.items():
        summary.pids = len(pids_by_name[name])
    return sorted(by_name.values(), key=lambda s: (-s.total_s, s.name))


def format_report(summaries: list[SpanSummary], limit: int | None = None,
                  title: str | None = None) -> str:
    """Render the per-span table (share is of the largest total)."""
    lines = []
    if title:
        lines.append(title)
    header = (f"{'span':<28} {'count':>7} {'total_s':>10} {'mean_s':>10} "
              f"{'min_s':>10} {'max_s':>10} {'pids':>5} {'share':>7}")
    lines.append(header)
    lines.append("-" * len(header))
    if not summaries:
        lines.append("(no span events)")
        return "\n".join(lines)
    reference = summaries[0].total_s or 1.0
    shown = summaries if limit is None else summaries[:limit]
    for s in shown:
        lines.append(
            f"{s.name:<28} {s.count:>7d} {s.total_s:>10.4f} {s.mean_s:>10.5f} "
            f"{s.min_s:>10.5f} {s.max_s:>10.5f} {s.pids:>5d} "
            f"{100.0 * s.total_s / reference:>6.1f}%")
    if limit is not None and len(summaries) > limit:
        lines.append(f"... {len(summaries) - limit} more span name(s)")
    return "\n".join(lines)
