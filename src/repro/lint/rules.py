"""The REP rule catalog.

Each rule encodes one correctness invariant of this codebase; see
``docs/static_analysis.md`` for the rationale and examples.  Rules are
AST-based, consulting raw source lines only where the AST cannot see
(comments, for REP006 and suppressions).
"""

from __future__ import annotations

import ast

from .core import LintFile, Rule, register_rule

#: subpackages whose allocations feed the training/solver hot paths
HOT_PACKAGES = ("tensor", "ssm", "litho", "nn")

#: numpy allocation functions whose default dtype is easy to change by
#: accident (``*_like`` variants inherit their dtype and are exempt;
#: ``arange`` is exempt because its int/float inference is semantic)
ALLOC_FUNCTIONS = frozenset({"zeros", "ones", "empty", "full", "eye", "identity", "linspace"})

#: members of ``np.random`` that are part of the modern Generator API
ALLOWED_RANDOM_ATTRS = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "SFC64",
})

#: frameworks banned from ``src/`` by the pure-numpy/scipy policy
BANNED_IMPORTS = frozenset({
    "torch", "torchvision", "einops", "jax", "jaxlib", "flax",
    "tensorflow", "keras", "cupy", "mxnet", "paddle",
})

#: field-name suffixes that already name a physical unit
UNIT_SUFFIXES = ("_nm", "_um", "_s", "_nm_s", "_mj_cm2", "_per_um", "_per_s", "_cm2", "_hz",
                 "_deg", "_fraction")


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted-name reconstruction ('np.random.rand')."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@register_rule
class NoLegacyRandom(Rule):
    """REP001: randomness must flow through seeded ``np.random.Generator``s."""

    id = "REP001"
    severity = "error"
    description = ("no legacy np.random.* calls and no unseeded default_rng(); "
                   "thread a seeded Generator instead")

    def check(self, file: LintFile):
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted.startswith(("np.random.", "numpy.random.")):
                    attr = dotted.rsplit(".", 1)[1]
                    if attr not in ALLOWED_RANDOM_ATTRS:
                        yield self.report(
                            file, node,
                            f"legacy global-state RNG `{dotted}`; use a seeded "
                            f"np.random.default_rng(seed) Generator and thread it through",
                        )
            elif isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted.endswith("default_rng") and not node.args and not node.keywords:
                    yield self.report(
                        file, node,
                        "unseeded default_rng(): pass an explicit seed or accept a "
                        "Generator argument so runs stay reproducible",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.startswith("numpy.random"):
                    for alias in node.names:
                        if alias.name not in ALLOWED_RANDOM_ATTRS:
                            yield self.report(
                                file, node,
                                f"legacy import `{alias.name}` from numpy.random; "
                                f"use default_rng/Generator",
                            )


@register_rule
class ExplicitDtype(Rule):
    """REP002: hot-path array allocations must pin their dtype."""

    id = "REP002"
    severity = "error"
    description = ("array allocations in tensor/, ssm/, litho/ and nn/ must pass an "
                   "explicit dtype= to prevent silent float32/float64 promotion")

    def check(self, file: LintFile):
        if not file.in_package(*HOT_PACKAGES):
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            root, _, func = dotted.rpartition(".")
            if root not in ("np", "numpy") or func not in ALLOC_FUNCTIONS:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # positional dtype: zeros/ones/empty take it 2nd, full/linspace 3rd
            positional_slot = {"full": 2, "linspace": 2}.get(func, 1)
            if len(node.args) > positional_slot:
                continue
            yield self.report(
                file, node,
                f"np.{func}(...) without dtype= in a hot-path package; "
                f"pass dtype explicitly (e.g. dtype=np.float64)",
            )


class _OpFunctionInfo:
    """Per-function facts gathered for REP003."""

    def __init__(self) -> None:
        self.ensured: dict[str, ast.AST] = {}   # name -> node where ensured
        self.credited: set[str] = set()
        self.from_op_calls: list[ast.Call] = []


def _is_ensure_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and _dotted(node.func).split(".")[-1] == "ensure_tensor")


def _contains_ensure(node: ast.AST) -> bool:
    return any(_is_ensure_call(inner) for inner in ast.walk(node))


@register_rule
class TapeParentsHaveVjps(Rule):
    """REP003: every ensured operand of a primitive op must be recorded
    on the tape with a vjp."""

    id = "REP003"
    severity = "error"
    description = ("every input passed through ensure_tensor() in an op that records "
                   "the tape via Tensor.from_op must appear as a (tensor, vjp) parent "
                   "pair (or be routed through another differentiable op)")

    def _applies(self, file: LintFile) -> bool:
        pkg = file.package_path()
        return pkg.startswith("tensor/") and (
            pkg.rsplit("/", 1)[-1].startswith("ops_") or pkg.endswith("functional.py")
        )

    def check(self, file: LintFile):
        if not self._applies(file):
            return
        for node in ast.walk(file.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(file, node)

    def _check_function(self, file: LintFile, func: ast.FunctionDef):
        info = _OpFunctionInfo()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                self._record_ensured(node, info)
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                callee = dotted.split(".")[-1]
                if callee == "from_op":
                    info.from_op_calls.append(node)
                elif callee not in ("ensure_tensor", "Tensor"):
                    # an ensured tensor handed to another op (reshape, add,
                    # getitem, ...) is differentiated by composition
                    for arg in node.args:
                        if isinstance(arg, ast.Name):
                            info.credited.add(arg.id)
            if isinstance(node, ast.Tuple) and len(node.elts) == 2:
                first = node.elts[0]
                if isinstance(first, ast.Name):
                    info.credited.add(first.id)
            if isinstance(node, (ast.For, ast.comprehension)):
                # iterating a tracked collection credits the collection
                iter_node = node.iter
                for name in ast.walk(iter_node):
                    if isinstance(name, ast.Name):
                        info.credited.add(name.id)

        if not info.from_op_calls:
            return  # composite op: differentiability comes from its callees

        for call in info.from_op_calls:
            yield from self._check_parent_pairs(file, call)

        for name, node in info.ensured.items():
            if name not in info.credited:
                yield self.report(
                    file, node,
                    f"`{name}` is ensured as a tensor but never recorded as a "
                    f"(tensor, vjp) parent in Tensor.from_op — its gradient "
                    f"would silently vanish",
                )

    def _record_ensured(self, node: ast.Assign, info: _OpFunctionInfo) -> None:
        targets = node.targets[0]
        if isinstance(targets, ast.Tuple) and isinstance(node.value, ast.Tuple):
            pairs = zip(targets.elts, node.value.elts)
        else:
            pairs = [(targets, node.value)]
        for target, value in pairs:
            if not isinstance(target, ast.Name):
                continue
            if _is_ensure_call(value):
                info.ensured[target.id] = target
            elif isinstance(value, ast.ListComp) and _contains_ensure(value):
                info.ensured[target.id] = target

    def _check_parent_pairs(self, file: LintFile, call: ast.Call):
        if len(call.args) < 2 or not isinstance(call.args[1], ast.List):
            return
        for element in call.args[1].elts:
            if not isinstance(element, ast.Tuple) or len(element.elts) != 2:
                yield self.report(
                    file, element,
                    "tape parent must be a (tensor, vjp) 2-tuple",
                )
                continue
            vjp = element.elts[1]
            if not isinstance(vjp, (ast.Lambda, ast.Name, ast.Attribute, ast.Call)):
                yield self.report(
                    file, element,
                    "tape parent's second element must be a vjp callable",
                )


@register_rule
class PureNumpyPolicy(Rule):
    """REP004: src/ stays pure numpy/scipy."""

    id = "REP004"
    severity = "error"
    description = "no torch/einops/jax/tensorflow imports in src/ (pure numpy+scipy policy)"

    def check(self, file: LintFile):
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                names = [node.module] if node.module else []
            else:
                continue
            for name in names:
                root = name.split(".")[0]
                if root in BANNED_IMPORTS:
                    yield self.report(
                        file, node,
                        f"import of `{root}` violates the pure numpy/scipy policy; "
                        f"implement on the repro.tensor substrate instead",
                    )


@register_rule
class ModuleTensorAttrs(Rule):
    """REP005: Module subclasses must not stash raw Tensors as attributes."""

    id = "REP005"
    severity = "error"
    description = ("nn.Module subclasses must register learnable Tensor attributes as "
                   "Parameter (raw Tensor attributes are invisible to parameters()/"
                   "state_dict())")

    def check(self, file: LintFile):
        module_classes = self._module_classes(file.tree)
        for cls in module_classes:
            for method in cls.body:
                if isinstance(method, ast.FunctionDef) and method.name == "__init__":
                    yield from self._check_init(file, cls, method)

    def _module_classes(self, tree: ast.Module) -> list[ast.ClassDef]:
        classes = [n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)]
        module_like = {"Module"}
        # transitive within-file: iterate until no new subclass is found
        changed = True
        while changed:
            changed = False
            for cls in classes:
                if cls.name in module_like:
                    continue
                for base in cls.bases:
                    base_name = _dotted(base).split(".")[-1]
                    if base_name in module_like:
                        module_like.add(cls.name)
                        changed = True
                        break
        return [c for c in classes if c.name in module_like and c.name != "Module"]

    def _check_init(self, file: LintFile, cls: ast.ClassDef, init: ast.FunctionDef):
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                callee = _dotted(value.func).split(".")[-1]
                if callee in ("Tensor", "ensure_tensor"):
                    yield self.report(
                        file, node,
                        f"{cls.name}.{target.attr} holds a raw Tensor; wrap it in "
                        f"Parameter(...) to register it, or store a plain ndarray "
                        f"if it is a constant buffer",
                    )


@register_rule
class ConfigFieldsCarryUnits(Rule):
    """REP006: physical config fields must state their units."""

    id = "REP006"
    severity = "warning"
    description = ("float fields of the litho config dataclasses must carry physical "
                   "units, either as a name suffix (_nm, _s, ...) or an adjacent "
                   "comment (dimensionless quantities included)")

    def check(self, file: LintFile):
        if file.package_path() != "config.py" and not file.in_package("litho"):
            return
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(_dotted(d).split(".")[-1] == "dataclass"
                       or (isinstance(d, ast.Call) and _dotted(d.func).split(".")[-1] == "dataclass")
                       for d in node.decorator_list):
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
                    continue
                if _dotted(stmt.annotation) != "float":
                    continue
                name = stmt.target.id
                if name.endswith(UNIT_SUFFIXES):
                    continue
                if file.comment_on_or_above(stmt.lineno):
                    continue
                yield self.report(
                    file, stmt,
                    f"config field `{node.name}.{name}` has no unit: add a unit "
                    f"suffix to the name or a `#:`/inline comment stating the unit "
                    f"(or that it is dimensionless)",
                )
