"""Dihedral augmentation: exact equivariance of volumes and contacts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GridConfig, LithoConfig
from repro.data import (
    PEBDataset, PEBSample, augment_dataset, augment_sample,
    transform_contact, transform_volume,
)
from repro.litho.mask import Contact, rasterize

GRID = GridConfig(size_um=0.64, nx=32, ny=32, nz=2)


def make_sample(seed=0):
    rng = np.random.default_rng(seed)
    volume = rng.random(GRID.shape)
    return PEBSample(seed=seed, acid=volume, inhibitor=volume.copy(),
                     label=volume.copy(),
                     contacts=(Contact(200.0, 400.0, 60.0, 90.0),),
                     rigorous_seconds=1.0)


class TestTransformVolume:
    def test_identity(self):
        volume = make_sample().acid
        assert np.array_equal(transform_volume(volume, 0, False), volume)

    def test_four_rotations_identity(self):
        volume = make_sample().acid
        out = volume
        for _ in range(4):
            out = transform_volume(out, 1, False)
        assert np.array_equal(out, volume)

    def test_double_flip_identity(self):
        volume = make_sample().acid
        assert np.array_equal(
            transform_volume(transform_volume(volume, 0, True), 0, True), volume)

    def test_depth_untouched(self):
        volume = make_sample().acid
        out = transform_volume(volume, 1, True)
        assert np.allclose(out.sum(axis=(1, 2)), volume.sum(axis=(1, 2)))


class TestTransformContact:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 3), st.booleans(),
           st.floats(100.0, 540.0), st.floats(100.0, 540.0),
           st.floats(20.0, 80.0), st.floats(20.0, 80.0))
    def test_property_rasterization_commutes(self, rotations, flip, cx, cy, w, h):
        """Rasterize-then-transform == transform-then-rasterize."""
        contact = Contact(cx, cy, w, h)
        pattern = rasterize([contact], GRID)
        volume = np.broadcast_to(pattern, GRID.shape).copy()
        transformed_volume = transform_volume(volume, rotations, flip)
        transformed_contact = transform_contact(contact, rotations, flip, GRID)
        expected = rasterize([transformed_contact], GRID)
        assert np.allclose(transformed_volume[0], expected, atol=1e-9)

    def test_rotation_swaps_width_height(self):
        contact = Contact(200.0, 300.0, 60.0, 90.0)
        rotated = transform_contact(contact, 1, False, GRID)
        assert rotated.width_nm == 90.0 and rotated.height_nm == 60.0


class TestAugmentDataset:
    def test_eightfold_expansion(self):
        dataset = PEBDataset(LithoConfig(grid=GRID), [make_sample(0), make_sample(1)])
        augmented = augment_dataset(dataset)
        assert len(augmented) == 16

    def test_all_variants_distinct(self):
        dataset = PEBDataset(LithoConfig(grid=GRID), [make_sample(0)])
        augmented = augment_dataset(dataset)
        flattened = {augmented.samples[i].acid.tobytes() for i in range(8)}
        assert len(flattened) == 8

    def test_identity_sample_preserved(self):
        sample = make_sample()
        dataset = PEBDataset(LithoConfig(grid=GRID), [sample])
        augmented = augment_dataset(dataset)
        assert any(np.array_equal(s.acid, sample.acid) for s in augmented.samples)

    def test_non_square_grid_rejected(self):
        grid = GridConfig(size_um=0.64, nx=32, ny=16, nz=2)
        dataset = PEBDataset(LithoConfig(grid=grid), [])
        with pytest.raises(ValueError):
            augment_dataset(dataset)

    def test_custom_ops_subset(self):
        dataset = PEBDataset(LithoConfig(grid=GRID), [make_sample()])
        augmented = augment_dataset(dataset, ops=((0, False), (2, False)))
        assert len(augmented) == 2

    def test_augmented_sample_roundtrip_metadata(self):
        sample = make_sample()
        out = augment_sample(sample, 1, True, GRID)
        assert out.seed == sample.seed
        assert out.rigorous_seconds == sample.rigorous_seconds
        assert len(out.contacts) == len(sample.contacts)
