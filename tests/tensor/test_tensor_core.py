"""Tensor class mechanics not covered by the op suites."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, as_array, ensure_tensor
from repro.tensor.tensor import unbroadcast


class TestConstruction:
    def test_from_scalar(self):
        t = Tensor(3.0)
        assert t.shape == () and t.item() == 3.0

    def test_from_list(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.shape == (2, 2) and t.dtype == np.float64

    def test_as_array_passthrough(self):
        t = Tensor([1.0])
        assert as_array(t) is t.data

    def test_ensure_tensor_idempotent(self):
        t = Tensor([1.0])
        assert ensure_tensor(t) is t
        assert isinstance(ensure_tensor(2.0), Tensor)

    def test_name_in_repr(self):
        t = Tensor([1.0], requires_grad=True, name="weights")
        text = repr(t)
        assert "weights" in text and "requires_grad=True" in text

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3 and t.size == 12 and t.ndim == 2


class TestDetachCopy:
    def test_detach_shares_data(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert d.data is t.data and not d.requires_grad

    def test_copy_is_deep(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0


class TestBackwardValidation:
    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_seed_gradient_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward(np.zeros(3))

    def test_intermediate_nodes_do_not_keep_grad(self):
        x = Tensor([1.0], requires_grad=True)
        middle = x * 2.0
        (middle * 3.0).sum().backward()
        assert middle.grad is None   # only leaves accumulate
        assert np.allclose(x.grad, [6.0])

    def test_diamond_graph_accumulates_once(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).sum().backward()
        assert np.allclose(x.grad, [7.0])


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert unbroadcast(g, (2, 3))[0, 0] == 4.0

    def test_sums_singleton_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1) and out[0, 0] == 3.0

    def test_scalar_target(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, ()).shape == ()


class TestNoGradNesting:
    def test_nested_restores(self):
        assert T.is_grad_enabled()
        with T.no_grad():
            assert not T.is_grad_enabled()
            with T.no_grad():
                assert not T.is_grad_enabled()
            assert not T.is_grad_enabled()
        assert T.is_grad_enabled()

    def test_exception_restores(self):
        try:
            with T.no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert T.is_grad_enabled()


class TestMixedOperands:
    def test_tensor_plus_ndarray(self):
        out = Tensor([1.0, 2.0]) + np.array([3.0, 4.0])
        assert isinstance(out, Tensor)
        assert np.allclose(out.data, [4.0, 6.0])

    def test_ndarray_times_tensor_stays_tensor(self):
        out = np.array([2.0]) * Tensor([3.0])
        assert isinstance(out, Tensor)
        assert np.allclose(out.data, [6.0])
