"""LTI (S4D) state-space model: recurrence vs Eq. 9 convolution form."""

import numpy as np
import pytest

from repro import nn
from repro.ssm import LTISSM, lti_kernel, causal_conv_fft
from repro.tensor import Tensor

RNG = np.random.default_rng(41)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestKernel:
    def test_kernel_shape(self):
        a_bar = np.full((3, 2), 0.9)
        b_bar = np.ones((3, 2))
        c = np.ones((3, 2))
        kernel = lti_kernel(a_bar, b_bar, c, length=5)
        assert kernel.shape == (3, 5)

    def test_kernel_values_single_state(self):
        """K̄[t] = c * a^t * b for N = 1 (geometric impulse response)."""
        a_bar = np.array([[0.5]])
        b_bar = np.array([[2.0]])
        c = np.array([[3.0]])
        kernel = lti_kernel(a_bar, b_bar, c, length=4)
        assert np.allclose(kernel[0], [6.0, 3.0, 1.5, 0.75])

    def test_causal_conv_matches_direct(self):
        x = rand(1, 6, 1)
        kernel = rand(1, 6)
        out = causal_conv_fft(x, kernel)
        direct = np.array([
            sum(kernel[0, j] * x[0, t - j, 0] for j in range(t + 1))
            for t in range(6)
        ])
        assert np.allclose(out[0, :, 0], direct)


class TestLTISSM:
    def test_output_shape(self):
        nn.init.seed(0)
        ssm = LTISSM(channels=3, state_dim=4)
        assert ssm(Tensor(rand(2, 7, 3))).shape == (2, 7, 3)

    def test_scan_and_conv_modes_agree(self):
        nn.init.seed(1)
        scan = LTISSM(channels=3, state_dim=4, mode="scan")
        nn.init.seed(1)
        conv = LTISSM(channels=3, state_dim=4, mode="conv")
        x = Tensor(rand(1, 16, 3))
        assert np.allclose(scan(x).numpy(), conv(x).numpy(), atol=1e-10)

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            LTISSM(channels=2, mode="butterfly")

    def test_wrong_channels_raises(self):
        ssm = LTISSM(channels=3)
        with pytest.raises(ValueError):
            ssm(Tensor(rand(1, 4, 2)))

    def test_time_invariance(self):
        """Shifting the input shifts the output (no selection)."""
        nn.init.seed(2)
        ssm = LTISSM(channels=2, state_dim=3)
        x = np.zeros((1, 12, 2))
        x[0, 2] = 1.0
        y = ssm(Tensor(x)).numpy()
        shifted = np.zeros((1, 12, 2))
        shifted[0, 5] = 1.0
        y_shifted = ssm(Tensor(shifted)).numpy()
        assert np.allclose(y[0, 2:9], y_shifted[0, 5:], atol=1e-10)

    def test_lti_is_homogeneous(self):
        """The LTI map is linear: y(2x) = 2 y(x)."""
        nn.init.seed(3)
        ssm = LTISSM(channels=2, state_dim=3)
        x = rand(1, 10, 2)
        y1 = ssm(Tensor(x)).numpy()
        y2 = ssm(Tensor(2.0 * x)).numpy()
        assert np.allclose(y2, 2.0 * y1, atol=1e-9)

    def test_selective_ssm_is_not_homogeneous(self):
        """Contrast: Mamba's input-dependent (B, C, Δ) breaks linearity —
        that nonlinearity *is* the selection mechanism."""
        from repro.ssm import SelectiveSSM

        nn.init.seed(3)
        ssm = SelectiveSSM(channels=2, state_dim=3)
        x = rand(1, 10, 2)
        y1 = ssm(Tensor(x)).numpy()
        y2 = ssm(Tensor(2.0 * x)).numpy()
        assert not np.allclose(y2, 2.0 * y1, atol=1e-6)

    def test_gradients_flow_scan_mode(self):
        nn.init.seed(4)
        ssm = LTISSM(channels=2, state_dim=2, mode="scan")
        x = Tensor(rand(1, 6, 2), requires_grad=True)
        ssm(x).sum().backward()
        assert x.grad is not None
        for name, param in ssm.named_parameters():
            assert param.grad is not None, name

    def test_conv_mode_input_gradient(self):
        nn.init.seed(5)
        scan = LTISSM(channels=2, state_dim=2, mode="scan")
        nn.init.seed(5)
        conv = LTISSM(channels=2, state_dim=2, mode="conv")
        data = rand(1, 8, 2)
        x1 = Tensor(data.copy(), requires_grad=True)
        scan(x1).sum().backward()
        x2 = Tensor(data.copy(), requires_grad=True)
        conv(x2).sum().backward()
        assert np.allclose(x1.grad, x2.grad, atol=1e-9)


class TestSDMUnitWithLTI:
    def test_unit_builds_and_runs(self):
        from repro.core import SDMUnit

        nn.init.seed(6)
        unit = SDMUnit(channels=4, state_dim=2, ssm_type="lti")
        out = unit(Tensor(rand(1, 4, 2, 3, 3)))
        assert out.shape == (1, 4, 2, 3, 3)

    def test_invalid_ssm_type_raises(self):
        from repro.core import SDMUnit

        with pytest.raises(ValueError):
            SDMUnit(channels=4, ssm_type="transformer")

    def test_lti_and_selective_differ(self):
        from repro.core import SDMUnit

        nn.init.seed(7)
        lti = SDMUnit(channels=4, state_dim=2, ssm_type="lti")
        nn.init.seed(7)
        selective = SDMUnit(channels=4, state_dim=2, ssm_type="selective")
        x = Tensor(rand(1, 4, 2, 3, 3))
        assert not np.allclose(lti(x).numpy(), selective(x).numpy())

    def test_model_config_flag(self):
        from repro.core import SDMPEB
        from repro.experiments import sdmpeb_config_for
        from repro.config import GridConfig

        nn.init.seed(8)
        grid = GridConfig(size_um=1.0, nx=32, ny=32, nz=4)
        model = SDMPEB(sdmpeb_config_for(grid, ssm_type="lti"))
        assert model.encoders[0].sdm.ssm_type == "lti"

    def test_ablation_registry_entry(self):
        from repro.experiments import build_ablation
        from repro.config import GridConfig

        nn.init.seed(9)
        model, _ = build_ablation("LTI SSM", GridConfig(size_um=1.0, nx=32, ny=32, nz=4))
        assert model.encoders[0].sdm.ssm_type == "lti"
