"""REP105 fixture: ContextVar.set with a discarded token (line 9)."""

import contextvars

_REQUEST = contextvars.ContextVar("request", default=None)


def handle(request_id):
    _REQUEST.set(request_id)
    return work()


def handle_safe(request_id):
    token = _REQUEST.set(request_id)
    try:
        return work()
    finally:
        _REQUEST.reset(token)


def work():
    return _REQUEST.get()
