"""Executor: scheduling, checkpointed resume, SIGKILL fault injection.

The kill tests follow tests/serve/test_fault_injection.py: the
``step_delay_s`` knob makes the step child sleep before each step, and
the parent-side ``busy`` flag + ``child_pid`` land the SIGKILL
deterministically inside a chunk.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.jobs import JobExecutor, JobExecutorConfig, JobStore
from repro.jobs.types import CounterJob


def wait_until(predicate, timeout_s: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


def make_executor(store, **overrides):
    overrides.setdefault("poll_interval_s", 0.02)
    return JobExecutor(store, JobExecutorConfig(**overrides))


def reference_checksum(iterations: int) -> int:
    job = CounterJob({"iterations": iterations})
    state = job.init_state()
    while not job.done(state):
        state, _ = job.step(state)
    result, _ = job.finalize(state)
    return result["checksum"]


class TestHappyPath:
    def test_counter_job_completes(self, store):
        record = store.submit("counter", {"iterations": 7})
        executor = make_executor(store).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "completed")
        finally:
            executor.close()
        final = store.get(record.id)
        assert final.result["iterations"] == 7
        assert final.result["checksum"] == reference_checksum(7)
        assert final.progress["iteration"] == 7

    def test_jobs_run_oldest_first(self, store):
        first = store.submit("counter", {"iterations": 2})
        second = store.submit("counter", {"iterations": 2})
        executor = make_executor(store).start()
        try:
            assert wait_until(
                lambda: store.get(second.id).state == "completed")
        finally:
            executor.close()
        assert store.get(first.id).updated_s <= store.get(second.id).updated_s

    def test_inline_mode_completes(self, store):
        record = store.submit("counter", {"iterations": 5})
        executor = make_executor(store, use_fork=False).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "completed")
        finally:
            executor.close()
        assert store.get(record.id).result["checksum"] == reference_checksum(5)

    def test_opc_gradient_job_completes_and_improves(self, store, tmp_path):
        record = store.submit("opc_gradient", {
            "seed": 3, "nx": 32, "ny": 32, "nz": 2, "size_um": 0.8,
            "iterations": 3,
        })
        executor = make_executor(store, checkpoint_every=1,
                                 chunk_timeout_s=600.0).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "completed",
                timeout_s=300.0)
        finally:
            executor.close()
        result = store.get(record.id).result
        assert result["final_rms_nm"] < result["initial_rms_nm"]
        assert result["forward_solves"] == 3 + 1


class TestFailurePaths:
    def test_bad_job_type_fails_cleanly(self, store):
        record = store.submit("no_such_type", {})
        executor = make_executor(store).start()
        try:
            assert wait_until(lambda: store.get(record.id).state == "failed")
        finally:
            executor.close()
        assert "unknown job type" in store.get(record.id).error

    def test_raising_stepper_fails_job(self, store):
        record = store.submit("counter", {"iterations": 5, "fail_at": 2})
        executor = make_executor(store).start()
        try:
            assert wait_until(lambda: store.get(record.id).state == "failed")
        finally:
            executor.close()
        assert "failed at 2" in store.get(record.id).error

    def test_crash_beyond_max_attempts_fails(self, store):
        record = store.submit("counter", {"iterations": 50})
        executor = make_executor(store, step_delay_s=0.2,
                                 max_attempts=2).start()
        try:
            for _ in range(2):
                assert wait_until(lambda: executor.busy and
                                  executor.child_pid is not None)
                os.kill(executor.child_pid, signal.SIGKILL)
                assert wait_until(lambda: not executor.busy)
            assert wait_until(lambda: store.get(record.id).state == "failed")
        finally:
            executor.close()
        assert "crashed" in store.get(record.id).error


class TestCancellation:
    def test_cancel_running_job_at_chunk_boundary(self, store):
        record = store.submit("counter", {"iterations": 1000})
        executor = make_executor(store, step_delay_s=0.05,
                                 checkpoint_every=1).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "running")
            store.request_cancel(record.id)
            assert wait_until(
                lambda: store.get(record.id).state == "cancelled")
        finally:
            executor.close()

    def test_cancelled_queued_job_never_runs(self, store):
        record = store.submit("counter", {"iterations": 3})
        store.request_cancel(record.id)
        executor = make_executor(store).start()
        try:
            time.sleep(0.2)
            assert store.get(record.id).state == "cancelled"
        finally:
            executor.close()


class TestSigkillResume:
    def test_killed_step_worker_resumes_from_checkpoint(self, store):
        """Satellite 2: SIGKILL the step child mid-chunk — the job goes
        running → (requeued) → running → completed from the last
        checkpoint, never lost, and the final state is identical to an
        uninterrupted run (the checksum detects any lost or duplicated
        step)."""
        record = store.submit("counter", {"iterations": 8})
        executor = make_executor(store, step_delay_s=0.15,
                                 checkpoint_every=2, max_attempts=5).start()
        try:
            assert wait_until(lambda: executor.busy and
                              executor.child_pid is not None)
            pid = executor.child_pid
            os.kill(pid, signal.SIGKILL)
            assert wait_until(
                lambda: store.get(record.id).state == "completed",
                timeout_s=60.0)
        finally:
            executor.close()
        final = store.get(record.id)
        assert final.attempts >= 2, "the crash must have burned an attempt"
        assert final.result["checksum"] == reference_checksum(8)
        assert executor.stats()["crashes"] >= 1

    def test_restart_resumes_with_bitwise_identical_state(self, store):
        """Acceptance pin: interrupt (drain-close mid-run), restart a
        fresh executor, and the completed checkpoint is bitwise-identical
        to an uninterrupted run's."""
        # uninterrupted reference in a sibling store
        reference_store = JobStore(store.root.parent / "reference")
        reference = reference_store.submit("counter", {"iterations": 9})
        executor = make_executor(reference_store, checkpoint_every=2).start()
        try:
            assert wait_until(
                lambda: reference_store.get(reference.id).state == "completed")
        finally:
            executor.close()
        expected = reference_store.load_checkpoint(reference.id)

        record = store.submit("counter", {"iterations": 9})
        interrupted = make_executor(store, step_delay_s=0.1,
                                    checkpoint_every=2).start()
        assert wait_until(lambda: interrupted.busy)
        interrupted.close(drain=True)   # mid-run shutdown, like SIGTERM
        parked = store.get(record.id)
        assert parked.state == "queued", "drain must requeue, not lose"

        assert store.recover() == 0     # already queued, nothing to fix
        resumed = make_executor(store, checkpoint_every=2).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "completed")
        finally:
            resumed.close()
        final_state = store.load_checkpoint(record.id)
        assert set(final_state) == set(expected)
        for key in expected:
            assert np.array_equal(final_state[key], expected[key]), key

    def test_recover_requeues_orphaned_running_job(self, store):
        """A hard crash leaves the record 'running'; boot-time recover()
        turns it back into queued and a fresh executor completes it."""
        record = store.submit("counter", {"iterations": 6})
        store.transition(record.id, "running", attempts=1)
        job = CounterJob({"iterations": 6})
        state = job.init_state()
        for _ in range(3):
            state, _ = job.step(state)
        store.save_checkpoint(record.id, state)

        assert store.recover() == 1
        executor = make_executor(store).start()
        try:
            assert wait_until(
                lambda: store.get(record.id).state == "completed")
        finally:
            executor.close()
        assert store.get(record.id).result["checksum"] == \
            reference_checksum(6)


class TestDrainSemantics:
    def test_close_without_drain_requeues_current_job(self, store):
        record = store.submit("counter", {"iterations": 1000})
        executor = make_executor(store, step_delay_s=0.1,
                                 checkpoint_every=4).start()
        assert wait_until(lambda: executor.busy)
        executor.close(drain=False)
        assert store.get(record.id).state == "queued"

    def test_close_is_idempotent(self, store):
        executor = make_executor(store).start()
        executor.close()
        executor.close()
        assert not executor.stats()["alive"]

    def test_notify_wakes_scheduler(self, store):
        executor = make_executor(store, poll_interval_s=30.0).start()
        try:
            record = store.submit("counter", {"iterations": 1})
            executor.notify()
            assert wait_until(
                lambda: store.get(record.id).state == "completed",
                timeout_s=5.0)
        finally:
            executor.close()
