"""SDM-PEB core: model, losses, label transform, trainer."""

from .label import inhibitor_to_label, label_to_inhibitor, roundtrip_error
from .losses import (
    max_squared_error, PEBFocalLoss, DepthDivergenceRegularization,
    LossConfig, SDMPEBLoss,
)
from .patch import OverlappedPatchEmbedding, NonOverlappedPatchMerging, make_merging
from .sdm_unit import SDMUnit, THREE_DIRECTIONS, TWO_DIRECTIONS
from .encoder import EncoderLayer
from .decoder import Decoder, FeatureFusion
from .model import SDMPEB, SDMPEBConfig
from .trainer import Trainer, TrainConfig, TrainHistory

__all__ = [
    "inhibitor_to_label", "label_to_inhibitor", "roundtrip_error",
    "max_squared_error", "PEBFocalLoss", "DepthDivergenceRegularization",
    "LossConfig", "SDMPEBLoss",
    "OverlappedPatchEmbedding", "NonOverlappedPatchMerging", "make_merging",
    "SDMUnit", "THREE_DIRECTIONS", "TWO_DIRECTIONS",
    "EncoderLayer",
    "Decoder", "FeatureFusion",
    "SDMPEB", "SDMPEBConfig",
    "Trainer", "TrainConfig", "TrainHistory",
]
