"""Span tracing with nested scopes and an append-only JSONL sink.

Disabled by default.  The fast path of :func:`span` while disabled is a
single module-global boolean check returning a shared no-op context
manager — no allocation, no syscalls — which is what keeps instrumented
hot loops (the solver's per-step stages, the trainer's per-batch step)
free when tracing is off.

Enabling: set ``REPRO_TRACE=/path/to/trace.jsonl`` in the environment
(picked up lazily on the first span) or call :func:`enable_tracing`
(what the CLI ``--trace`` flag does).  Every finished span appends one
JSON line::

    {"type": "span", "name": "peb.lateral", "pid": 1234, "tid": 98,
     "id": "1234-7", "parent": "1234-6", "depth": 2, "trace": "ab12...",
     "t_wall_s": 1722970000.123, "dur_s": 0.0042, "attrs": {...}}

Span ``id``s are ``"<pid>-<seq>"`` strings, globally unique across the
process tree, so a ``parent`` pointer can cross a ``fork`` boundary and
the whole request still reconstructs as one connected tree.  The active
span stack is **per thread** (concurrent HTTP handler threads never
see each other's spans as parents); crossing a thread or process on
purpose goes through :func:`capture_context` /
:func:`repro.obs.context.use_context`, which carries the
``trace``/``request`` identity and the parent span uid explicitly.

Events are written with ``O_APPEND`` so forked pool workers — which
inherit the enabled flag and the file descriptor — interleave whole
lines into the same file instead of corrupting each other.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time

from .context import TraceContext, current_context, new_request_id

__all__ = [
    "span", "trace_event", "set_span_attrs", "trace_enabled",
    "enable_tracing", "disable_tracing", "current_trace_path",
    "configure_from_env", "capture_context", "current_span_uid",
    "set_flight_hook", "flight_hook",
]

_ENABLED = False
_CONFIGURED = False          # whether REPRO_TRACE has been consulted
_PATH: str | None = None
_FD: int | None = None
#: per-process span sequence; itertools.count.__next__ is atomic under
#: the GIL, so concurrent handler threads never share a sequence number
_NEXT_SEQ = itertools.count(1)
#: flight-recorder tap: a callable given every finished span/event
#: payload dict.  Independent of _ENABLED — the black box keeps its span
#: ring even with the JSONL sink off (see repro.obs.flight).
_FLIGHT_HOOK = None


class _StackLocal(threading.local):
    """Per-thread active-span stack, innermost last.

    A forked child's main thread is the forking thread, so pool workers
    inherit the dispatching thread's open spans (e.g. ``pool.dispatch``)
    exactly as intended, while sibling threads stay isolated.
    """

    def __init__(self):
        self.stack: list["_Span"] = []


_LOCAL = _StackLocal()


class _NoopSpan:
    """Shared reusable do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


def _open_sink(path: str, truncate: bool) -> int:
    flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
    if truncate:
        flags |= os.O_TRUNC
    return os.open(path, flags, 0o644)


def _emit(payload: dict) -> None:
    if _FD is None:
        return
    line = json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    os.write(_FD, line.encode("utf-8"))


def configure_from_env() -> bool:
    """Consult ``REPRO_TRACE`` and enable tracing if it names a path.

    Called lazily by the first :func:`span`; callable explicitly (tests,
    long-lived processes that changed their environment).  Returns the
    resulting enabled state.  The env-configured sink appends rather
    than truncates, so multi-command pipelines sharing one trace file
    accumulate.
    """
    global _CONFIGURED
    _CONFIGURED = True
    path = os.environ.get("REPRO_TRACE", "").strip()
    if path:
        enable_tracing(path, truncate=False)
    return _ENABLED


def enable_tracing(path: str | os.PathLike, truncate: bool = True) -> None:
    """Start writing spans to ``path`` (JSONL, created if missing)."""
    global _ENABLED, _CONFIGURED, _PATH, _FD
    disable_tracing()
    _PATH = os.fspath(path)
    _FD = _open_sink(_PATH, truncate)
    _ENABLED = True
    _CONFIGURED = True


def disable_tracing() -> None:
    """Stop tracing and close the sink (open spans finish silently)."""
    global _ENABLED, _PATH, _FD
    _ENABLED = False
    _PATH = None
    if _FD is not None:
        try:
            os.close(_FD)
        except OSError:
            pass
        _FD = None
    _LOCAL.stack.clear()


def set_flight_hook(hook) -> None:
    """Install (or, with None, remove) the flight-recorder span tap.

    While a hook is installed, spans are *measured* even when JSONL
    tracing is disabled: :func:`span` returns a real span whose payload
    goes to the hook instead of (or in addition to) the sink.  The hook
    must never raise and must be cheap — it runs inside ``__exit__`` of
    every instrumented scope.
    """
    global _FLIGHT_HOOK
    _FLIGHT_HOOK = hook


def flight_hook():
    """The installed flight-recorder tap, or None."""
    return _FLIGHT_HOOK


def trace_enabled() -> bool:
    """Whether spans are currently being recorded."""
    if not _CONFIGURED:
        configure_from_env()
    return _ENABLED


def current_trace_path() -> str | None:
    """The active sink path, or None when disabled."""
    return _PATH if _ENABLED else None


def current_span_uid() -> str | None:
    """Uid of this thread's innermost active span, or None."""
    stack = _LOCAL.stack
    return stack[-1].uid if stack else None


def capture_context() -> TraceContext | None:
    """Snapshot the active request identity for another thread/process.

    The returned context is rebased onto this thread's innermost open
    span, so spans opened under it elsewhere (``use_context``) attach
    to *this* point of the tree.  Outside any request context, an
    anonymous context is still minted when a span is open — a plain
    cross-thread hand-off stays connected even without a request id.
    Returns None when there is nothing to carry.
    """
    ctx = current_context()
    uid = current_span_uid()
    if ctx is not None:
        return ctx.rebased(uid if uid is not None else ctx.parent_uid)
    if uid is not None and (_ENABLED or _FLIGHT_HOOK is not None):
        anonymous = new_request_id()
        return TraceContext(trace_id=anonymous, request_id=anonymous,
                            parent_uid=uid)
    return None


class _Span:
    """A live span; emits its JSONL record when the scope exits."""

    __slots__ = ("name", "attrs", "uid", "parent", "depth", "trace",
                 "_start", "_wall")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = _LOCAL.stack
        self.uid = f"{os.getpid()}-{next(_NEXT_SEQ)}"
        ctx = current_context()
        if stack:
            self.parent = stack[-1].uid
        else:
            self.parent = ctx.parent_uid if ctx is not None else None
        self.trace = ctx.trace_id if ctx is not None else None
        self.depth = len(stack)
        stack.append(self)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        stack = _LOCAL.stack
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        hook = _FLIGHT_HOOK
        if _ENABLED or hook is not None:
            payload = {
                "type": "span", "name": self.name, "pid": os.getpid(),
                "tid": threading.get_native_id(),
                "id": self.uid, "parent": self.parent, "depth": self.depth,
                "t_wall_s": round(self._wall, 6), "dur_s": duration,
                "attrs": self.attrs,
            }
            if self.trace is not None:
                payload["trace"] = self.trace
            if _ENABLED:
                _emit(payload)
            if hook is not None:
                hook(payload)


def span(name: str, **attrs) -> "_Span | _NoopSpan":
    """Context manager recording a named span around its body.

    Disabled tracing returns a shared no-op context manager; nothing is
    measured or allocated beyond the call itself.  An installed flight
    hook (:func:`set_flight_hook`) also counts as enabled — the black
    box records spans even when the JSONL sink is off.
    """
    if not _ENABLED:
        if (_CONFIGURED or not configure_from_env()) \
                and _FLIGHT_HOOK is None:
            return _NOOP
    return _Span(name, attrs)


def trace_event(name: str, **attrs) -> None:
    """Record an instantaneous point event (no duration)."""
    if not _ENABLED:
        if (_CONFIGURED or not configure_from_env()) \
                and _FLIGHT_HOOK is None:
            return
    ctx = current_context()
    payload = {
        "type": "event", "name": name, "pid": os.getpid(),
        "tid": threading.get_native_id(),
        "parent": current_span_uid() or (ctx.parent_uid if ctx else None),
        "t_wall_s": round(time.time(), 6), "attrs": attrs,
    }
    if ctx is not None:
        payload["trace"] = ctx.trace_id
    if _ENABLED:
        _emit(payload)
    if _FLIGHT_HOOK is not None:
        _FLIGHT_HOOK(payload)


def set_span_attrs(**attrs) -> None:
    """Attach attributes to the innermost active span (no-op when disabled
    or outside any span)."""
    if (_ENABLED or _FLIGHT_HOOK is not None) and _LOCAL.stack:
        _LOCAL.stack[-1].attrs.update(attrs)
