"""Versioned checkpoint manifests and the on-disk model registry.

A bare ``Module.save`` archive is just a pile of arrays: nothing records
which architecture produced it, which grid it was trained on, or whether
the bytes on disk are the bytes that were written.  The registry wraps
``save``/``load`` with a JSON **manifest** sidecar carrying exactly that
metadata plus a SHA-256 content hash, verified on every load.

Two layers:

* standalone checkpoints — ``save_checkpoint``/``load_checkpoint`` pair
  a weights file ``model.npz`` with ``model.manifest.json`` next to it;
* :class:`ModelRegistry` — a directory tree ``root/<name>/v<version>/``
  of published checkpoints with monotonically increasing versions,
  ``latest`` resolution and enumeration for the serving front end's
  ``GET /v1/models``.

Both layers rebuild the architecture from the manifest alone (method
name + grid), so a consumer needs no out-of-band knowledge to serve a
checkpoint.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path

import numpy as np

from repro import nn
from repro.config import GridConfig
from repro.nn.module import normalize_weights_path
from repro.runtime.sync import make_lock

#: bump when the manifest layout changes incompatibly
MANIFEST_SCHEMA_VERSION = 1

#: weight-initialization seed used when rebuilding an architecture; the
#: loaded state overwrites every parameter, so this only pins any
#: non-parameter construction-time randomness
REBUILD_SEED = 0


class RegistryError(Exception):
    """A checkpoint or registry operation failed."""


class IntegrityError(RegistryError):
    """The weights on disk do not match the manifest's content hash."""


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return f"sha256:{digest.hexdigest()}"


def manifest_path_for(weights_path: str | Path) -> Path:
    """Sidecar manifest path for a standalone weights file."""
    weights = normalize_weights_path(weights_path)
    return weights.with_name(weights.stem + ".manifest.json")


@dataclass(frozen=True)
class ModelManifest:
    """Everything needed to rebuild, verify and describe one checkpoint."""

    name: str
    version: int
    #: Table II method name understood by ``experiments.build_method``
    model_class: str
    #: GridConfig fields the architecture was sized for
    grid: dict
    dtype: str
    param_count: int
    #: ``sha256:<hex>`` over the weights archive bytes
    content_hash: str
    output_mean: float
    output_std: float
    created_unix_s: float
    schema_version: int = MANIFEST_SCHEMA_VERSION
    #: free-form extras (training epochs, dataset notes, ...)
    extra: dict = field(default_factory=dict)

    def grid_config(self) -> GridConfig:
        return GridConfig(**self.grid)

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str, source: str = "<manifest>") -> "ModelManifest":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise RegistryError(f"{source}: not valid JSON ({error})") from error
        if not isinstance(payload, dict):
            raise RegistryError(f"{source}: manifest must be a JSON object")
        missing = [f.name for f in _MANIFEST_FIELDS
                   if f.name not in payload and f.name not in ("schema_version", "extra")]
        if missing:
            raise RegistryError(f"{source}: manifest missing fields {missing}")
        schema = payload.get("schema_version", MANIFEST_SCHEMA_VERSION)
        if schema > MANIFEST_SCHEMA_VERSION:
            raise RegistryError(f"{source}: manifest schema v{schema} is newer than "
                                f"supported v{MANIFEST_SCHEMA_VERSION}")
        known = {f.name for f in _MANIFEST_FIELDS}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def summary(self) -> dict:
        """Compact dict for listings (``GET /v1/models``)."""
        return {
            "name": self.name, "version": self.version,
            "model_class": self.model_class, "grid": dict(self.grid),
            "dtype": self.dtype, "param_count": self.param_count,
            "content_hash": self.content_hash,
        }


_MANIFEST_FIELDS = fields(ModelManifest)


def _build_model(manifest: ModelManifest):
    from repro.experiments import build_method

    nn.init.seed(REBUILD_SEED)
    model, _ = build_method(manifest.model_class, manifest.grid_config())
    return model


def save_checkpoint(model, path: str | Path, method: str, grid: GridConfig,
                    name: str | None = None, version: int = 1,
                    extra: dict | None = None) -> ModelManifest:
    """Write ``model``'s weights plus a manifest sidecar; returns the manifest."""
    state = model.state_dict()
    dtypes = sorted({str(v.dtype) for v in state.values()})
    # the serving path casts weights exactly once, at load; publishing
    # anything but uniform float64 would silently re-introduce the
    # per-request conversion that cast used to hide
    if dtypes != ["float64"]:
        raise RegistryError(
            f"checkpoint parameters must be uniform float64 to publish, "
            f"got dtypes {dtypes}")
    weights = model.save(path)
    manifest = ModelManifest(
        name=name if name is not None else weights.stem,
        version=int(version),
        model_class=method,
        grid=asdict(grid),
        dtype=dtypes[0] if len(dtypes) == 1 else "mixed",
        param_count=int(sum(v.size for v in state.values())),
        content_hash=_sha256_file(weights),
        output_mean=float(getattr(model, "output_mean", 0.0)),
        output_std=float(getattr(model, "output_std", 1.0)),
        created_unix_s=round(time.time(), 3),
        extra=dict(extra or {}),
    )
    manifest_path_for(weights).write_text(manifest.to_json())
    return manifest


def read_manifest(weights_path: str | Path) -> ModelManifest:
    """Parse the manifest sidecar of a standalone checkpoint."""
    path = manifest_path_for(weights_path)
    if not path.exists():
        raise RegistryError(f"no manifest at {path}; publish the checkpoint with "
                            "save_checkpoint() or a ModelRegistry")
    return ModelManifest.from_json(path.read_text(), source=str(path))


def verify_checkpoint(weights_path: str | Path,
                      manifest: ModelManifest | None = None) -> ModelManifest:
    """Check the weights bytes against the manifest hash; returns the manifest."""
    weights = normalize_weights_path(weights_path)
    if manifest is None:
        manifest = read_manifest(weights)
    if not weights.exists():
        raise RegistryError(f"weights file missing: {weights}")
    actual = _sha256_file(weights)
    if actual != manifest.content_hash:
        raise IntegrityError(
            f"checkpoint {weights} fails integrity verification: "
            f"manifest says {manifest.content_hash}, file hashes to {actual} "
            "(corrupted or tampered weights)")
    return manifest


def load_checkpoint(weights_path: str | Path, verify: bool = True):
    """Rebuild the architecture from the manifest and load verified weights.

    Returns ``(model, manifest)``.  ``verify=False`` skips the content
    hash (loading a checkpoint you just wrote yourself).
    """
    weights = normalize_weights_path(weights_path)
    manifest = read_manifest(weights)
    if verify:
        verify_checkpoint(weights, manifest)
    model = _build_model(manifest)
    model.load(weights)
    model.set_output_stats(manifest.output_mean, manifest.output_std)
    return model, manifest


class ModelRegistry:
    """Directory-backed registry of versioned checkpoints.

    Layout::

        root/
          <name>/
            v1/ weights.npz  weights.manifest.json
            v2/ ...

    Versions are positive integers; ``publish`` defaults to
    ``latest + 1``.  The directory is the source of truth — no extra
    index file to go stale.
    """

    WEIGHTS_FILENAME = "weights.npz"

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # serializes publish's version-pick + mkdir so two concurrent
        # publishes of the same name cannot both resolve latest+1 to the
        # same version (guards this process; the mkdir(exist_ok=False)
        # below backstops cross-process races)
        self._publish_lock = make_lock("serve.registry.publish")

    # -- resolution ----------------------------------------------------
    def names(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and self.versions(p.name))

    def versions(self, name: str) -> list[int]:
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        found = []
        for entry in model_dir.iterdir():
            if (entry.is_dir() and entry.name.startswith("v")
                    and entry.name[1:].isdigit()
                    and (entry / self.WEIGHTS_FILENAME).exists()):
                found.append(int(entry.name[1:]))
        return sorted(found)

    def latest(self, name: str) -> int:
        versions = self.versions(name)
        if not versions:
            raise RegistryError(f"registry {self.root} has no model named {name!r} "
                                f"(available: {self.names() or 'none'})")
        return versions[-1]

    def weights_path(self, name: str, version: int | None = None) -> Path:
        version = self.latest(name) if version is None else int(version)
        path = self.root / name / f"v{version}" / self.WEIGHTS_FILENAME
        if not path.exists():
            raise RegistryError(f"no checkpoint for {name!r} v{version} under {self.root}")
        return path

    # -- publish / load ------------------------------------------------
    def publish(self, model, method: str, grid: GridConfig, name: str,
                version: int | None = None, extra: dict | None = None) -> ModelManifest:
        # the lock covers version-pick *and* the weights write: versions()
        # only counts a directory once weights.npz exists, so releasing
        # between the two would let a concurrent publish of the same name
        # resolve latest+1 to the same number
        with self._publish_lock:
            if version is None:
                existing = self.versions(name)
                version = (existing[-1] + 1) if existing else 1
            elif version in self.versions(name):
                raise RegistryError(f"{name!r} v{version} already published; "
                                    "versions are immutable")
            target_dir = self.root / name / f"v{version}"
            (self.root / name).mkdir(parents=True, exist_ok=True)
            try:
                # strict mkdir backstops publishers in *other* processes,
                # which this lock cannot see
                target_dir.mkdir()
            except FileExistsError:
                raise RegistryError(
                    f"{name!r} v{version} already claimed (concurrent "
                    f"publisher or leftover {target_dir}); versions are "
                    "immutable") from None
            return save_checkpoint(model, target_dir / self.WEIGHTS_FILENAME,
                                   method=method, grid=grid, name=name,
                                   version=version, extra=extra)

    def manifest(self, name: str, version: int | None = None) -> ModelManifest:
        return read_manifest(self.weights_path(name, version))

    def load(self, name: str, version: int | None = None, verify: bool = True):
        """``(model, manifest)`` for a published checkpoint."""
        return load_checkpoint(self.weights_path(name, version), verify=verify)

    def models(self) -> list[dict]:
        """Manifest summaries for every published (name, version)."""
        out = []
        for name in self.names():
            latest = self.latest(name)
            for version in self.versions(name):
                summary = self.manifest(name, version).summary()
                summary["latest"] = version == latest
                out.append(summary)
        return out


def import_legacy_sidecar(weights_path: str | Path, grid: GridConfig) -> ModelManifest:
    """Synthesize a manifest for a pre-registry ``cli train`` checkpoint.

    ``cli train`` historically wrote ``<weights>.json`` holding only the
    method name and output stats; the grid must be supplied by the
    caller (the CLI's ``--nx/--nz/--clip-um`` flags).  The synthesized
    manifest is written as a proper sidecar so subsequent loads verify.
    """
    weights = normalize_weights_path(weights_path)
    legacy = weights.with_suffix(".json")
    if not legacy.exists():
        raise RegistryError(f"no legacy sidecar at {legacy}")
    meta = json.loads(legacy.read_text())
    state_sizes: int
    with np.load(str(weights)) as archive:
        state_sizes = int(sum(archive[k].size for k in archive.files))
        dtypes = sorted({str(archive[k].dtype) for k in archive.files})
    manifest = ModelManifest(
        name=weights.stem, version=1, model_class=meta["method"],
        grid=asdict(grid), dtype=dtypes[0] if len(dtypes) == 1 else "mixed",
        param_count=state_sizes, content_hash=_sha256_file(weights),
        output_mean=float(meta["output_mean"]), output_std=float(meta["output_std"]),
        created_unix_s=round(time.time(), 3),
        extra={"imported_from": legacy.name, "epochs": meta.get("epochs")},
    )
    manifest_path_for(weights).write_text(manifest.to_json())
    return manifest
