"""Span tracing with nested scopes and an append-only JSONL sink.

Disabled by default.  The fast path of :func:`span` while disabled is a
single module-global boolean check returning a shared no-op context
manager — no allocation, no syscalls — which is what keeps instrumented
hot loops (the solver's per-step stages, the trainer's per-batch step)
free when tracing is off.

Enabling: set ``REPRO_TRACE=/path/to/trace.jsonl`` in the environment
(picked up lazily on the first span) or call :func:`enable_tracing`
(what the CLI ``--trace`` flag does).  Every finished span appends one
JSON line::

    {"type": "span", "name": "peb.lateral", "pid": 1234, "id": 7,
     "parent": 6, "depth": 2, "t_wall_s": 1722970000.123,
     "dur_s": 0.0042, "attrs": {...}}

Events are written with ``O_APPEND`` so forked pool workers — which
inherit the enabled flag and the file descriptor — interleave whole
lines into the same file instead of corrupting each other; the ``pid``
field keeps their spans attributable.  Span ``id``/``parent`` pairs are
only meaningful within one ``pid``.
"""

from __future__ import annotations

import json
import os
import time

__all__ = [
    "span", "trace_event", "set_span_attrs", "trace_enabled",
    "enable_tracing", "disable_tracing", "current_trace_path",
    "configure_from_env",
]

_ENABLED = False
_CONFIGURED = False          # whether REPRO_TRACE has been consulted
_PATH: str | None = None
_FD: int | None = None
_NEXT_ID = 1
_STACK: list["_Span"] = []   # active spans, innermost last (per process)


class _NoopSpan:
    """Shared reusable do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NOOP = _NoopSpan()


def _open_sink(path: str, truncate: bool) -> int:
    flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
    if truncate:
        flags |= os.O_TRUNC
    return os.open(path, flags, 0o644)


def _emit(payload: dict) -> None:
    if _FD is None:
        return
    line = json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    os.write(_FD, line.encode("utf-8"))


def configure_from_env() -> bool:
    """Consult ``REPRO_TRACE`` and enable tracing if it names a path.

    Called lazily by the first :func:`span`; callable explicitly (tests,
    long-lived processes that changed their environment).  Returns the
    resulting enabled state.  The env-configured sink appends rather
    than truncates, so multi-command pipelines sharing one trace file
    accumulate.
    """
    global _CONFIGURED
    _CONFIGURED = True
    path = os.environ.get("REPRO_TRACE", "").strip()
    if path:
        enable_tracing(path, truncate=False)
    return _ENABLED


def enable_tracing(path: str | os.PathLike, truncate: bool = True) -> None:
    """Start writing spans to ``path`` (JSONL, created if missing)."""
    global _ENABLED, _CONFIGURED, _PATH, _FD
    disable_tracing()
    _PATH = os.fspath(path)
    _FD = _open_sink(_PATH, truncate)
    _ENABLED = True
    _CONFIGURED = True


def disable_tracing() -> None:
    """Stop tracing and close the sink (open spans finish silently)."""
    global _ENABLED, _PATH, _FD
    _ENABLED = False
    _PATH = None
    if _FD is not None:
        try:
            os.close(_FD)
        except OSError:
            pass
        _FD = None
    _STACK.clear()


def trace_enabled() -> bool:
    """Whether spans are currently being recorded."""
    if not _CONFIGURED:
        configure_from_env()
    return _ENABLED


def current_trace_path() -> str | None:
    """The active sink path, or None when disabled."""
    return _PATH if _ENABLED else None


class _Span:
    """A live span; emits its JSONL record when the scope exits."""

    __slots__ = ("name", "attrs", "id", "parent", "depth", "_start", "_wall")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        global _NEXT_ID
        self.id = _NEXT_ID
        _NEXT_ID += 1
        self.parent = _STACK[-1].id if _STACK else None
        self.depth = len(_STACK)
        _STACK.append(self)
        self._wall = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if _ENABLED:
            _emit({
                "type": "span", "name": self.name, "pid": os.getpid(),
                "id": self.id, "parent": self.parent, "depth": self.depth,
                "t_wall_s": round(self._wall, 6), "dur_s": duration,
                "attrs": self.attrs,
            })


def span(name: str, **attrs) -> "_Span | _NoopSpan":
    """Context manager recording a named span around its body.

    Disabled tracing returns a shared no-op context manager; nothing is
    measured or allocated beyond the call itself.
    """
    if not _ENABLED:
        if _CONFIGURED or not configure_from_env():
            return _NOOP
    return _Span(name, attrs)


def trace_event(name: str, **attrs) -> None:
    """Record an instantaneous point event (no duration)."""
    if not _ENABLED:
        if _CONFIGURED or not configure_from_env():
            return
    _emit({
        "type": "event", "name": name, "pid": os.getpid(),
        "parent": _STACK[-1].id if _STACK else None,
        "t_wall_s": round(time.time(), 6), "attrs": attrs,
    })


def set_span_attrs(**attrs) -> None:
    """Attach attributes to the innermost active span (no-op when disabled
    or outside any span)."""
    if _ENABLED and _STACK:
        _STACK[-1].attrs.update(attrs)
