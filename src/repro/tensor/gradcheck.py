"""Finite-difference gradient checking for the autograd engine.

:func:`gradcheck` compares autograd gradients against central
differences and returns a structured :class:`GradcheckResult` (instead
of a bare bool) so failures report the worst element, the failing input
and both values.  :func:`run_gradcheck_sweep` runs the check over the
full registered op set — every primitive exported by the ``ops_*``
modules plus the composites in :mod:`repro.tensor.functional` — which
is what ``python -m repro.lint --gradcheck`` and CI execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .tensor import Tensor


def numeric_gradient(fn, inputs: list[np.ndarray], index: int, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` w.r.t. input ``index``.

    ``fn`` maps a list of Tensors to a scalar Tensor.
    """
    base = [np.array(x, dtype=np.float64) for x in inputs]
    grad = np.zeros_like(base[index])
    flat = base[index].reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn([Tensor(b) for b in base]).data)
        flat[i] = original - eps
        minus = float(fn([Tensor(b) for b in base]).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


@dataclass(frozen=True)
class InputDiagnostic:
    """Comparison of autograd vs numeric gradient for one input."""

    input_index: int
    ok: bool
    max_abs_error: float
    max_rel_error: float
    worst_index: tuple[int, ...]
    autograd_value: float
    numeric_value: float

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        return (f"input {self.input_index}: {status} "
                f"max_abs_err={self.max_abs_error:.3e} max_rel_err={self.max_rel_error:.3e} "
                f"at index {self.worst_index} "
                f"(autograd {self.autograd_value:.6e}, numeric {self.numeric_value:.6e})")


@dataclass(frozen=True)
class GradcheckResult:
    """Structured outcome of a gradcheck run.

    Truthy exactly when every input matched, so ``assert gradcheck(...)``
    keeps working; on failure the per-input diagnostics name the worst
    element rather than dumping raw arrays.
    """

    ok: bool
    op: str | None
    per_input: tuple[InputDiagnostic, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def max_abs_error(self) -> float:
        return max((d.max_abs_error for d in self.per_input), default=0.0)

    @property
    def max_rel_error(self) -> float:
        return max((d.max_rel_error for d in self.per_input), default=0.0)

    @property
    def failing_inputs(self) -> tuple[InputDiagnostic, ...]:
        return tuple(d for d in self.per_input if not d.ok)

    def summary(self) -> str:
        label = f"op '{self.op}'" if self.op else "function"
        if self.ok:
            return f"gradcheck of {label} passed (max abs err {self.max_abs_error:.3e})"
        details = "; ".join(d.describe() for d in self.failing_inputs)
        return f"gradcheck of {label} FAILED: {details}"


def _compare(actual: np.ndarray, expected: np.ndarray, index: int,
             atol: float, rtol: float) -> InputDiagnostic:
    abs_error = np.abs(actual - expected)
    rel_error = abs_error / np.maximum(np.abs(expected), 1e-12)
    worst_flat = int(np.argmax(abs_error)) if abs_error.size else 0
    worst = np.unravel_index(worst_flat, expected.shape) if expected.shape else ()
    ok = bool(np.allclose(actual, expected, atol=atol, rtol=rtol))
    return InputDiagnostic(
        input_index=index,
        ok=ok,
        max_abs_error=float(abs_error.max()) if abs_error.size else 0.0,
        max_rel_error=float(rel_error.max()) if rel_error.size else 0.0,
        worst_index=tuple(int(i) for i in worst),
        autograd_value=float(actual[worst]) if abs_error.size else 0.0,
        numeric_value=float(expected[worst]) if abs_error.size else 0.0,
    )


def gradcheck(fn, inputs: list[np.ndarray], eps: float = 1e-6, atol: float = 1e-5,
              rtol: float = 1e-4, op: str | None = None,
              raise_on_fail: bool = True) -> GradcheckResult:
    """Compare autograd gradients against finite differences.

    Returns a :class:`GradcheckResult`; with ``raise_on_fail`` (the
    default, matching the historical behaviour) a mismatch raises
    ``AssertionError`` carrying the structured summary instead.
    """
    tensors = [Tensor(np.array(x, dtype=np.float64), requires_grad=True) for x in inputs]
    out = fn(tensors)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    diagnostics = []
    for i, t in enumerate(tensors):
        expected = numeric_gradient(fn, inputs, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(expected)
        diagnostics.append(_compare(np.asarray(actual), expected, i, atol, rtol))
    result = GradcheckResult(ok=all(d.ok for d in diagnostics), op=op,
                             per_input=tuple(diagnostics))
    if raise_on_fail and not result.ok:
        raise AssertionError(result.summary())
    return result


# ----------------------------------------------------------------------
# Sweep over the full registered op set
# ----------------------------------------------------------------------
def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


def _sweep_cases() -> list[tuple[str, object, list[np.ndarray]]]:
    """(name, fn, inputs) triples covering every registered op.

    Inputs are seeded and kept away from kinks/ties (abs at 0, max ties)
    so the finite-difference comparison is well posed; shapes are tiny
    because the numeric gradient costs two forwards per input element.
    """
    from . import functional as F
    from . import (
        add, sub, mul, div, neg, pow_, exp, log, sqrt, tanh, sigmoid, abs_,
        maximum, minimum, clip, where, matmul, einsum,
        reshape, transpose, swapaxes, moveaxis, concatenate, stack, pad, flip,
        broadcast_to, repeat_interleave, split,
        sum_, mean, max_, min_, var,
        conv1d, conv3d, conv_transpose3d, upsample_nearest3d,
    )

    r = _rng(0)
    a23 = r.normal(size=(2, 3))
    b23 = r.normal(size=(2, 3))
    v4 = r.normal(size=(4,))
    w4 = r.normal(size=(4,)) + 3.0
    m34 = r.normal(size=(3, 4))
    m42 = r.normal(size=(4, 2))
    pos4 = np.abs(r.normal(size=(4,))) + 0.5
    spread5 = np.array([0.1, 1.3, -0.7, 2.2, -1.9])  # distinct: no max/min ties
    other5 = np.array([1.0, -2.0, 0.5, 3.0, -1.0])   # elementwise distinct from spread5
    away0 = np.array([0.8, -1.2, 1.5, -0.4])         # away from |x| kink
    cond = np.array([True, False, True, False])
    x_conv1 = r.normal(size=(1, 2, 5))
    w_conv1 = r.normal(size=(2, 2, 3))
    x_conv3 = r.normal(size=(1, 2, 2, 3, 3))
    w_conv3 = r.normal(size=(2, 2, 1, 2, 2))
    w_convt = r.normal(size=(2, 1, 1, 2, 2))

    cases: list[tuple[str, object, list[np.ndarray]]] = [
        ("add", lambda ts: add(ts[0], ts[1]).sum(), [a23, b23]),
        ("add_broadcast", lambda ts: add(ts[0], ts[1]).sum(), [a23, r.normal(size=(3,))]),
        ("sub", lambda ts: sub(ts[0], ts[1]).sum(), [a23, b23]),
        ("mul", lambda ts: mul(ts[0], ts[1]).sum(), [a23, b23]),
        ("div", lambda ts: div(ts[0], ts[1]).sum(), [v4, w4]),
        ("neg", lambda ts: neg(ts[0]).sum(), [v4]),
        ("pow_", lambda ts: pow_(ts[0], 3.0).sum(), [v4]),
        ("exp", lambda ts: exp(ts[0]).sum(), [v4]),
        ("log", lambda ts: log(ts[0]).sum(), [pos4]),
        ("sqrt", lambda ts: sqrt(ts[0]).sum(), [pos4]),
        ("tanh", lambda ts: tanh(ts[0]).sum(), [v4]),
        ("sigmoid", lambda ts: sigmoid(ts[0]).sum(), [v4]),
        ("abs_", lambda ts: abs_(ts[0]).sum(), [away0]),
        ("maximum", lambda ts: maximum(ts[0], ts[1]).sum(), [spread5, other5]),
        ("minimum", lambda ts: minimum(ts[0], ts[1]).sum(), [spread5, other5]),
        ("clip", lambda ts: clip(ts[0], -1.0, 1.0).sum(), [spread5]),
        ("where", lambda ts: where(cond, ts[0], ts[1]).sum(), [v4, w4]),
        ("matmul", lambda ts: matmul(ts[0], ts[1]).sum(), [m34, m42]),
        ("matmul_vec", lambda ts: matmul(ts[0], ts[1]).sum(), [m34, v4]),
        ("einsum", lambda ts: einsum("ij,jk->ik", ts[0], ts[1]).sum(), [a23, r.normal(size=(3, 2))]),
        ("reshape", lambda ts: mul(reshape(ts[0], (3, 2)), reshape(ts[0], (3, 2))).sum(), [a23]),
        ("transpose", lambda ts: mul(transpose(ts[0]), transpose(ts[0])).sum(), [a23]),
        ("swapaxes", lambda ts: exp(swapaxes(ts[0], 0, 1)).sum(), [a23]),
        ("moveaxis", lambda ts: exp(moveaxis(ts[0], 0, 1)).sum(), [a23]),
        ("getitem", lambda ts: exp(ts[0][1:, :2]).sum(), [a23]),
        ("concatenate", lambda ts: exp(concatenate([ts[0], ts[1]], axis=0)).sum(), [a23, b23]),
        ("stack", lambda ts: exp(stack([ts[0], ts[1]], axis=0)).sum(), [v4, w4]),
        ("pad", lambda ts: exp(pad(ts[0], [(1, 1), (0, 2)])).sum(), [a23]),
        ("flip", lambda ts: exp(flip(ts[0], axis=0)).sum(), [a23]),
        ("broadcast_to", lambda ts: exp(broadcast_to(ts[0], (2, 4))).sum(), [v4]),
        ("repeat_interleave", lambda ts: exp(repeat_interleave(ts[0], 2, axis=0)).sum(), [v4]),
        ("split", lambda ts: exp(split(ts[0], 2, axis=0)[1]).sum(), [v4]),
        ("sum_", lambda ts: exp(sum_(ts[0], axis=0)).sum(), [a23]),
        ("mean", lambda ts: exp(mean(ts[0], axis=1)).sum(), [a23]),
        ("max_", lambda ts: max_(ts[0], axis=0).sum(), [np.stack([spread5, spread5 + 0.3])]),
        ("min_", lambda ts: min_(ts[0], axis=0).sum(), [np.stack([spread5, spread5 + 0.3])]),
        ("var", lambda ts: var(ts[0], axis=0).sum(), [a23]),
        ("conv1d", lambda ts: conv1d(ts[0], ts[1], stride=1, padding=1).sum(), [x_conv1, w_conv1]),
        ("conv3d", lambda ts: conv3d(ts[0], ts[1], stride=1, padding=(0, 1, 1)).sum(),
         [x_conv3, w_conv3]),
        ("conv3d_grouped", lambda ts: conv3d(ts[0], ts[1], groups=2).sum(),
         [x_conv3, r.normal(size=(2, 1, 1, 2, 2))]),
        ("conv_transpose3d", lambda ts: conv_transpose3d(ts[0], ts[1], stride=(1, 2, 2), groups=2).sum(),
         [x_conv3, w_convt]),
        ("upsample_nearest3d", lambda ts: exp(upsample_nearest3d(ts[0], (1, 2, 2))).sum(),
         [r.normal(size=(1, 1, 1, 2, 2))]),
        ("relu", lambda ts: F.relu(ts[0]).sum(), [away0]),
        ("leaky_relu", lambda ts: F.leaky_relu(ts[0], 0.1).sum(), [away0]),
        ("silu", lambda ts: F.silu(ts[0]).sum(), [v4]),
        ("gelu", lambda ts: F.gelu(ts[0]).sum(), [v4]),
        ("softplus", lambda ts: F.softplus(ts[0]).sum(), [v4]),
        ("softmax", lambda ts: mul(F.softmax(ts[0], axis=-1), ts[0]).sum(), [a23]),
        ("log_softmax", lambda ts: mul(F.log_softmax(ts[0], axis=-1), ts[0]).sum(), [a23]),
        ("layer_norm", lambda ts: mul(F.layer_norm(ts[0]), ts[0]).sum(), [a23]),
        ("mse_loss", lambda ts: F.mse_loss(ts[0], ts[1]), [v4, w4]),
        ("dropout", lambda ts: F.dropout(ts[0], 0.3, training=True, rng=_rng(7)).sum(), [v4]),
        ("flatten_spatial", lambda ts: exp(F.flatten_spatial(ts[0])).sum(),
         [r.normal(size=(1, 2, 1, 2, 2))]),
    ]
    return cases


def run_gradcheck_sweep(raise_on_fail: bool = True) -> list[tuple[str, GradcheckResult]]:
    """Gradcheck every registered op; returns ``(name, result)`` pairs.

    With ``raise_on_fail`` the first failing op raises ``AssertionError``
    with its structured summary; otherwise failures are collected so the
    CLI can report all of them.
    """
    results: list[tuple[str, GradcheckResult]] = []
    for name, fn, inputs in _sweep_cases():
        result = gradcheck(fn, inputs, op=name, raise_on_fail=raise_on_fail)
        results.append((name, result))
    return results
