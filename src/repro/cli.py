"""Command-line interface for the SDM-PEB reproduction.

Subcommands mirror the stages a user actually runs:

* ``simulate``  — run the rigorous flow on seeded clips and cache them;
* ``train``     — fit a surrogate (any Table II method) on cached clips
  and save its weights;
* ``predict``   — load weights and predict inhibitor volumes for clips;
* ``evaluate``  — full Table II-style evaluation of saved weights;
* ``reproduce`` — regenerate all tables/figures (wraps
  :mod:`repro.experiments.reproduce_all`);
* ``serve``     — batched inference HTTP service over a saved
  checkpoint or a model registry (wraps :mod:`repro.serve`), with a
  persistent ``/v1/jobs`` queue for long-running work;
* ``jobs``      — submit/status/cancel/list async jobs (gradient-based
  OPC and friends) against a running ``serve`` process;
* ``lint``      — repo-specific static analysis and the full-op
  gradcheck sweep (wraps :mod:`repro.lint`);
* ``report``    — summarize a trace JSONL (from ``--trace`` or
  ``REPRO_TRACE``) into a per-span table (wraps :mod:`repro.obs.report`);
* ``flightdump`` — render a black-box ``flightdump-*.json`` written by a
  serving process on SIGQUIT or a lane crash (wraps
  :mod:`repro.obs.flight`).

Every simulation/training subcommand accepts ``--sanitize``, which runs
the whole command under the autograd tape sanitizer: each op's forward
output and each backward vjp result is checked for NaN/Inf and
shape/dtype mismatch, raising with the offending op's name.  They also
accept ``--trace PATH``, which records observation-only spans (solver
stages, trainer epochs/steps, pool dispatches) to a JSONL file.

Usage:  python -m repro.cli <subcommand> [options]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro import nn
from repro.config import GridConfig, LithoConfig
from repro.data import generate_dataset
from repro.experiments import (
    ExperimentSettings, TABLE2_METHODS, build_method, evaluate_method,
    train_method,
)


class CLIError(Exception):
    """A user-facing CLI failure: printed as one line, exit code 2."""


def _weights_or_cli_error(path_text: str) -> Path:
    """The normalized weights path, or a friendly CLIError when unusable."""
    from repro.nn.module import normalize_weights_path

    path = normalize_weights_path(path_text)
    if not path.exists():
        raise CLIError(
            f"weights file not found: {path}\n"
            f"  (train one first: python -m repro.cli train --weights {path})")
    try:
        with np.load(path) as archive:
            if not archive.files:
                raise CLIError(f"weights file {path} is empty (no arrays)")
    except CLIError:
        raise
    except Exception as error:
        raise CLIError(f"weights file {path} is not a readable npz archive: "
                       f"{error}") from error
    return path


def _settings_from_args(args) -> ExperimentSettings:
    grid = GridConfig(size_um=args.clip_um, nx=args.nx, ny=args.nx, nz=args.nz)
    settings = ExperimentSettings(
        num_clips=args.clips, epochs=args.epochs, cache_dir=args.cache,
        config=LithoConfig(grid=grid), workers=args.workers,
    )
    return settings


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--clips", type=int, default=12, help="number of clips")
    parser.add_argument("--nx", type=int, default=32, help="x/y grid points")
    parser.add_argument("--nz", type=int, default=4, help="depth grid points")
    parser.add_argument("--clip-um", type=float, default=1.0, help="clip size in um")
    parser.add_argument("--cache", default=".repro_cache", help="dataset cache dir")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for rigorous dataset generation "
                             "(default: REPRO_WORKERS env or all cores; 1 = serial)")
    parser.add_argument("--sanitize", action="store_true",
                        help="run under the autograd tape sanitizer (NaN/Inf and "
                             "shape/dtype checks on every op) and the lock "
                             "sanitizer (lock-order + fork-safety checks)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="record observation-only spans to this JSONL file "
                             "(same as REPRO_TRACE=PATH; summarize with "
                             "`python -m repro.cli report PATH`)")


def cmd_simulate(args) -> int:
    settings = _settings_from_args(args)
    dataset = generate_dataset(settings.num_clips, settings.config,
                               cache_dir=settings.cache_dir, verbose=True)
    seconds = sum(s.rigorous_seconds for s in dataset.samples)
    print(f"\n{len(dataset)} clips cached in {settings.cache_dir} "
          f"(rigorous solver time {seconds:.1f}s)")
    return 0


def cmd_train(args) -> int:
    settings = _settings_from_args(args)
    train_set, test_set = generate_dataset(
        settings.num_clips, settings.config, cache_dir=settings.cache_dir,
        verbose=True).split(0.8)
    nn.init.seed(args.seed)
    model, loss_config = build_method(args.method, settings.config.grid)
    print(f"training {args.method} ({model.num_parameters()} parameters) "
          f"for {settings.epochs} epochs...")
    train_method(model, loss_config, train_set, settings, verbose=True)
    from repro.serve import save_checkpoint

    weights = model.save(args.weights)
    stats = {"method": args.method, "output_mean": model.output_mean,
             "output_std": model.output_std, "epochs": settings.epochs}
    weights.with_suffix(".json").write_text(json.dumps(stats, indent=2))
    manifest = save_checkpoint(model, weights, method=args.method,
                               grid=settings.config.grid,
                               extra={"epochs": settings.epochs})
    print(f"weights saved to {weights} "
          f"(manifest {manifest.content_hash[:19]}..., "
          f"{manifest.param_count} params)")
    return 0


def _load_model(args, grid: GridConfig):
    weights = _weights_or_cli_error(args.weights)
    sidecar = weights.with_suffix(".json")
    if not sidecar.exists():
        raise CLIError(
            f"no metadata sidecar at {sidecar}\n"
            "  (written by `train` next to the weights; re-train or restore it)")
    try:
        meta = json.loads(sidecar.read_text())
    except json.JSONDecodeError as error:
        raise CLIError(f"metadata sidecar {sidecar} is not valid JSON: {error}") from error
    nn.init.seed(args.seed)
    model, _ = build_method(meta["method"], grid)
    model.load(weights)
    model.set_output_stats(meta["output_mean"], meta["output_std"])
    return model, meta


def cmd_predict(args) -> int:
    settings = _settings_from_args(args)
    dataset = generate_dataset(settings.num_clips, settings.config,
                               cache_dir=settings.cache_dir)
    model, meta = _load_model(args, settings.config.grid)
    sample = dataset.samples[args.clip]
    inhibitor = model.predict_inhibitor(sample.acid)
    np.savez_compressed(args.out, acid=sample.acid, inhibitor=inhibitor,
                        truth=sample.inhibitor)
    error = np.abs(inhibitor - sample.inhibitor)
    print(f"{meta['method']} prediction for clip {args.clip}: "
          f"max |error| {error.max():.4f}, mean {error.mean():.5f}")
    print(f"arrays saved to {args.out}")
    return 0


def cmd_evaluate(args) -> int:
    from repro.core import Trainer, TrainConfig

    settings = _settings_from_args(args)
    train_set, test_set = generate_dataset(
        settings.num_clips, settings.config, cache_dir=settings.cache_dir).split(0.8)
    model, meta = _load_model(args, settings.config.grid)
    trainer = Trainer(model, train_set.inputs(), train_set.labels(), TrainConfig(epochs=1))
    # Trainer.__init__ resets output stats from data; restore the saved ones.
    model.set_output_stats(meta["output_mean"], meta["output_std"])
    result = evaluate_method(meta["method"], trainer, test_set, settings)
    print(f"{'method':<16}: {result.name}")
    print(f"{'RMSE(I)':<16}: {result.inhibitor_rmse * 1e3:.2f}e-3")
    print(f"{'NRMSE(I)':<16}: {result.inhibitor_nrmse * 100:.2f}%")
    print(f"{'RMSE(R)':<16}: {result.rate_rmse:.3f} nm/s")
    print(f"{'NRMSE(R)':<16}: {result.rate_nrmse * 100:.2f}%")
    print(f"{'CD error x/y':<16}: {result.cd_error_x:.2f} / {result.cd_error_y:.2f} nm")
    print(f"{'runtime':<16}: {result.runtime_s:.3f} s/clip")
    return 0


def cmd_reproduce(args) -> int:
    from repro.experiments.reproduce_all import run_all

    settings = ExperimentSettings.quick() if args.quick else ExperimentSettings.full()
    settings.workers = args.workers
    run_all(settings, Path(args.out))
    return 0


def cmd_serve(args) -> int:
    import signal
    import threading

    from repro.obs import HealthConfig
    from repro.serve import (
        DEFAULT_LATENCY_BUCKETS, BatchPolicy, JobService, ModelRegistry,
        PredictServer, RegistryError, ServeConfig, ServedModel,
        import_legacy_sidecar, load_checkpoint, manifest_path_for,
    )

    policy = BatchPolicy(max_batch_size=args.max_batch, max_wait_ms=args.max_wait_ms,
                         max_queue=args.queue_size, cache_entries=args.cache_size)
    health = None
    if not args.no_health_checks or args.shadow_audit > 0:
        health = HealthConfig(check_invariants=not args.no_health_checks,
                              shadow_every=args.shadow_audit)
    if args.latency_buckets:
        try:
            buckets = tuple(sorted(float(b) for b in args.latency_buckets.split(",")))
        except ValueError as error:
            raise CLIError(f"--latency-buckets must be comma-separated numbers: "
                           f"{error}") from error
    else:
        buckets = DEFAULT_LATENCY_BUCKETS
    try:
        if args.registry:
            registry = ModelRegistry(args.registry)
            names = [args.model] if args.model else registry.names()
            if not names:
                raise CLIError(f"registry {args.registry} has no published models")
            loaded = [registry.load(name, args.model_version) for name in names]
        else:
            weights = _weights_or_cli_error(args.ckpt)
            if not manifest_path_for(weights).exists():
                # pre-registry checkpoint: synthesize a manifest from the
                # legacy train sidecar + the grid flags
                grid = GridConfig(size_um=args.clip_um, nx=args.nx, ny=args.nx,
                                  nz=args.nz)
                import_legacy_sidecar(weights, grid)
                print(f"synthesized manifest for legacy checkpoint {weights}")
            loaded = [load_checkpoint(weights)]
    except RegistryError as error:
        raise CLIError(str(error)) from error
    # install the drain handlers before any pooled backend publishes
    # shared-memory weights, so a SIGTERM that lands during startup still
    # unlinks every segment on the way out
    stop = threading.Event()
    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, lambda *_: stop.set())
    try:
        served = [ServedModel(model, manifest, policy, health=health,
                              engine=args.engine, workers=args.serve_workers)
                  for model, manifest in loaded]
    except ValueError as error:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        raise CLIError(str(error)) from error
    jobs = None
    if not args.no_jobs:
        from repro.jobs import JobExecutorConfig

        # JobService runs boot-time recovery (running → queued) before
        # the executor starts, so jobs interrupted by the previous
        # process resume from their last checkpoint
        jobs = JobService(args.jobs_dir, JobExecutorConfig(
            checkpoint_every=args.jobs_checkpoint_every))
        if jobs.recovered:
            print(f"recovered {jobs.recovered} interrupted job(s) from "
                  f"{args.jobs_dir}")
    config = ServeConfig(host=args.host, port=args.port, policy=policy,
                         latency_buckets=buckets,
                         telemetry=not args.no_telemetry,
                         telemetry_interval_s=args.telemetry_interval,
                         flight=not args.no_flight,
                         flight_dump_dir=args.flight_dir)
    server = PredictServer(served, config, verbose=args.verbose, jobs=jobs)
    # SIGQUIT = operator-triggered black-box snapshot of the live server
    # (kill -QUIT <pid>); the process keeps serving afterwards
    def _sigquit(*_):
        if server.flight is not None:
            path = server.flight.dump("sigquit", force=True)
            if path:
                print(f"flight dump written to {path} "
                      f"(render: python -m repro.cli flightdump {path})")
    previous[signal.SIGQUIT] = signal.signal(signal.SIGQUIT, _sigquit)
    host, port = server.address
    for entry in served:
        m = entry.manifest
        backend = (f"{entry.workers} workers" if entry.workers > 1
                   else "in-process")
        print(f"serving {m.name} v{m.version} ({m.model_class}, "
              f"{m.param_count} params, grid {tuple(m.grid_config().shape)}, "
              f"engine {entry.engine}, {backend})")
    routes = "POST /v1/predict, GET /v1/models /healthz /metrics"
    if not args.no_telemetry:
        routes += " /v1/telemetry /dashboard"
    if jobs is not None:
        routes += ", POST/GET/DELETE /v1/jobs"
        print(f"job queue at {args.jobs_dir} "
              f"(types: {', '.join(sorted(set(jobs.stats()['types'])))})")
    print(f"listening on http://{host}:{port}  ({routes}; ctrl-c to stop)")

    server.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        print("draining in-flight requests...")
        server.shutdown(drain=True)
        print("shutdown complete")
    return 0


def _jobs_request(args, method: str, path: str, payload: dict | None = None):
    """One JSON exchange with a running server's /v1/jobs routes."""
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + path
    body = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            return json.loads(response.read())
    except urllib.error.HTTPError as error:
        detail = error.read().decode(errors="replace").strip()
        try:
            detail = json.loads(detail).get("error", detail)
        except json.JSONDecodeError:
            pass
        raise CLIError(f"{method} {url} failed: {error.code} {detail}") from error
    except urllib.error.URLError as error:
        raise CLIError(f"cannot reach {url}: {error.reason}\n"
                       f"  (is the server running? start one with "
                       f"`python -m repro.cli serve`)") from error


def _print_job(record: dict) -> None:
    line = f"{record['id']}  {record['type']:<14} {record['state']:<10}"
    progress = record.get("progress") or {}
    if "cd_rmse_nm" in progress:
        line += f" iter {progress.get('iteration', '?')}" \
                f"  rms {progress['cd_rmse_nm']:.3f} nm"
    elif "iteration" in progress:
        line += f" iter {progress['iteration']}"
    if record.get("error"):
        line += f"  error: {record['error']}"
    print(line)


def cmd_jobs(args) -> int:
    import time as time_mod

    if args.action == "submit":
        try:
            params = json.loads(args.params) if args.params else {}
        except json.JSONDecodeError as error:
            raise CLIError(f"--params is not valid JSON: {error}") from error
        record = _jobs_request(args, "POST", "/v1/jobs",
                               {"type": args.type, "params": params})
        print(f"submitted {record['id']} ({record['type']})")
        if not args.watch:
            return 0
        args.id = record["id"]
    if args.action == "list":
        listing = _jobs_request(args, "GET", "/v1/jobs")["jobs"]
        if not listing:
            print("no jobs")
            return 0
        for entry in listing:
            print(f"{entry['id']}  {entry['type']:<14} {entry['state']:<10} "
                  f"attempts {entry['attempts']}")
        return 0
    if args.action == "cancel":
        record = _jobs_request(args, "DELETE", f"/v1/jobs/{args.id}")
        _print_job(record)
        return 0
    # status (and submit --watch falls through to here)
    while True:
        record = _jobs_request(args, "GET", f"/v1/jobs/{args.id}")
        _print_job(record)
        if not getattr(args, "watch", False) \
                or record["state"] in ("completed", "failed", "cancelled"):
            break
        time_mod.sleep(args.poll_s)
    if record["state"] == "completed" and args.action != "list":
        print(json.dumps(record["result"], indent=2, sort_keys=True))
    return 0 if record["state"] == "completed" or args.action == "cancel" \
        else (0 if record["state"] in ("queued", "running") else 1)


def cmd_report(args) -> int:
    from repro.obs.export import (
        build_span_forest, format_critical_path, format_requests,
        request_summaries, write_chrome_trace,
    )
    from repro.obs.report import format_report, load_events, summarize_spans

    path = Path(args.trace_file)
    if not path.exists():
        print(f"no trace file at {path} — record one with --trace PATH or "
              f"REPRO_TRACE=PATH")
        return 1
    try:
        events = load_events(path)
    except OSError as error:
        raise CLIError(f"cannot read trace file {path}: {error}") from error
    if not events:
        print(f"{path} contains no trace events (empty or fully corrupt file)")
        return 0
    if args.export_chrome:
        written = write_chrome_trace(events, args.export_chrome)
        print(f"wrote {written} Chrome trace event(s) to {args.export_chrome} "
              f"(open in Perfetto or chrome://tracing)")
    if args.requests:
        print(format_requests(request_summaries(events), limit=args.limit))
        return 0
    if args.critical_path:
        print(format_critical_path(build_span_forest(events)))
        return 0
    if args.export_chrome:
        return 0
    summaries = summarize_spans(events)
    print(format_report(summaries, limit=args.limit,
                        title=f"{path} — {len(events)} event(s)"))
    return 0


def cmd_flightdump(args) -> int:
    from repro.obs import load_flight_dump, render_flight_dump

    path = Path(args.dump_file)
    if not path.exists():
        raise CLIError(f"no flight dump at {path}")
    if path.is_dir():
        # pointing at a directory picks the newest dump there — the
        # "what just happened" workflow
        candidates = sorted(path.glob("flightdump-*.json"))
        if not candidates:
            raise CLIError(f"no flightdump-*.json files in {path}")
        path = candidates[-1]
    try:
        body = load_flight_dump(path)
    except (OSError, ValueError) as error:
        raise CLIError(str(error)) from error
    if args.json:
        print(json.dumps(body, indent=2, sort_keys=True))
        return 0
    print(f"{path}")
    print(render_flight_dump(body, max_rows=args.limit))
    return 0


def cmd_lint(args) -> int:
    from repro.lint import main as lint_main

    argv = list(args.paths) or ["src"]
    if args.gradcheck:
        argv.append("--gradcheck")
    if args.select:
        argv.extend(["--select", args.select])
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    return lint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run the rigorous flow and cache clips")
    _add_common(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("train", help="train a surrogate and save weights")
    _add_common(p)
    p.add_argument("--method", choices=TABLE2_METHODS, default="SDM-PEB")
    p.add_argument("--epochs", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--weights", default="model.npz")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("predict", help="predict one clip with saved weights")
    _add_common(p)
    p.add_argument("--weights", default="model.npz")
    p.add_argument("--clip", type=int, default=0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default="prediction.npz")
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("evaluate", help="evaluate saved weights on the test split")
    _add_common(p)
    p.add_argument("--weights", default="model.npz")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("reproduce", help="regenerate all tables and figures")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--out", default="results")
    p.add_argument("--workers", type=int, default=None,
                   help="processes for rigorous dataset generation")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the autograd tape + lock sanitizers")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record observation-only spans to this JSONL file")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser("serve", help="batched inference HTTP service over a checkpoint")
    p.add_argument("--ckpt", "--weights", dest="ckpt", default="model.npz",
                   help="weights npz (with manifest or legacy train sidecar)")
    p.add_argument("--registry", default=None,
                   help="serve published models from this registry directory "
                        "instead of --ckpt")
    p.add_argument("--model", default=None,
                   help="with --registry: serve only this model name")
    p.add_argument("--model-version", type=int, default=None,
                   help="with --registry: serve this version (default: latest)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="largest coalesced forward-pass batch")
    p.add_argument("--max-wait-ms", type=float, default=5.0,
                   help="how long to hold an open batch for stragglers")
    p.add_argument("--queue-size", type=int, default=64,
                   help="bounded request queue; overflow is rejected with 503")
    p.add_argument("--cache-size", type=int, default=128,
                   help="LRU response-cache entries (0 disables)")
    p.add_argument("--engine", choices=("tape", "plan"), default=None,
                   help="forward-pass engine: 'tape' replays the autograd "
                        "tape per batch, 'plan' compiles one inference plan "
                        "per batch shape and replays it (default: "
                        "REPRO_INFER_PLAN env, else tape)")
    p.add_argument("--serve-workers", type=int, default=None, metavar="N",
                   help="forked prediction worker processes sharing one "
                        "shared-memory weight segment; requests shard by "
                        "content hash (default: REPRO_SERVE_WORKERS env, "
                        "else 1 = in-process)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    # grid fallback used only when synthesizing a manifest for a legacy
    # checkpoint that predates the registry
    p.add_argument("--nx", type=int, default=32, help="x/y grid points (legacy ckpt)")
    p.add_argument("--nz", type=int, default=4, help="depth grid points (legacy ckpt)")
    p.add_argument("--clip-um", type=float, default=1.0, help="clip size in um (legacy ckpt)")
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record serving spans to this JSONL file")
    p.add_argument("--no-health-checks", action="store_true",
                   help="disable per-prediction physics invariant checks")
    p.add_argument("--shadow-audit", type=int, default=0, metavar="N",
                   help="re-run the rigorous solver on 1-in-N served "
                        "predictions and record surrogate error histograms "
                        "(0 disables)")
    p.add_argument("--latency-buckets", default=None, metavar="S,S,...",
                   help="comma-separated request-latency histogram bucket "
                        "bounds in seconds (default: 1ms..10s log-ish ladder)")
    p.add_argument("--jobs-dir", default=".repro_jobs", metavar="DIR",
                   help="persistent job-queue directory for /v1/jobs; jobs "
                        "interrupted by a crash or restart resume from their "
                        "last checkpoint here on boot")
    p.add_argument("--no-jobs", action="store_true",
                   help="disable the /v1/jobs async job queue")
    p.add_argument("--jobs-checkpoint-every", type=int, default=2, metavar="N",
                   help="job-executor checkpoint cadence in stepper iterations")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable the rolling time-series sampler "
                        "(/v1/telemetry, /dashboard, SLO burn alerts)")
    p.add_argument("--telemetry-interval", type=float, default=10.0,
                   metavar="S", help="telemetry sampling interval in seconds")
    p.add_argument("--no-flight", action="store_true",
                   help="disable the black-box flight recorder")
    p.add_argument("--flight-dir", default=".", metavar="DIR",
                   help="directory for flightdump-*.json crash/SIGQUIT dumps")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("jobs", help="submit/inspect async jobs on a running server")
    jobs_sub = p.add_subparsers(dest="action", required=True)
    for action, helptext in (("submit", "submit a job and print its id"),
                             ("status", "print one job's state and result"),
                             ("cancel", "request cancellation of a job"),
                             ("list", "list all jobs on the server")):
        q = jobs_sub.add_parser(action, help=helptext)
        q.add_argument("--url", default="http://127.0.0.1:8080",
                       help="base URL of the running serve process")
        q.add_argument("--timeout", type=float, default=30.0,
                       help="per-request HTTP timeout in seconds")
        if action == "submit":
            q.add_argument("--type", required=True,
                           help="registered job type (e.g. opc_gradient)")
            q.add_argument("--params", default=None, metavar="JSON",
                           help='job parameters as a JSON object, e.g. '
                                '\'{"iterations": 8}\'')
            q.add_argument("--watch", action="store_true",
                           help="poll until the job reaches a terminal state")
            q.add_argument("--poll-s", type=float, default=1.0,
                           help="--watch polling interval in seconds")
        elif action in ("status", "cancel"):
            q.add_argument("id", help="job id returned by submit")
            if action == "status":
                q.add_argument("--watch", action="store_true",
                               help="poll until the job reaches a terminal state")
                q.add_argument("--poll-s", type=float, default=1.0,
                               help="--watch polling interval in seconds")
        q.set_defaults(func=cmd_jobs)

    p = sub.add_parser("report", help="summarize a trace JSONL into a per-span table")
    p.add_argument("trace_file", help="trace file written via --trace / REPRO_TRACE")
    p.add_argument("--limit", type=int, default=None,
                   help="show only the top N span names by total time")
    p.add_argument("--export-chrome", metavar="PATH", default=None,
                   help="also write the trace in Chrome trace-event JSON "
                        "(loadable in Perfetto / chrome://tracing)")
    p.add_argument("--critical-path", action="store_true",
                   help="show the largest root span's critical path with "
                        "per-span self time instead of the summary table")
    p.add_argument("--requests", action="store_true",
                   help="per-request latency breakdown (one line per "
                        "X-Request-Id seen in the trace)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("flightdump",
                       help="render a black-box flight dump for humans")
    p.add_argument("dump_file",
                   help="a flightdump-*.json file, or a directory holding "
                        "them (picks the newest)")
    p.add_argument("--limit", type=int, default=20, metavar="N",
                   help="rows shown per section (requests/spans/logs)")
    p.add_argument("--json", action="store_true",
                   help="print the raw dump JSON instead of the rendering")
    p.set_defaults(func=cmd_flightdump)

    p = sub.add_parser("lint", help="static analysis (REP rules) and gradcheck sweep")
    p.add_argument("paths", nargs="*", help="files or directories to lint (default: src)")
    p.add_argument("--gradcheck", action="store_true",
                   help="also run the finite-difference sweep over every op")
    p.add_argument("--select", help="comma-separated rule ids to run")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="lint files across N fork-pool workers")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # `train` defines --epochs; other subcommands fall back to a default.
    if not hasattr(args, "epochs"):
        args.epochs = 30
    if getattr(args, "trace", None):
        from repro.obs import enable_tracing

        enable_tracing(args.trace)
    try:
        if getattr(args, "sanitize", False):
            from repro.runtime.sync import sanitize_locks
            from repro.tensor import sanitize

            # locks created by the command (batcher, registry, health)
            # come out instrumented; violations are recorded + counted
            # rather than raised so a serving process stays up
            with sanitize(True), sanitize_locks(raise_on_violation=False):
                return args.func(args)
        return args.func(args)
    except CLIError as error:
        import sys

        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
