"""State-space model components: HiPPO init, selective scan, Mamba SSM."""

from .hippo import hippo_legs_matrix, s4d_real_init, dt_init
from .scan import (
    diagonal_scan, run_scan, scan_sequential, scan_chunked, SCAN_MODES, DEFAULT_CHUNK,
)
from .mamba import SelectiveSSM
from .s4d import LTISSM, lti_kernel, causal_conv_fft

__all__ = [
    "hippo_legs_matrix", "s4d_real_init", "dt_init",
    "diagonal_scan", "run_scan", "scan_sequential", "scan_chunked",
    "SCAN_MODES", "DEFAULT_CHUNK",
    "SelectiveSSM",
    "LTISSM", "lti_kernel", "causal_conv_fft",
]
