"""Evaluation metrics (Eqs. 12-13)."""

import numpy as np
import pytest

from repro.metrics import rmse, nrmse, batch_mean


class TestRMSE:
    def test_zero_for_identical(self):
        x = np.random.default_rng(0).random((4, 4))
        assert rmse(x, x) == 0.0

    def test_known_value(self):
        assert np.isclose(rmse(np.array([1.0, 3.0]), np.array([0.0, 0.0])),
                          np.sqrt(5.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros(2), np.zeros(3))


class TestNRMSE:
    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        reference = rng.random((5, 5)) + 1.0
        predicted = reference * 1.1
        assert np.isclose(nrmse(10 * predicted, 10 * reference),
                          nrmse(predicted, reference))

    def test_known_value(self):
        reference = np.array([3.0, 4.0])  # norm 5
        predicted = np.array([3.0, 5.0])  # error norm 1
        assert np.isclose(nrmse(predicted, reference), 0.2)

    def test_zero_reference_raises(self):
        with pytest.raises(ValueError):
            nrmse(np.ones(3), np.zeros(3))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            nrmse(np.zeros((2, 2)), np.zeros((2, 3)))


class TestBatchMean:
    def test_averages(self):
        preds = [np.array([1.0]), np.array([3.0])]
        refs = [np.array([0.0]), np.array([0.0])]
        assert np.isclose(batch_mean(rmse, preds, refs), 2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            batch_mean(rmse, [], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            batch_mean(rmse, [np.zeros(1)], [])
