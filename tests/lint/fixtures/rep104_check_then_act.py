"""REP104 fixture: unlocked lazy init of shared state (line 17)."""

import threading


class LazyCache:
    """Two lanes may both see None and build the solver twice."""

    def __init__(self):
        self._lock = threading.Lock()
        self._solver = None
        self._table = None
        self._thread = threading.Thread(target=self.refresh, daemon=True)
        self._thread.start()

    def refresh(self):
        if self._solver is None:
            self._solver = object()
        return self._solver

    def table(self):
        # double-checked locking: allowed
        if self._table is None:
            with self._lock:
                if self._table is None:
                    self._table = object()
        return self._table

    def close(self):
        self._thread.join(1.0)
