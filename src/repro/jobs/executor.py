"""The job executor: claim → chunk → checkpoint → repeat.

One daemon thread owns the scheduler loop: it claims the oldest queued
job, then executes it **chunk by chunk** — each chunk is up to
``checkpoint_every`` stepper iterations run in a *disposable forked
process*.  The child ships its new state back over a pipe; the parent
persists it as the job's checkpoint before launching the next chunk.

That process-per-chunk shape is what buys fault tolerance:

* a SIGKILLed step worker just closes the pipe — the parent observes
  EOF, requeues the job, and the next attempt resumes from the last
  checkpoint (steppers are deterministic functions of their state, so
  the rerun is bitwise-identical to the uninterrupted path);
* a full server restart finds the job ``running`` with nobody executing
  it; :meth:`repro.jobs.store.JobStore.recover` flips it back to
  ``queued`` on boot and the same resume path applies;
* cancellation and drain are chunk-boundary checks — no partial step is
  ever visible in a checkpoint.

Fault-injection hooks mirror ``repro.serve.pool``: ``step_delay_s``
makes the child sleep before each step, and the parent-side ``busy``
flag plus ``child_pid`` let tests land a kill deterministically inside
a chunk.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass

from repro.obs import (
    TraceContext, counter, record_lane_crash, span, use_context,
)
from repro.runtime.pool import fork_available
from repro.runtime.sync import check_fork_safety, make_condition, make_lock

from .store import JobRecord, JobStore
from .types import build_stepper

__all__ = ["JobExecutor", "JobExecutorConfig", "StepCrashedError"]


class StepCrashedError(RuntimeError):
    """The forked step process died before reporting a result."""


@dataclass
class JobExecutorConfig:
    """Executor tuning + fault-injection knobs."""

    poll_interval_s: float = 0.2
    #: stepper iterations per chunk (= checkpoint cadence)
    checkpoint_every: int = 2
    #: attempts (initial + retries after crashes) before a job fails
    max_attempts: int = 3
    chunk_timeout_s: float = 300.0
    #: fault injection: child sleeps this long before every step
    step_delay_s: float = 0.0
    #: None = fork when available; False forces inline (no kill immunity)
    use_fork: bool | None = None


def _chunk_main(conn, job_type: str, params: dict, state: dict,
                max_steps: int, step_delay_s: float) -> None:
    """Child entry point: run up to ``max_steps`` stepper iterations.

    The ``jobs.chunk`` span parents naturally across the fork: the child
    inherits the executor thread's span stack, whose top is the parent's
    open ``jobs.execute`` span, and span uids are ``"<pid>-<seq>"`` so
    the child's ids never collide with the parent's.  Inline (no-fork)
    execution takes the identical path in the executor thread itself.
    """
    try:
        with span("jobs.chunk", job_type=job_type, max_steps=max_steps):
            stepper = build_stepper(job_type, params)
            progress = None
            result = None
            steps = 0
            while steps < max_steps and not stepper.done(state):
                if step_delay_s > 0.0:
                    time.sleep(step_delay_s)
                state, progress = stepper.step(state)
                steps += 1
            done = stepper.done(state)
            if done:
                result, state = stepper.finalize(state)
        conn.send(("ok", state, progress, result, done))
    except Exception as error:  # noqa: BLE001 - marshalled to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class JobExecutor:
    """Single-threaded scheduler over a :class:`JobStore`."""

    def __init__(self, store: JobStore,
                 config: JobExecutorConfig | None = None):
        self.store = store
        self.config = config if config is not None else JobExecutorConfig()
        self._lock = make_lock("jobs.executor")
        self._wake = make_condition("jobs.executor.wake", lock=self._lock)
        self._closed = False
        self._drain_on_close = True
        self._busy = False
        self._child_pid: int | None = None
        self._child_process = None
        self._current_job_id: str | None = None
        self._counts = {"completed": 0, "failed": 0, "cancelled": 0,
                        "crashes": 0, "chunks": 0, "requeued": 0}
        use_fork = self.config.use_fork
        self._use_fork = fork_available() if use_fork is None else bool(use_fork)
        self._ctx = multiprocessing.get_context("fork") if self._use_fork \
            else None
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="repro-jobs-executor")

    def start(self) -> "JobExecutor":
        self._thread.start()
        return self

    # -- introspection (tests + healthz) --------------------------------
    @property
    def busy(self) -> bool:
        with self._lock:
            return self._busy

    @property
    def child_pid(self) -> int | None:
        with self._lock:
            return self._child_pid

    @property
    def current_job_id(self) -> str | None:
        with self._lock:
            return self._current_job_id

    def stats(self) -> dict:
        with self._lock:
            counts = dict(self._counts)
            counts["busy"] = self._busy
            counts["fork"] = self._use_fork
            counts["alive"] = self._thread.is_alive()
            counts["draining"] = self._closed and self._drain_on_close
        return counts

    def notify(self) -> None:
        """Wake the scheduler early (called after a submit)."""
        with self._lock:
            self._wake.notify_all()

    # -- scheduler loop -------------------------------------------------
    def _loop(self) -> None:
        try:
            self._loop_inner()
        except BaseException as exc:
            # per-job failures are recorded on the job; an exception
            # reaching here kills the whole scheduler lane — black-box it
            record_lane_crash("jobs.executor", exc)
            raise

    def _loop_inner(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            record = self._claim()
            if record is None:
                with self._lock:
                    if self._closed:
                        return
                    self._wake.wait(timeout=self.config.poll_interval_s)
                continue
            self._execute(record)

    def _claim(self) -> JobRecord | None:
        for record in self.store.list():
            if record.state != "queued":
                continue
            if record.cancel_requested:
                self.store.transition(record.id, "cancelled")
                with self._lock:
                    self._counts["cancelled"] += 1
                continue
            return self.store.transition(record.id, "running",
                                         attempts=record.attempts + 1)
        return None

    def _execute(self, record: JobRecord) -> None:
        with self._lock:
            self._current_job_id = record.id
        # adopt the submitting request's trace identity: jobs.execute
        # (and the jobs.chunk spans forked under it) parent to the
        # serve.request span that submitted the job, so the whole job
        # reads back from the trace as one connected tree
        ctx = None
        if record.trace:
            ctx = TraceContext(
                trace_id=record.trace.get("trace_id"),
                request_id=record.trace.get("request_id"),
                parent_uid=record.trace.get("parent_uid"))
        try:
            with use_context(ctx), \
                    span("jobs.execute", job_id=record.id,
                         job_type=record.type, attempt=record.attempts):
                self._execute_inner(record)
        finally:
            with self._lock:
                self._current_job_id = None

    def _execute_inner(self, record: JobRecord) -> None:
        try:
            stepper = build_stepper(record.type, record.params)
        except Exception as error:  # noqa: BLE001 - recorded on the job
            self._fail(record.id, f"{type(error).__name__}: {error}")
            return
        state = self.store.load_checkpoint(record.id)
        if state is None:
            state = stepper.init_state()
            self.store.save_checkpoint(record.id, state)

        while True:
            fresh = self.store.get(record.id)
            if fresh.cancel_requested:
                self.store.transition(record.id, "cancelled")
                with self._lock:
                    self._counts["cancelled"] += 1
                counter("jobs.cancelled").inc()
                return
            with self._lock:
                closing = self._closed
            if closing:
                # Drain: park the job back in the queue with its latest
                # checkpoint; the next boot resumes it.
                self.store.transition(record.id, "queued")
                with self._lock:
                    self._counts["requeued"] += 1
                return
            if stepper.done(state):
                break
            try:
                state, progress, result, done = self._run_chunk(record, state)
            except StepCrashedError:
                with self._lock:
                    self._counts["crashes"] += 1
                    closing = self._closed
                counter("jobs.step_crashes").inc()
                if closing:
                    # the chunk died because close() tore it down, not on
                    # its own: requeue without burning an attempt
                    self.store.transition(record.id, "queued")
                    with self._lock:
                        self._counts["requeued"] += 1
                elif fresh.attempts >= self.config.max_attempts:
                    self._fail(record.id,
                               f"step process crashed "
                               f"{fresh.attempts} times (limit "
                               f"{self.config.max_attempts})")
                else:
                    self.store.transition(record.id, "queued")
                    with self._lock:
                        self._counts["requeued"] += 1
                return
            except _ChunkError as error:
                self._fail(record.id, str(error))
                return
            with self._lock:
                self._counts["chunks"] += 1
            self.store.save_checkpoint(record.id, state)
            if progress is not None:
                self.store.transition(record.id, "running",
                                      progress=progress)
            if done:
                self.store.transition(record.id, "completed", result=result)
                with self._lock:
                    self._counts["completed"] += 1
                counter("jobs.completed").inc()
                return

        # Budget already exhausted when we arrived (e.g. resumed after a
        # crash that landed exactly on the last checkpoint): finalize
        # inline.
        result, state = stepper.finalize(state)
        self.store.save_checkpoint(record.id, state)
        self.store.transition(record.id, "completed", result=result)
        with self._lock:
            self._counts["completed"] += 1
        counter("jobs.completed").inc()

    def _fail(self, job_id: str, message: str) -> None:
        self.store.transition(job_id, "failed", error=message)
        with self._lock:
            self._counts["failed"] += 1
        counter("jobs.failed").inc()

    # -- one chunk ------------------------------------------------------
    def _run_chunk(self, record: JobRecord, state: dict):
        if not self._use_fork:
            return self._run_chunk_inline(record, state)
        check_fork_safety()
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_chunk_main,
            args=(child_conn, record.type, record.params, state,
                  self.config.checkpoint_every, self.config.step_delay_s),
            daemon=True, name=f"repro-jobs-step-{record.id}")
        process.start()
        child_conn.close()
        with self._lock:
            self._busy = True
            self._child_pid = process.pid
            self._child_process = process
        try:
            try:
                if not parent_conn.poll(self.config.chunk_timeout_s):
                    process.terminate()
                    raise StepCrashedError(
                        f"step process for job {record.id} timed out after "
                        f"{self.config.chunk_timeout_s}s")
                message = parent_conn.recv()
            except (EOFError, OSError) as error:
                raise StepCrashedError(
                    f"step process for job {record.id} died mid-chunk"
                ) from error
        finally:
            process.join(5.0)
            parent_conn.close()
            with self._lock:
                self._busy = False
                self._child_pid = None
                self._child_process = None
        return self._unpack(message)

    def _run_chunk_inline(self, record: JobRecord, state: dict):
        """No-fork fallback: same chunk semantics, no kill immunity."""

        class _Box:
            payload = None

            def send(self, value):
                self.payload = value

            def close(self):
                pass

        box = _Box()
        with self._lock:
            self._busy = True
        try:
            _chunk_main(box, record.type, record.params, state,
                        self.config.checkpoint_every,
                        self.config.step_delay_s)
        finally:
            with self._lock:
                self._busy = False
        if box.payload is None:
            raise StepCrashedError(f"inline chunk for job {record.id} "
                                   f"produced no result")
        return self._unpack(box.payload)

    @staticmethod
    def _unpack(message):
        if message[0] == "error":
            raise _ChunkError(message[1])
        _, state, progress, result, done = message
        return state, progress, result, done

    # -- shutdown -------------------------------------------------------
    def close(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the scheduler.

        ``drain=True`` lets the in-flight chunk finish and requeues the
        current job at its latest checkpoint; ``drain=False`` terminates
        the step process immediately (the job still requeues — its last
        checkpoint is intact).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._drain_on_close = drain
            process = self._child_process
            self._wake.notify_all()
        if not drain and process is not None:
            try:
                process.terminate()
            except (OSError, AttributeError):
                pass
        if self._thread.is_alive():
            self._thread.join(timeout_s)


class _ChunkError(RuntimeError):
    """The stepper raised inside the child; the job fails cleanly."""
