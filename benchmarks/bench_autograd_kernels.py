"""Micro-benchmarks of the autograd engine's hot kernels.

Conv3d (the dominant cost in every model), the transposed conv
(decoder), the SDM unit, and one full SDM-PEB training step — useful
for tracking performance regressions in the from-scratch substrate.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import SDMPEB, SDMUnit, SDMPEBLoss
from repro.experiments import sdmpeb_config_for
from repro.config import GridConfig
from repro.tensor import Tensor, conv3d, conv_transpose3d, no_grad

RNG = np.random.default_rng(4)


def test_bench_conv3d_forward(benchmark):
    x = Tensor(RNG.standard_normal((1, 16, 8, 32, 32)))
    w = Tensor(RNG.standard_normal((16, 16, 3, 3, 3)))

    def forward():
        with no_grad():
            return conv3d(x, w, padding=1)

    benchmark(forward)


def test_bench_conv3d_backward(benchmark):
    x = Tensor(RNG.standard_normal((1, 16, 8, 32, 32)), requires_grad=True)
    w = Tensor(RNG.standard_normal((16, 16, 3, 3, 3)), requires_grad=True)

    def step():
        x.zero_grad()
        w.zero_grad()
        conv3d(x, w, padding=1).sum().backward()

    benchmark(step)


def test_bench_conv_transpose3d(benchmark):
    x = Tensor(RNG.standard_normal((1, 16, 8, 16, 16)))
    w = Tensor(RNG.standard_normal((16, 8, 3, 2, 2)))

    def forward():
        with no_grad():
            return conv_transpose3d(x, w, stride=(1, 2, 2), padding=(1, 0, 0))

    benchmark(forward)


def test_bench_sdm_unit(benchmark):
    nn.init.seed(0)
    unit = SDMUnit(channels=16, state_dim=8)
    x = Tensor(RNG.standard_normal((1, 16, 8, 16, 16)))

    def forward():
        with no_grad():
            return unit(x)

    benchmark(forward)


def test_bench_sdmpeb_training_step(benchmark):
    nn.init.seed(0)
    grid = GridConfig(size_um=1.0, nx=32, ny=32, nz=4)
    model = SDMPEB(sdmpeb_config_for(grid))
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    loss_fn = SDMPEBLoss()
    x = Tensor(RNG.random((1, 4, 32, 32)))
    target = Tensor(RNG.random((1, 4, 32, 32)))

    def step():
        optimizer.zero_grad()
        loss = loss_fn(model(x), target)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    value = benchmark(step)
    assert np.isfinite(value)
