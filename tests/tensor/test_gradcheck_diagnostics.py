"""Tests for structured gradcheck diagnostics and the full-op sweep."""

import numpy as np
import pytest

from repro.tensor import Tensor, sanitize
from repro.tensor.gradcheck import (
    GradcheckResult, gradcheck, numeric_gradient, run_gradcheck_sweep,
)


def _wrong_square(ts):
    # vjp should be 2*x*g; identity is deliberately wrong
    x = ts[0]
    return Tensor.from_op(x.data ** 2, [(x, lambda g: g)]).sum()


class TestStructuredResult:
    def test_pass_returns_truthy_result_with_diagnostics(self):
        result = gradcheck(lambda ts: (ts[0] * ts[0]).sum(), [np.array([1.0, -2.0, 3.0])])
        assert isinstance(result, GradcheckResult)
        assert result and result.ok
        assert len(result.per_input) == 1
        assert result.per_input[0].ok
        assert result.max_abs_error < 1e-6
        assert "passed" in result.summary()

    def test_failure_reports_worst_element_and_input(self):
        result = gradcheck(_wrong_square, [np.array([1.0, 4.0])], raise_on_fail=False)
        assert not result
        failing = result.failing_inputs
        assert [d.input_index for d in failing] == [0]
        # worst element is x=4 where |1 - 2*4| = 7
        assert failing[0].worst_index == (1,)
        assert failing[0].max_abs_error == pytest.approx(7.0, abs=1e-4)
        assert failing[0].autograd_value == pytest.approx(1.0)
        assert failing[0].numeric_value == pytest.approx(8.0, abs=1e-4)
        assert "MISMATCH" in result.summary()

    def test_raise_on_fail_carries_the_structured_summary(self):
        with pytest.raises(AssertionError, match=r"max_abs_err.*at index \(1,\)"):
            gradcheck(_wrong_square, [np.array([1.0, 4.0])], op="wrong_square")

    def test_op_label_lands_in_summary(self):
        result = gradcheck(_wrong_square, [np.array([2.0])], op="wrong_square",
                           raise_on_fail=False)
        assert "wrong_square" in result.summary()

    def test_numeric_gradient_matches_analytic(self):
        grad = numeric_gradient(lambda ts: (ts[0] ** 2.0).sum(), [np.array([3.0])], 0)
        assert grad == pytest.approx([6.0], abs=1e-4)


class TestSweep:
    def test_full_op_sweep_passes_under_sanitizer(self):
        with sanitize():
            results = run_gradcheck_sweep()
        names = [name for name, _ in results]
        assert len(names) == len(set(names))
        # spot-check the sweep really covers every op family
        for expected in ("add", "matmul", "einsum", "conv3d", "conv_transpose3d",
                         "max_", "var", "softmax", "layer_norm", "dropout"):
            assert expected in names, f"sweep is missing op {expected}"
        assert all(result.ok for _, result in results)
