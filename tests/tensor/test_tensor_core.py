"""Tensor class mechanics not covered by the op suites."""

import numpy as np
import pytest

from repro import tensor as T
from repro.tensor import Tensor, as_array, ensure_tensor
from repro.tensor.tensor import unbroadcast


class TestConstruction:
    def test_from_scalar(self):
        t = Tensor(3.0)
        assert t.shape == () and t.item() == 3.0

    def test_from_list(self):
        t = Tensor([[1, 2], [3, 4]])
        assert t.shape == (2, 2) and t.dtype == np.float64

    def test_as_array_passthrough(self):
        t = Tensor([1.0])
        assert as_array(t) is t.data

    def test_ensure_tensor_idempotent(self):
        t = Tensor([1.0])
        assert ensure_tensor(t) is t
        assert isinstance(ensure_tensor(2.0), Tensor)

    def test_name_in_repr(self):
        t = Tensor([1.0], requires_grad=True, name="weights")
        text = repr(t)
        assert "weights" in text and "requires_grad=True" in text

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3 and t.size == 12 and t.ndim == 2

    def test_item_on_single_element_shapes(self):
        assert Tensor(np.array([[2.5]])).item() == 2.5
        assert Tensor(np.array([7.0])).item() == 7.0

    def test_item_on_non_scalar_raises(self):
        with pytest.raises(ValueError, match="one element"):
            Tensor([1.0, 2.0]).item()
        with pytest.raises(ValueError, match=r"\(2, 2\)"):
            Tensor(np.zeros((2, 2))).item()


class TestDetachCopy:
    def test_detach_shares_data(self):
        t = Tensor([1.0], requires_grad=True)
        d = t.detach()
        assert d.data is t.data and not d.requires_grad

    def test_copy_is_deep(self):
        t = Tensor([1.0])
        c = t.copy()
        c.data[0] = 5.0
        assert t.data[0] == 1.0


class TestBackwardValidation:
    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_seed_gradient_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward(np.zeros(3))

    def test_intermediate_nodes_do_not_keep_grad(self):
        x = Tensor([1.0], requires_grad=True)
        middle = x * 2.0
        (middle * 3.0).sum().backward()
        assert middle.grad is None   # only leaves accumulate
        assert np.allclose(x.grad, [6.0])

    def test_diamond_graph_accumulates_once(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a + b).sum().backward()
        assert np.allclose(x.grad, [7.0])


class TestBackwardOwnership:
    """In-place accumulation must never mutate buffers vjps hand back."""

    def test_shared_vjp_buffer_not_mutated(self):
        """Three vjps returning the *same* array: the leaf must see the
        sum, and the shared buffer must come through untouched."""
        shared = np.array([1.0, 2.0])
        original = shared.copy()
        x = Tensor(np.zeros(2), requires_grad=True)
        branches = [Tensor.from_op(np.zeros(2), [(x, lambda g: shared)])
                    for _ in range(3)]
        (branches[0] + branches[1] + branches[2]).sum().backward()
        assert np.array_equal(shared, original)
        assert np.allclose(x.grad, 3.0 * original)

    def test_seed_gradient_not_mutated(self):
        """The caller's explicit seed array is borrowed, not owned."""
        seed = np.array([1.0, 1.0])
        original = seed.copy()
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 1.0 + x * 2.0
        y.backward(seed)
        assert np.array_equal(seed, original)
        assert np.allclose(x.grad, [3.0, 3.0])

    def test_forward_data_not_mutated_by_accumulation(self):
        """vjps that return forward arrays must not see those arrays
        changed by downstream accumulation."""
        x = Tensor([2.0, 3.0], requires_grad=True)
        a = x * 1.0
        b1 = Tensor.from_op(np.zeros(2), [(a, lambda g: a.data)])
        b2 = Tensor.from_op(np.zeros(2), [(a, lambda g: a.data)])
        data_before = a.data.copy()
        (b1 + b2).sum().backward()
        assert np.array_equal(a.data, data_before)
        assert np.allclose(x.grad, 2.0 * data_before)


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)) is g

    def test_sums_leading_axes(self):
        g = np.ones((4, 2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)
        assert unbroadcast(g, (2, 3))[0, 0] == 4.0

    def test_sums_singleton_axes(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        assert out.shape == (2, 1) and out[0, 0] == 3.0

    def test_scalar_target(self):
        g = np.ones((2, 2))
        assert unbroadcast(g, ()).shape == ()


class TestNoGradNesting:
    def test_nested_restores(self):
        assert T.is_grad_enabled()
        with T.no_grad():
            assert not T.is_grad_enabled()
            with T.no_grad():
                assert not T.is_grad_enabled()
            assert not T.is_grad_enabled()
        assert T.is_grad_enabled()

    def test_exception_restores(self):
        try:
            with T.no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert T.is_grad_enabled()


class TestMixedOperands:
    def test_tensor_plus_ndarray(self):
        out = Tensor([1.0, 2.0]) + np.array([3.0, 4.0])
        assert isinstance(out, Tensor)
        assert np.allclose(out.data, [4.0, 6.0])

    def test_ndarray_times_tensor_stays_tensor(self):
        out = np.array([2.0]) * Tensor([3.0])
        assert isinstance(out, Tensor)
        assert np.allclose(out.data, [6.0])
