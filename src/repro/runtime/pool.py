"""Process-pool execution policy for embarrassingly parallel stages.

The rigorous ``[A] -> [I]`` flow is one independent solver run per
seeded clip, so it parallelizes trivially — *provided* the results come
back in a deterministic order and each task derives all of its
randomness from its own seed (which :func:`repro.litho.generate_clip`
guarantees).  :func:`parallel_map` fans tasks out across ``fork``ed
processes and reassembles results in submission order; on platforms
without ``fork`` (or with ``workers=1``) it degrades to a plain serial
loop that is bit-for-bit the historical code path.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, Sequence

from repro.obs import capture_context, counter, span, trace_enabled, use_context

__all__ = ["resolve_workers", "fork_available", "parallel_map"]


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: explicit arg > ``REPRO_WORKERS`` > cpu count.

    Always at least 1; a non-positive or unparsable request raises so a
    typo'd environment variable fails loudly instead of silently running
    serial.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError as exc:
                raise ValueError(f"REPRO_WORKERS={env!r} is not an integer") from exc
        else:
            workers = os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"worker count must be >= 1, got {workers}")
    return workers


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (it does not on Windows,
    and ``spawn`` would re-import the world per task, so we fall back to
    serial instead)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _limit_worker_threads() -> None:
    """Pool-worker initializer: each process runs its tasks single-
    threaded so N workers never oversubscribe N cores with FFT threads."""
    from repro.runtime.fft import set_fft_workers

    set_fft_workers(1)


class _TracedTask:
    """Pickle-friendly wrapper giving each pool task a worker-side span.

    Only substituted for the raw ``fn`` when tracing is already enabled
    in the parent (forked children inherit the enabled flag and the
    ``O_APPEND`` sink descriptor), so untraced runs dispatch the exact
    historical callable.  The constructor snapshots the dispatching
    thread's trace context (request id + the enclosing span's uid), so
    worker-side spans attach to the dispatch point of the request's
    span tree — span ids are ``pid``-qualified, making the cross-process
    ``parent`` pointer unambiguous.
    """

    __slots__ = ("fn", "ctx")

    def __init__(self, fn: Callable):
        self.fn = fn
        self.ctx = capture_context()

    def __call__(self, task):
        with use_context(self.ctx), span("pool.worker_task"):
            return self.fn(task)


def parallel_map(fn: Callable, items: Iterable, workers: int | None = None) -> list:
    """``[fn(item) for item in items]`` across a fork-based process pool.

    Results are returned in input order regardless of completion order.
    Runs serially (in-process, no pool, identical numerics) when the
    resolved worker count is 1, there are fewer than two items, ``fork``
    is unavailable, or pool creation fails (e.g. a sandbox forbidding
    new processes).

    ``fn`` must be picklable (a module-level function) and must derive
    any randomness from its argument, not from global state.
    """
    tasks: Sequence = list(items)
    workers = resolve_workers(workers)
    counter("pool.dispatches").inc()
    counter("pool.tasks").inc(len(tasks))
    if workers == 1 or len(tasks) < 2 or not fork_available():
        counter("pool.serial_runs").inc()
        with span("pool.dispatch", mode="serial", workers=1, tasks=len(tasks)):
            return [fn(task) for task in tasks]
    from repro.runtime.sync import check_fork_safety

    # surface held-lock / live-thread hazards deterministically at the
    # dispatch site (the at-fork hook alone cannot raise into user code)
    check_fork_safety()
    context = multiprocessing.get_context("fork")
    try:
        with span("pool.dispatch", mode="fork",
                  workers=min(workers, len(tasks)), tasks=len(tasks)):
            # capture inside the dispatch span so worker-side spans hang
            # off it (and inherit the request context, if any)
            task_fn = _TracedTask(fn) if trace_enabled() else fn
            with context.Pool(processes=min(workers, len(tasks)),
                              initializer=_limit_worker_threads) as pool:
                return pool.map(task_fn, tasks)
    except OSError:
        counter("pool.serial_fallbacks").inc()
        with span("pool.dispatch", mode="serial_fallback", workers=1, tasks=len(tasks)):
            return [fn(task) for task in tasks]
