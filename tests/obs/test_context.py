"""Request-scoped trace context: capture, restore, thread and fork hops."""

import json
import os
import threading

import pytest

from repro.obs import (
    TraceContext, capture_context, current_context, current_span_uid,
    disable_tracing, enable_tracing, new_request_context, new_request_id,
    reset_metrics, sanitize_request_id, span, use_context,
)
from repro.runtime import parallel_map
from repro.runtime.pool import fork_available


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    disable_tracing()
    reset_metrics()


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


class TestTraceContext:
    def test_frozen(self):
        ctx = TraceContext(trace_id="t", request_id="r")
        with pytest.raises(AttributeError):
            ctx.trace_id = "other"

    def test_rebased_keeps_identity(self):
        ctx = TraceContext(trace_id="t", request_id="r", parent_uid="1-1")
        moved = ctx.rebased("1-9")
        assert (moved.trace_id, moved.request_id) == ("t", "r")
        assert moved.parent_uid == "1-9"
        assert ctx.parent_uid == "1-1"  # original untouched

    def test_new_request_id_shape(self):
        rid = new_request_id()
        assert len(rid) == 16
        assert sanitize_request_id(rid) == rid


class TestSanitize:
    @pytest.mark.parametrize("good", ["abc", "a-b_c.d:e", "A" * 64, "42"])
    def test_accepts_conservative_ids(self, good):
        assert sanitize_request_id(good) == good

    @pytest.mark.parametrize("bad", [None, "", "a" * 65, "has space",
                                     "new\nline", "quote\"", "emoji☃"])
    def test_rejects_everything_else(self, bad):
        assert sanitize_request_id(bad) is None

    def test_new_request_context_honors_good_id(self):
        ctx = new_request_context("client-id-1")
        assert ctx.request_id == "client-id-1"
        assert ctx.trace_id == "client-id-1"  # tree keyed by X-Request-Id

    def test_new_request_context_replaces_bad_id(self):
        ctx = new_request_context("not ok\n")
        assert ctx.request_id != "not ok\n"
        assert len(ctx.request_id) == 16


class TestUseContext:
    def test_activate_and_restore(self):
        assert current_context() is None
        ctx = new_request_context()
        with use_context(ctx):
            assert current_context() is ctx
        assert current_context() is None

    def test_none_is_noop(self):
        outer = new_request_context()
        with use_context(outer):
            with use_context(None):
                assert current_context() is outer

    def test_nesting_restores_outer(self):
        outer, inner = new_request_context(), new_request_context()
        with use_context(outer):
            with use_context(inner):
                assert current_context() is inner
            assert current_context() is outer


class TestCapture:
    def test_nothing_to_carry(self):
        assert capture_context() is None

    def test_rebases_onto_innermost_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        ctx = new_request_context("req1")
        with use_context(ctx):
            with span("outer"):
                captured = capture_context()
                open_uid = current_span_uid()
        assert captured.trace_id == "req1"
        assert captured.parent_uid == open_uid
        assert captured.parent_uid == read_events(path)[0]["id"]

    def test_anonymous_context_when_span_open_without_request(self, tmp_path):
        enable_tracing(tmp_path / "t.jsonl")
        with span("outer"):
            captured = capture_context()
            assert captured is not None
            assert captured.parent_uid == current_span_uid()
            assert captured.trace_id == captured.request_id

    def test_context_without_span_carries_parent_uid(self):
        ctx = TraceContext(trace_id="t", request_id="r", parent_uid="9-9")
        with use_context(ctx):
            assert capture_context().parent_uid == "9-9"


class TestCrossThread:
    def test_worker_span_parents_to_captured_point(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        with use_context(new_request_context("req-x")):
            with span("serve.request"):
                captured = capture_context()

                def worker():
                    with use_context(captured), span("serve.batch"):
                        pass

                thread = threading.Thread(target=worker)
                thread.start()
                thread.join(10.0)
        events = {e["name"]: e for e in read_events(path)}
        batch, request = events["serve.batch"], events["serve.request"]
        assert batch["parent"] == request["id"]
        assert batch["trace"] == request["trace"] == "req-x"
        assert batch["tid"] != request["tid"]

    def test_sibling_threads_do_not_share_span_stacks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        barrier = threading.Barrier(2, timeout=10.0)

        def worker(name):
            with span(name):
                barrier.wait()  # both spans open concurrently
                barrier.wait()

        threads = [threading.Thread(target=worker, args=(f"lane{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        events = read_events(path)
        # neither span may have adopted the other as parent
        assert all(e["parent"] is None and e["depth"] == 0 for e in events)


def _square(x):
    """Module-level so it pickles into pool workers."""
    return x * x


class TestForkPropagation:
    @pytest.mark.skipif(not fork_available(), reason="no fork start method")
    def test_pool_workers_join_the_request_tree(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        with use_context(new_request_context("req-fork")):
            assert parallel_map(_square, [1, 2, 3, 4], workers=2) == [1, 4, 9, 16]
        events = read_events(path)
        dispatch = next(e for e in events if e["name"] == "pool.dispatch")
        if dispatch["attrs"]["mode"] != "fork":
            pytest.skip("process pools unavailable in this environment")
        workers = [e for e in events if e["name"] == "pool.worker_task"]
        assert len(workers) == 4
        assert {e["trace"] for e in workers} == {"req-fork"}
        assert {e["parent"] for e in workers} == {dispatch["id"]}
        # ran in forked children, and ids stay unique across pids
        assert all(e["pid"] != os.getpid() for e in workers)
        uids = [e["id"] for e in events]
        assert len(uids) == len(set(uids))
