"""Counters, timers, histograms and the process-local registry."""

import pytest

from repro.obs import (
    Counter, Histogram, MetricsRegistry, Timer,
    counter, histogram, metrics_snapshot, reset_metrics, timer,
)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_metrics()
    yield
    reset_metrics()


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_snapshot(self):
        c = Counter("c")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestTimer:
    def test_observe_accumulates(self):
        t = Timer("t")
        t.observe(0.5)
        t.observe(1.5)
        assert t.count == 2
        assert t.total_s == 2.0
        assert t.min_s == 0.5 and t.max_s == 1.5
        assert t.mean_s == 1.0

    def test_context_manager_records_positive_duration(self):
        t = Timer("t")
        with t.time():
            sum(range(100))
        assert t.count == 1
        assert t.total_s > 0.0

    def test_empty_snapshot_has_zero_min(self):
        assert Timer("t").snapshot()["min_s"] == 0.0


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.1):
            h.observe(v)
        assert h.bucket_counts == [2, 1, 1]
        assert h.count == 4
        assert h.min == 0.1 and h.max == 50.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10.0, 1.0))

    def test_default_buckets_span_micro_to_minutes(self):
        h = Histogram("h")
        assert h.bounds[0] < 1e-5
        assert h.bounds[-1] > 60.0


class TestRegistry:
    def test_same_name_returns_same_metric(self):
        assert counter("a") is counter("a")
        assert timer("b") is timer("b")
        assert histogram("c") is histogram("c")

    def test_kind_conflict_raises(self):
        counter("x")
        with pytest.raises(TypeError):
            timer("x")

    def test_snapshot_covers_all_kinds(self):
        counter("a").inc(2)
        timer("b").observe(0.1)
        histogram("c").observe(1.0)
        snap = metrics_snapshot()
        assert snap["a"]["type"] == "counter"
        assert snap["b"]["type"] == "timer"
        assert snap["c"]["type"] == "histogram"

    def test_reset_clears(self):
        counter("a").inc()
        reset_metrics()
        assert metrics_snapshot() == {}

    def test_registries_are_independent(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("n").inc()
        assert r2.counter("n").value == 0
