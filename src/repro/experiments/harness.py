"""Shared experiment harness: train surrogates, evaluate paper metrics.

This is the machinery behind Tables II/III and Figs. 7-9: dataset
generation (cached), the method registry, per-method training with the
appropriate objective, and evaluation of every metric the paper
reports — inhibitor RMSE/NRMSE, development-rate RMSE/NRMSE, CD error
in x/y, and runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro import nn
from repro.config import GridConfig, LithoConfig
from repro.core import (
    SDMPEB, SDMPEBConfig, LossConfig, Trainer, TrainConfig, TWO_DIRECTIONS,
    label_to_inhibitor,
)
from repro.baselines import (
    DeepCNN, DeepCNNConfig, TempoResist, TempoResistConfig, FNO3d, FNOConfig,
    DeePEB, DeePEBConfig,
)
from repro.data import PEBDataset, generate_dataset
from repro.litho import development_rate, development_arrival, contact_cds
from repro.metrics import rmse, nrmse
from repro.obs import span

#: the Table II method order
TABLE2_METHODS = ("DeepCNN", "TEMPO-resist", "FNO", "DeePEB", "SDM-PEB")

#: baselines train with their native objective family (MaxSE + plain MSE);
#: SDM-PEB uses the full Eq. 22 objective.
BASELINE_LOSS = LossConfig(use_focal=True, gamma=0.0, use_divergence=False)
SDM_LOSS = LossConfig()


@dataclass
class ExperimentSettings:
    """Scale knobs for a reproduction run."""

    num_clips: int = 24
    train_fraction: float = 0.75
    epochs: int = 30
    batch_size: int = 2
    learning_rate: float = 3e-3
    lr_step_size: int = 10
    lr_gamma: float = 0.7
    config: LithoConfig = field(default_factory=LithoConfig)
    time_step_s: float = 0.25
    base_seed: int = 0
    init_seed: int = 0
    cache_dir: str | None = ".repro_cache"
    #: process count for rigorous dataset generation (None = REPRO_WORKERS
    #: env or all cores; 1 = the historical serial path)
    workers: int | None = None
    evaluate_cd: bool = True
    #: cap on the number of test clips used for (expensive) CD evaluation
    cd_clips: int | None = None

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Tiny setting for smoke runs and pytest benchmarks (~seconds/model)."""
        return cls(num_clips=8, train_fraction=0.75, epochs=3, batch_size=2,
                   config=LithoConfig(grid=GridConfig(size_um=1.0, nx=32, ny=32, nz=4)),
                   cd_clips=2)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """The headline reproduction setting.

        1 um clips at 32x32x4 voxels — the same 31.25 nm x-y pitch as
        the 2 um/64x64 configuration, sized so the five-method
        comparison trains to differentiation on a single CPU core in
        tens of minutes.  Scale up via ``config=LithoConfig()`` (2 um,
        64x64x8) or :func:`repro.config.paper_scale_config` when more
        compute is available.
        """
        return cls(num_clips=32, epochs=60, lr_step_size=20, batch_size=2,
                   config=LithoConfig(grid=GridConfig(size_um=1.0, nx=32, ny=32, nz=4)),
                   cd_clips=8)


def sdmpeb_config_for(grid: GridConfig, **overrides) -> SDMPEBConfig:
    """An SDM-PEB architecture matched to the grid's spatial size."""
    if grid.nx >= 64:
        base = SDMPEBConfig()
    else:
        base = SDMPEBConfig(stage_dims=(12, 16, 24, 32), patch_sizes=(5, 3, 3, 3),
                            strides=(2, 2, 2, 2), num_heads=(1, 2, 2, 2),
                            reduction_ratios=(4, 2, 1, 1), fusion_dim=24,
                            ssm_state_dim=4, decoder_dims=(12, 8))
    return replace(base, **overrides) if overrides else base


def build_method(name: str, grid: GridConfig):
    """Instantiate a method by Table II name; returns (model, loss_config)."""
    if name == "DeepCNN":
        return DeepCNN(DeepCNNConfig(width=12, num_blocks=2)), BASELINE_LOSS
    if name == "TEMPO-resist":
        return TempoResist(TempoResistConfig(width=12, depth_levels=grid.nz)), BASELINE_LOSS
    if name == "FNO":
        modes = (min(3, grid.nz // 2), min(6, grid.nx // 4), min(6, grid.nx // 4))
        return FNO3d(FNOConfig(width=10, num_layers=3, modes=modes)), BASELINE_LOSS
    if name == "DeePEB":
        modes = (min(3, grid.nz // 2), min(6, grid.nx // 4), min(6, grid.nx // 4))
        return DeePEB(DeePEBConfig(width=12, num_fourier_layers=2,
                                   num_cnn_blocks=2, modes=modes)), BASELINE_LOSS
    if name == "SDM-PEB":
        return SDMPEB(sdmpeb_config_for(grid)), SDM_LOSS
    raise ValueError(f"unknown method {name!r}")


def build_ablation(name: str, grid: GridConfig):
    """Instantiate a Table III ablation variant of SDM-PEB."""
    if name == "Single Layer Encoder":
        return SDMPEB(sdmpeb_config_for(grid, single_stage=True)), SDM_LOSS
    if name == "2-D Scan":
        return SDMPEB(sdmpeb_config_for(grid, scan_directions=TWO_DIRECTIONS)), SDM_LOSS
    if name == "w/o. Focal Loss":
        return SDMPEB(sdmpeb_config_for(grid)), replace(SDM_LOSS, use_focal=False)
    if name == "w/o. Regularization":
        return SDMPEB(sdmpeb_config_for(grid)), replace(SDM_LOSS, use_divergence=False)
    if name == "Non-overlapped Merging":
        return SDMPEB(sdmpeb_config_for(grid, patch_merging="non_overlapped")), SDM_LOSS
    if name == "LTI SSM":
        return SDMPEB(sdmpeb_config_for(grid, ssm_type="lti")), SDM_LOSS
    if name == "SDM-PEB":
        return SDMPEB(sdmpeb_config_for(grid)), SDM_LOSS
    raise ValueError(f"unknown ablation {name!r}")


@dataclass
class MethodResult:
    """Everything Table II / Fig. 7 reports for one method."""

    name: str
    inhibitor_rmse: float
    inhibitor_nrmse: float
    rate_rmse: float
    rate_nrmse: float
    cd_error_x: float
    cd_error_y: float
    runtime_s: float
    num_parameters: int
    train_seconds: float
    final_train_loss: float
    cd_abs_errors_x: np.ndarray = field(default_factory=lambda: np.zeros(0))
    cd_abs_errors_y: np.ndarray = field(default_factory=lambda: np.zeros(0))


def _reference_cds(test_set: PEBDataset, settings: ExperimentSettings, limit: int):
    """Ground-truth per-clip contact CDs from the rigorous inhibitor."""
    config = settings.config
    references = []
    for sample in test_set.samples[:limit]:
        arrival = development_arrival(sample.inhibitor, config.grid, config.develop)
        references.append(contact_cds(arrival, sample.contacts, config.grid, config.develop))
    return references


def evaluate_method(name: str, trainer: Trainer, test_set: PEBDataset,
                    settings: ExperimentSettings,
                    reference_cds: list | None = None) -> MethodResult:
    """Compute the full Table II row for a trained surrogate."""
    config = settings.config
    k_c = config.peb.catalysis_rate
    inputs = test_set.inputs()
    start = time.perf_counter()
    predicted_labels = trainer.predict(inputs, batch_size=1)
    runtime = (time.perf_counter() - start) / len(inputs)
    predicted_inhibitor = label_to_inhibitor(predicted_labels, k_c)
    true_inhibitor = test_set.inhibitors()
    predicted_rate = development_rate(predicted_inhibitor, config.develop)
    true_rate = development_rate(true_inhibitor, config.develop)

    cd_limit = settings.cd_clips if settings.cd_clips is not None else len(test_set)
    cd_limit = min(cd_limit, len(test_set))
    errors_x, errors_y = [], []
    if settings.evaluate_cd:
        if reference_cds is None:
            reference_cds = _reference_cds(test_set, settings, cd_limit)
        for i in range(cd_limit):
            sample = test_set.samples[i]
            arrival = development_arrival(predicted_inhibitor[i], config.grid, config.develop)
            cds = contact_cds(arrival, sample.contacts, config.grid, config.develop)
            errors_x.extend(cds["x"] - reference_cds[i]["x"])
            errors_y.extend(cds["y"] - reference_cds[i]["y"])
    errors_x, errors_y = np.asarray(errors_x), np.asarray(errors_y)

    return MethodResult(
        name=name,
        inhibitor_rmse=rmse(predicted_inhibitor, true_inhibitor),
        inhibitor_nrmse=nrmse(predicted_inhibitor, true_inhibitor),
        rate_rmse=rmse(predicted_rate, true_rate),
        rate_nrmse=nrmse(predicted_rate, true_rate),
        cd_error_x=float(np.sqrt(np.mean(errors_x ** 2))) if errors_x.size else float("nan"),
        cd_error_y=float(np.sqrt(np.mean(errors_y ** 2))) if errors_y.size else float("nan"),
        runtime_s=runtime,
        num_parameters=trainer.model.num_parameters(),
        train_seconds=trainer.history.wall_time_s,
        final_train_loss=trainer.history.losses[-1] if trainer.history.losses else float("nan"),
        cd_abs_errors_x=np.abs(errors_x),
        cd_abs_errors_y=np.abs(errors_y),
    )


def prepare_data(settings: ExperimentSettings, verbose: bool = False):
    """Generate/load the dataset and split it (same split for all methods)."""
    dataset = generate_dataset(settings.num_clips, settings.config,
                               base_seed=settings.base_seed,
                               time_step_s=settings.time_step_s,
                               cache_dir=settings.cache_dir, verbose=verbose,
                               workers=settings.workers)
    return dataset.split(settings.train_fraction)


def train_method(model, loss_config: LossConfig, train_set: PEBDataset,
                 settings: ExperimentSettings, verbose: bool = False) -> Trainer:
    """Fit one surrogate with the shared schedule."""
    train_config = TrainConfig(
        epochs=settings.epochs, learning_rate=settings.learning_rate,
        lr_step_size=settings.lr_step_size, lr_gamma=settings.lr_gamma,
        batch_size=settings.batch_size, loss=loss_config,
    )
    trainer = Trainer(model, train_set.inputs(), train_set.labels(), train_config)
    trainer.fit(verbose=verbose)
    return trainer


def run_methods(method_names, builder, settings: ExperimentSettings,
                verbose: bool = False, return_trainers: bool = False):
    """Train and evaluate a list of methods on a shared dataset/split.

    Returns the list of :class:`MethodResult`; with ``return_trainers``
    a ``(results, trainers, test_set)`` triple so callers (Fig. 8/9,
    benches) can reuse the fitted models.
    """
    train_set, test_set = prepare_data(settings, verbose=verbose)
    cd_limit = min(settings.cd_clips or len(test_set), len(test_set))
    references = (_reference_cds(test_set, settings, cd_limit)
                  if settings.evaluate_cd else None)
    results = []
    trainers = {}
    for name in method_names:
        nn.init.seed(settings.init_seed)
        model, loss_config = builder(name, settings.config.grid)
        if verbose:
            print(f"== {name}: {model.num_parameters()} parameters")
        with span("experiment.train", method=name):
            trainer = train_method(model, loss_config, train_set, settings, verbose=verbose)
        with span("experiment.evaluate", method=name):
            result = evaluate_method(name, trainer, test_set, settings, references)
        if verbose:
            print(f"   NRMSE(I) {result.inhibitor_nrmse * 100:.2f}%  "
                  f"NRMSE(R) {result.rate_nrmse * 100:.2f}%  "
                  f"CD ({result.cd_error_x:.2f}, {result.cd_error_y:.2f}) nm  "
                  f"RT {result.runtime_s:.3f}s")
        results.append(result)
        trainers[name] = trainer
    if return_trainers:
        return results, trainers, test_set
    return results
