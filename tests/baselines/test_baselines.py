"""Baseline surrogates: spectral conv correctness and model behaviour."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    DeepCNN, DeepCNNConfig, TempoResist, TempoResistConfig, FNO3d, FNOConfig,
    DeePEB, DeePEBConfig, SpectralConv3d, spectral_conv3d, coordinate_channels,
)
from repro.tensor import Tensor
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(23)


def rand(*shape):
    return RNG.standard_normal(shape)


class TestSpectralConv:
    MODES = (1, 2, 2)

    def test_output_real_and_shaped(self):
        layer = SpectralConv3d(2, 3, self.MODES)
        out = layer(Tensor(rand(1, 2, 4, 8, 8)))
        assert out.shape == (1, 3, 4, 8, 8)
        assert out.dtype == np.float64

    def test_low_pass_behaviour(self):
        """With identity-like weights the layer passes a DC field through
        the retained modes only."""
        layer = SpectralConv3d(1, 1, self.MODES)
        layer.weight_real.data[:] = 0.0
        layer.weight_imag.data[:] = 0.0
        # unit weight on every retained mode: acts like a spectral mask
        layer.weight_real.data[0, 0] = 1.0
        constant = Tensor(np.full((1, 1, 4, 8, 8), 2.5))
        out = layer(constant)
        assert np.allclose(out.data, 2.5, atol=1e-9)  # DC is retained

    def test_truncation_removes_high_frequency(self):
        layer = SpectralConv3d(1, 1, self.MODES)
        layer.weight_real.data[:] = 0.0
        layer.weight_imag.data[:] = 0.0
        layer.weight_real.data[0, 0] = 1.0
        x = np.zeros((1, 1, 4, 8, 8))
        x[0, 0] += np.cos(np.pi * np.arange(8))[None, None, :]  # Nyquist in x
        out = layer(Tensor(x))
        assert np.abs(out.data).max() < 1e-9

    def test_gradcheck(self):
        w = rand(1, 2, 2, 4, 4)
        gradcheck(
            lambda ts: (spectral_conv3d(ts[0], ts[1], ts[2], (1, 1, 1)) * w).sum(),
            [rand(1, 1, 2, 4, 4), rand(2, 1, 8, 1, 1, 1), rand(2, 1, 8, 1, 1, 1)],
            atol=1e-4,
        )

    def test_modes_too_large_raises(self):
        layer = SpectralConv3d(1, 1, (4, 2, 2))
        with pytest.raises(ValueError):
            layer(Tensor(rand(1, 1, 4, 8, 8)))

    def test_coordinate_channels(self):
        coords = coordinate_channels((2, 3, 4))
        assert coords.shape == (3, 2, 3, 4)
        assert coords.min() == 0.0 and coords.max() == 1.0
        assert np.all(np.diff(coords[2], axis=2) > 0)


def tiny_models():
    nn.init.seed(31)
    return [
        ("DeepCNN", DeepCNN(DeepCNNConfig(width=6, num_blocks=1))),
        ("TEMPO-resist", TempoResist(TempoResistConfig(width=4, depth_levels=4))),
        ("FNO", FNO3d(FNOConfig(width=6, num_layers=1, modes=(1, 2, 2)))),
        ("DeePEB", DeePEB(DeePEBConfig(width=6, num_fourier_layers=1,
                                       num_cnn_blocks=1, modes=(1, 2, 2)))),
    ]


class TestBaselineModels:
    @pytest.mark.parametrize("name,model", tiny_models())
    def test_forward_shape(self, name, model):
        out = model(Tensor(rand(1, 4, 8, 8)))
        assert out.shape == (1, 4, 8, 8), name

    @pytest.mark.parametrize("name,model", tiny_models())
    def test_gradients_flow(self, name, model):
        model(Tensor(rand(1, 4, 8, 8))).sum().backward()
        missing = [p_name for p_name, p in model.named_parameters() if p.grad is None]
        assert not missing, f"{name}: {missing}"

    @pytest.mark.parametrize("name,model", tiny_models())
    def test_output_stats_affine(self, name, model):
        x = Tensor(rand(1, 4, 8, 8))
        base = model(x).data
        model.set_output_stats(3.0, 2.0)
        assert np.allclose(model(x).data, base * 2.0 + 3.0), name

    def test_invalid_stats_raise(self):
        model = DeepCNN(DeepCNNConfig(width=4, num_blocks=1))
        with pytest.raises(ValueError):
            model.set_output_stats(0.0, -1.0)

    def test_bad_input_rank_raises(self):
        model = DeepCNN(DeepCNNConfig(width=4, num_blocks=1))
        with pytest.raises(ValueError):
            model(Tensor(rand(4, 8, 8)))


class TestTempoDepthIndependence:
    def test_no_cross_depth_flow(self):
        """TEMPO-resist is per-slice 2D: perturbing one depth level must
        leave every other level's output unchanged."""
        nn.init.seed(33)
        model = TempoResist(TempoResistConfig(width=4, depth_levels=4))
        x = rand(1, 4, 8, 8)
        base = model(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 1] += 1.0
        out = model(Tensor(perturbed)).data
        assert np.allclose(out[0, [0, 2, 3]], base[0, [0, 2, 3]])
        assert not np.allclose(out[0, 1], base[0, 1])

    def test_depth_overflow_raises(self):
        model = TempoResist(TempoResistConfig(width=4, depth_levels=2))
        with pytest.raises(ValueError):
            model(Tensor(rand(1, 4, 8, 8)))


class TestDeepCNNLocality:
    def test_receptive_field_is_local(self):
        """A far-away perturbation cannot reach a DeepCNN output voxel."""
        nn.init.seed(34)
        model = DeepCNN(DeepCNNConfig(width=4, num_blocks=1))  # RF radius 4
        x = rand(1, 4, 16, 16)
        base = model(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, :, 0, 0] += 10.0
        out = model(Tensor(perturbed)).data
        assert np.allclose(out[0, :, 15, 15], base[0, :, 15, 15])


class TestFNOGlobality:
    def test_global_receptive_field(self):
        """A single-voxel perturbation reaches every FNO output voxel."""
        nn.init.seed(35)
        model = FNO3d(FNOConfig(width=4, num_layers=1, modes=(1, 2, 2)))
        x = rand(1, 4, 8, 8)
        base = model(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 0, 0, 0] += 10.0
        out = model(Tensor(perturbed)).data
        assert np.abs(out - base)[0, -1, -1, -1] > 1e-8
