"""Mack development-rate model (Eq. 5 of the paper).

Converts the post-bake inhibitor distribution into a local development
rate R(x, y, z):

    R = R_max * (a + 1)(1 - [I])^n / (a + (1 - [I])^n) + R_min,
    a = (1 - M_th)^n * (n + 1) / (n - 1).

(Note: the paper's Eq. 5 prints the denominator as ``a + (1-[n])^n``;
that is a typesetting slip for ``(1-[I])^n`` — the standard Mack form.)
"""

from __future__ import annotations

import numpy as np

from repro.config import DevelopConfig


def mack_a(develop: DevelopConfig) -> float:
    """The Mack `a` constant derived from threshold and reaction order."""
    n = develop.reaction_order
    return (1.0 - develop.threshold) ** n * (n + 1.0) / (n - 1.0)


def development_rate(inhibitor: np.ndarray, develop: DevelopConfig) -> np.ndarray:
    """Local development rate in nm/s from normalized inhibitor in [0, 1]."""
    m = np.clip(inhibitor, 0.0, 1.0)
    n = develop.reaction_order
    a = mack_a(develop)
    deprotected = (1.0 - m) ** n
    rate = develop.r_max_nm_s * (a + 1.0) * deprotected / (a + deprotected) + develop.r_min_nm_s
    return rate
