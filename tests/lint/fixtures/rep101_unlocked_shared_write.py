"""REP101 fixture: stat increment outside the owning lock (line 17)."""

import threading


class Worker:
    """Spawns a worker lane that shares a counter with callers."""

    def __init__(self):
        self._lock = threading.Lock()
        self._done = 0
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        while True:
            self._done += 1

    def stats(self):
        with self._lock:
            return self._done

    def close(self):
        self._thread.join(1.0)
