"""Lithography physics substrate: mask → optics → exposure → PEB → develop.

This package is the "rigorous simulator" side of the reproduction — the
ground-truth generator standing in for Synopsys S-Litho, plus the
development/profile chain used to evaluate CDs.
"""

from .mask import (
    Contact, MaskClip, generate_clip, generate_library, generate_line_space_clip,
    rasterize,
)
from .optics import (
    aerial_image_stack, source_points, pupil_cutoff, depth_positions,
    standing_wave_factor, depth_modulation,
)
from .exposure import initial_photoacid
from .dct import LateralDiffusionPropagator, lateral_step_fdm, neumann_laplacian_eigenvalues
from .peb import RigorousPEBSolver, PEBResult, catalysis_step, neutralization_step
from .develop import development_rate, mack_a
from .eikonal import fast_marching, fast_sweeping, fast_iterative, godunov_update
from .profile import (
    development_arrival, resist_mask, measure_cd, measure_edges, contact_cds,
    cd_error_rms,
)
from .surface import height_map, export_obj
from .opc import (
    OPCResult, RigorousPEBBackend, SurrogatePEBBackend, calibrate_mask_bias,
)
from .metrology import (
    EdgePlacement, ProfileReport, edge_placement_error, cd_uniformity,
    sidewall_angle, resist_loss, developed_fraction_by_depth, profile_report,
)

__all__ = [
    "Contact", "MaskClip", "generate_clip", "generate_library",
    "generate_line_space_clip", "rasterize",
    "aerial_image_stack", "source_points", "pupil_cutoff", "depth_positions",
    "standing_wave_factor", "depth_modulation",
    "initial_photoacid",
    "LateralDiffusionPropagator", "lateral_step_fdm", "neumann_laplacian_eigenvalues",
    "RigorousPEBSolver", "PEBResult", "catalysis_step", "neutralization_step",
    "development_rate", "mack_a",
    "fast_marching", "fast_sweeping", "fast_iterative", "godunov_update",
    "development_arrival", "resist_mask", "measure_cd", "measure_edges",
    "contact_cds", "cd_error_rms",
    "height_map", "export_obj",
    "OPCResult", "RigorousPEBBackend", "SurrogatePEBBackend", "calibrate_mask_bias",
    "EdgePlacement", "ProfileReport", "edge_placement_error", "cd_uniformity",
    "sidewall_angle", "resist_loss", "developed_fraction_by_depth", "profile_report",
]
