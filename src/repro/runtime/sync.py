"""Runtime lock sanitizer: instrumented locks, lock-order and fork checks.

The static REP100-series rules (:mod:`repro.lint.concurrency`) catch
lane/lock misuse the AST can see; this module catches what it cannot —
the actual acquisition *order* at runtime, locks held at ``fork`` time,
and contention.  It is the concurrency analog of the autograd tape
sanitizer and rides the same switch: ``REPRO_SANITIZE=1`` (or the CLI's
``--sanitize``) activates it process-wide, and :func:`sanitize_locks`
scopes it to a block in tests.

Three factories replace direct ``threading`` constructors in the lanes
we own (:mod:`repro.serve`, :mod:`repro.obs.health`):

* :func:`make_lock` / :func:`make_rlock` / :func:`make_condition` —
  with the sanitizer **off** they return the plain ``threading``
  primitive (zero overhead, bitwise-identical behavior); **on**, they
  return a :class:`SanitizedLock` wrapper that

  - records per-thread acquisition order into a global wait-for graph
    and reports **lock-order inversions** (a cycle) with the source
    sites of both conflicting acquisitions,
  - counts acquisitions and contention per lock name into
    :mod:`repro.obs.metrics` (``sync.acquire.*`` / ``sync.contention.*``
    counters, ``sync.wait.*`` timers),
  - participates in the **fork check**: an ``os.register_at_fork``
    hook (plus an explicit pre-dispatch check in
    :func:`repro.runtime.pool.parallel_map`) reports any instrumented
    lock held at fork time and any live non-daemon thread, both of
    which a forked child inherits in an unrunnable state.

Violations are always recorded (:func:`sync_violations`,
``sync.violations.*`` counters).  Deterministic violations — an order
inversion, or forking while the *current* thread holds a lock — also
raise when ``raise_on_violation`` is set (the default under
``sanitize_locks``); timing-dependent ones (another thread holding a
lock at fork, live threads) are report-only so sanitized CI runs don't
flake.
"""

from __future__ import annotations

import contextlib
import itertools
import os
import sys
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "LockSanitizerError", "LockOrderError", "ForkSafetyError", "SyncViolation",
    "lock_sanitizer_enabled", "sanitize_locks", "make_lock", "make_rlock",
    "make_condition", "SanitizedLock", "check_fork_safety", "sync_violations",
    "sync_report", "reset_sync_state", "held_locks",
]


class LockSanitizerError(RuntimeError):
    """Base class for lock-sanitizer failures."""


class LockOrderError(LockSanitizerError):
    """Two locks were acquired in opposite orders on different code paths."""


class ForkSafetyError(LockSanitizerError):
    """The process forked in a state a child cannot safely inherit."""


@dataclass(frozen=True)
class SyncViolation:
    """One recorded sanitizer finding."""

    kind: str      # "lock-order" | "fork-held-lock" | "fork-held-lock-other" | "fork-live-thread"
    message: str


@dataclass
class _Holding:
    """One lock currently held by one thread."""

    uid: int
    name: str
    site: str


@dataclass
class _Edge:
    """Observed order: ``before`` was held while ``after`` was acquired."""

    before_name: str
    after_name: str
    site: str


class _State:
    """Process-global sanitizer state.

    ``mutex`` is a raw ``threading.Lock`` guarding only this book-keeping;
    no user code ever runs while it is held, so it cannot deadlock with
    the locks it watches.
    """

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        self.enabled_override: bool | None = None
        self.raise_on_violation = False
        self.violations: list[SyncViolation] = []
        self.held: dict[int, list[_Holding]] = {}     # thread id -> stack
        self.edges: dict[tuple[int, int], _Edge] = {}  # (before uid, after uid)
        self.adjacency: dict[int, set[int]] = {}
        self.locks_created = 0
        self.fork_hook_installed = False


_STATE = _State()
_UIDS = itertools.count(1)


def lock_sanitizer_enabled() -> bool:
    """Whether the lock sanitizer is active.

    An explicit :func:`sanitize_locks` block wins; otherwise the
    ``REPRO_SANITIZE`` environment variable decides (same contract as
    the tape sanitizer in :mod:`repro.tensor`).
    """
    override = _STATE.enabled_override
    if override is not None:
        return override
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0", "false", "False")


@contextlib.contextmanager
def sanitize_locks(enabled: bool = True, raise_on_violation: bool = True):
    """Scope the lock sanitizer to a block (tests, focused debugging).

    Locks must be *created* inside the block to be instrumented — the
    factories decide plain-vs-wrapped at construction time so that
    disabled runs carry zero overhead.
    """
    previous = (_STATE.enabled_override, _STATE.raise_on_violation)
    _STATE.enabled_override = bool(enabled)
    _STATE.raise_on_violation = bool(raise_on_violation)
    if enabled:
        _install_fork_hook()
    try:
        yield
    finally:
        _STATE.enabled_override, _STATE.raise_on_violation = previous


def reset_sync_state() -> None:
    """Drop recorded violations, held-lock and order-graph state (tests)."""
    with _STATE.mutex:
        _STATE.violations.clear()
        _STATE.held.clear()
        _STATE.edges.clear()
        _STATE.adjacency.clear()


def sync_violations() -> list[SyncViolation]:
    """Snapshot of every violation recorded so far in this process."""
    with _STATE.mutex:
        return list(_STATE.violations)


def held_locks(thread_id: int | None = None) -> list[str]:
    """Names of instrumented locks held by one thread (default: current)."""
    tid = threading.get_ident() if thread_id is None else thread_id
    with _STATE.mutex:
        return [h.name for h in _STATE.held.get(tid, [])]


def sync_report() -> dict:
    """Operational snapshot: graph size, held locks, violations."""
    with _STATE.mutex:
        return {
            "enabled": lock_sanitizer_enabled(),
            "locks_created": _STATE.locks_created,
            "order_edges": len(_STATE.edges),
            "held": {tid: [h.name for h in stack]
                     for tid, stack in _STATE.held.items() if stack},
            "violations": [{"kind": v.kind, "message": v.message}
                           for v in _STATE.violations],
        }


def _counter(name: str):
    # local import: repro.obs imports nothing from runtime.sync, but the
    # lazy import keeps this module importable before obs is configured
    from repro.obs.metrics import counter

    return counter(name)


def _record_violation(kind: str, message: str, error_cls=LockSanitizerError,
                      raise_it: bool = False) -> None:
    with _STATE.mutex:
        _STATE.violations.append(SyncViolation(kind=kind, message=message))
    _counter("sync.violations").inc()
    _counter(f"sync.violations.{kind}").inc()
    print(f"repro.runtime.sync: {kind}: {message}", file=sys.stderr, flush=True)
    if raise_it:
        raise error_cls(message)


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this module."""
    frame = sys._getframe(1)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


def _path_exists(start: int, goal: int) -> bool:
    """DFS over the order graph; caller holds ``_STATE.mutex``."""
    stack, seen = [start], {start}
    while stack:
        node = stack.pop()
        if node == goal:
            return True
        for nxt in _STATE.adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return False


class SanitizedLock:
    """Instrumented wrapper over a ``threading`` lock.

    Duck-compatible with ``threading.Lock``/``RLock`` (including the
    ``_release_save``/``_acquire_restore``/``_is_owned`` protocol
    ``threading.Condition`` uses), so it can stand in anywhere the plain
    primitive does.
    """

    __slots__ = ("name", "uid", "_raw", "_reentrant", "_depth")

    def __init__(self, name: str, reentrant: bool = False):
        self.name = name
        self.uid = next(_UIDS)
        self._reentrant = reentrant
        self._raw = threading.RLock() if reentrant else threading.Lock()
        self._depth: dict[int, int] = {}  # thread id -> recursion depth
        with _STATE.mutex:
            _STATE.locks_created += 1

    # -- core protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        tid = threading.get_ident()
        if self._reentrant and self._depth.get(tid, 0) > 0:
            # pure recursion: no new ordering information
            self._raw.acquire()
            self._depth[tid] += 1
            return True
        got = self._raw.acquire(False)
        if not got:
            if not blocking:
                return False
            _counter(f"sync.contention.{self.name}").inc()
            started = time.perf_counter()
            got = self._raw.acquire(True, timeout)
            self._observe_wait(time.perf_counter() - started)
            if not got:
                return False
        self._note_acquired(tid, _call_site())
        return True

    def release(self) -> None:
        tid = threading.get_ident()
        if self._reentrant and self._depth.get(tid, 0) > 1:
            self._depth[tid] -= 1
            self._raw.release()
            return
        self._note_released(tid)
        self._raw.release()

    def locked(self) -> bool:
        return self._raw.locked() if hasattr(self._raw, "locked") else bool(self._depth)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<SanitizedLock {self.name!r} uid={self.uid}>"

    # -- Condition integration (threading.Condition duck protocol) -----
    def _is_owned(self) -> bool:
        return self._depth.get(threading.get_ident(), 0) > 0

    def _release_save(self):
        """Fully release (all recursion levels) for Condition.wait."""
        tid = threading.get_ident()
        depth = self._depth.get(tid, 0)
        self._note_released(tid)
        if hasattr(self._raw, "_release_save"):
            inner = self._raw._release_save()
        else:
            self._raw.release()
            inner = None
        return (inner, depth)

    def _acquire_restore(self, saved) -> None:
        inner, depth = saved
        if hasattr(self._raw, "_acquire_restore"):
            self._raw._acquire_restore(inner)
        else:
            self._raw.acquire()
        # re-acquisition after a wait is a fresh ordering event; never
        # roll back here — Condition.wait must return with the lock held
        self._note_acquired(threading.get_ident(), _call_site(), depth=depth,
                            roll_back_on_raise=False)

    # -- book-keeping --------------------------------------------------
    def _observe_wait(self, seconds: float) -> None:
        from repro.obs.metrics import timer

        timer(f"sync.wait.{self.name}").observe(seconds)

    def _note_acquired(self, tid: int, site: str, depth: int = 1,
                       roll_back_on_raise: bool = True) -> None:
        _counter(f"sync.acquire.{self.name}").inc()
        inversion: str | None = None
        with _STATE.mutex:
            stack = _STATE.held.setdefault(tid, [])
            for holding in stack:
                if holding.uid == self.uid:
                    continue
                edge_key = (holding.uid, self.uid)
                if edge_key in _STATE.edges:
                    continue
                if _path_exists(self.uid, holding.uid):
                    reverse = _STATE.edges.get((self.uid, holding.uid))
                    reverse_site = reverse.site if reverse else "<transitive>"
                    inversion = (
                        f"lock-order inversion: {self.name!r} acquired while "
                        f"holding {holding.name!r} at {site}, but "
                        f"{holding.name!r} was previously acquired while "
                        f"holding {self.name!r} at {reverse_site}")
                    continue  # record the violation, keep the graph acyclic
                _STATE.edges[edge_key] = _Edge(
                    before_name=holding.name, after_name=self.name, site=site)
                _STATE.adjacency.setdefault(holding.uid, set()).add(self.uid)
            roll_back = (inversion is not None and roll_back_on_raise
                         and _STATE.raise_on_violation)
            if not roll_back:
                stack.append(_Holding(uid=self.uid, name=self.name, site=site))
        if roll_back:
            # undo the acquisition before raising so a caught
            # LockOrderError leaves the lock free and the state consistent
            self._raw.release()
            _record_violation("lock-order", inversion, LockOrderError,
                              raise_it=True)
        self._depth[tid] = depth
        if inversion is not None:
            _record_violation("lock-order", inversion, LockOrderError,
                              raise_it=_STATE.raise_on_violation)

    def _note_released(self, tid: int) -> None:
        self._depth.pop(tid, None)
        with _STATE.mutex:
            stack = _STATE.held.get(tid, [])
            for index in range(len(stack) - 1, -1, -1):
                if stack[index].uid == self.uid:
                    del stack[index]
                    break


# ----------------------------------------------------------------------
# Factories
# ----------------------------------------------------------------------
def make_lock(name: str):
    """A mutex: plain ``threading.Lock`` off, :class:`SanitizedLock` on."""
    if lock_sanitizer_enabled():
        _install_fork_hook()
        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A re-entrant mutex, instrumented when the sanitizer is active."""
    if lock_sanitizer_enabled():
        _install_fork_hook()
        return SanitizedLock(name, reentrant=True)
    return threading.RLock()


def make_condition(name: str, lock=None):
    """A condition variable, built over an (optionally shared) lock.

    Passing the lock returned by :func:`make_lock` keeps the condition
    and its mutex as *one* instrumented lock, mirroring
    ``threading.Condition(existing_lock)``.
    """
    if lock is not None:
        return threading.Condition(lock)
    if lock_sanitizer_enabled():
        _install_fork_hook()
        return threading.Condition(SanitizedLock(name, reentrant=True))
    return threading.Condition()


# ----------------------------------------------------------------------
# Fork safety
# ----------------------------------------------------------------------
def check_fork_safety(raise_on_violation: bool | None = None) -> list[SyncViolation]:
    """Report locks held / non-daemon threads alive right now.

    Called by the ``os.register_at_fork`` before-hook and explicitly by
    :func:`repro.runtime.pool.parallel_map` ahead of pool creation.
    Returns the violations found (empty when fork-safe).  Holding an
    instrumented lock on the *calling* thread raises
    :class:`ForkSafetyError` when ``raise_on_violation`` (defaulting to
    the sanitizer's setting) — that bug is deterministic.  Locks held by
    other threads and live non-daemon threads are timing-dependent, so
    they are recorded but never raised.
    """
    if not lock_sanitizer_enabled():
        return []
    if raise_on_violation is None:
        raise_on_violation = _STATE.raise_on_violation
    found: list[SyncViolation] = []
    tid = threading.get_ident()
    with _STATE.mutex:
        mine = list(_STATE.held.get(tid, []))
        others = {t: list(stack) for t, stack in _STATE.held.items()
                  if t != tid and stack}
    before = len(_STATE.violations)
    if mine:
        names = ", ".join(f"{h.name!r} (acquired at {h.site})" for h in mine)
        _record_violation(
            "fork-held-lock",
            f"fork requested while the forking thread holds {names}; a child "
            f"would inherit the lock in a locked state and deadlock",
            ForkSafetyError, raise_it=raise_on_violation)
    for other_tid, stack in sorted(others.items()):
        names = ", ".join(f"{h.name!r} (acquired at {h.site})" for h in stack)
        _record_violation(
            "fork-held-lock-other",
            f"fork requested while thread {other_tid} holds {names}; the "
            f"child inherits it locked with no owner to release it")
    main = threading.main_thread()
    current = threading.current_thread()
    rogue = [t for t in threading.enumerate()
             if t is not main and t is not current and not t.daemon and t.is_alive()]
    for thread in rogue:
        _record_violation(
            "fork-live-thread",
            f"fork requested while non-daemon thread {thread.name!r} is "
            f"alive; it does not exist in the child, leaving its locks and "
            f"state orphaned")
    with _STATE.mutex:
        found = _STATE.violations[before:]
    return found


def _before_fork() -> None:
    # never raise out of the libc fork path: record only
    try:
        check_fork_safety(raise_on_violation=False)
    except Exception:  # noqa: BLE001 - a watchdog must not break fork itself
        pass


def _install_fork_hook() -> None:
    if _STATE.fork_hook_installed or not hasattr(os, "register_at_fork"):
        return
    with _STATE.mutex:
        if _STATE.fork_hook_installed:
            return
        _STATE.fork_hook_installed = True
    os.register_at_fork(before=_before_fork)
