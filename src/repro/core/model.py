"""The SDM-PEB model (Fig. 2) and its configuration.

Input: the 3D photoacid latent image (B, D, H, W) or (B, 1, D, H, W).
Output: the predicted label volume Y (B, D, H, W); convert to inhibitor
with :func:`repro.core.label.label_to_inhibitor`.

The configuration exposes every switch used by the Table III ablation:
``single_stage`` (Single Layer Encoder), ``scan_directions`` (2-D Scan),
``patch_merging`` (Fig. 3), and ``use_sdm``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tensor as T
from repro.nn.conv import Conv3d, DepthwiseConv3d
from repro.nn.module import Module, ModuleList
from .decoder import Decoder, FeatureFusion
from .encoder import EncoderLayer
from .patch import make_merging
from .sdm_unit import THREE_DIRECTIONS


@dataclass(frozen=True)
class SDMPEBConfig:
    """Architecture hyperparameters (paper values in comments)."""

    in_channels: int = 1
    #: per-stage feature dims; paper: (64, 128, 320, 512)
    stage_dims: tuple = (16, 32, 48, 64)
    #: in-plane patch kernel per stage; paper: (15, 3, 3, 3)
    patch_sizes: tuple = (7, 3, 3, 3)
    #: in-plane stride per stage; paper: (8, 2, 2, 2)
    strides: tuple = (4, 2, 2, 2)
    #: attention heads per stage
    num_heads: tuple = (1, 2, 2, 4)
    #: attention K/V reduction ratio per stage; paper: (64, 16, 4, 1)
    reduction_ratios: tuple = (16, 4, 1, 1)
    mlp_ratio: float = 2.0
    ssm_state_dim: int = 8
    #: scan directions; TWO_DIRECTIONS reproduces the 2-D scan ablation
    scan_directions: tuple = THREE_DIRECTIONS
    scan_mode: str = "chunked"
    discretization: str = "zoh"
    #: 'selective' (Mamba) or 'lti' (S4D; the selectivity ablation)
    ssm_type: str = "selective"
    #: fusion MLP width; paper: 768
    fusion_dim: int = 48
    #: decoder hidden channels
    decoder_dims: tuple = (16, 8)
    #: full-resolution skip channels fed into the decoder head (0 = off)
    input_skip_channels: int = 8
    #: channels of the full-resolution residual refinement head (0 = off)
    refine_channels: int = 8
    #: 'overlapped' (default) or 'non_overlapped' (Fig. 3 ablation)
    patch_merging: str = "overlapped"
    use_sdm: bool = True
    #: Table III "Single Layer Encoder": keep only stage 1
    single_stage: bool = False

    @property
    def num_stages(self) -> int:
        return 1 if self.single_stage else len(self.stage_dims)

    def validate(self) -> None:
        lengths = {len(self.stage_dims), len(self.patch_sizes), len(self.strides),
                   len(self.num_heads), len(self.reduction_ratios)}
        if len(lengths) != 1:
            raise ValueError("per-stage config tuples must have equal lengths")
        for dim, heads in zip(self.stage_dims, self.num_heads):
            if dim % heads:
                raise ValueError(f"stage dim {dim} not divisible by heads {heads}")


class SDMPEB(Module):
    """Spatial-Depthwise Mamba PEB surrogate model."""

    def __init__(self, config: SDMPEBConfig | None = None):
        super().__init__()
        self.config = config if config is not None else SDMPEBConfig()
        self.config.validate()
        cfg = self.config
        self.stem = DepthwiseConv3d(cfg.in_channels, kernel_size=3, padding=1)
        stages = cfg.num_stages
        self.embeddings = ModuleList()
        self.encoders = ModuleList()
        previous = cfg.in_channels
        for i in range(stages):
            self.embeddings.append(make_merging(
                cfg.patch_merging, previous, cfg.stage_dims[i],
                cfg.patch_sizes[i], cfg.strides[i]))
            self.encoders.append(EncoderLayer(
                cfg.stage_dims[i], num_heads=cfg.num_heads[i],
                reduction_ratio=cfg.reduction_ratios[i], mlp_ratio=cfg.mlp_ratio,
                use_sdm=cfg.use_sdm, sdm_state_dim=cfg.ssm_state_dim,
                scan_directions=cfg.scan_directions, scan_mode=cfg.scan_mode,
                discretization=cfg.discretization, ssm_type=cfg.ssm_type))
            previous = cfg.stage_dims[i]
        self.fusion = FeatureFusion(cfg.stage_dims[:stages], cfg.fusion_dim)
        if cfg.input_skip_channels:
            self.skip_proj = Conv3d(cfg.in_channels, cfg.input_skip_channels,
                                    kernel_size=3, padding=1)
        else:
            self.skip_proj = None
        self.decoder = Decoder(cfg.fusion_dim, total_upsample=cfg.strides[0],
                               hidden_channels=cfg.decoder_dims,
                               skip_channels=cfg.input_skip_channels)
        if cfg.refine_channels:
            self.refine_in = Conv3d(1 + cfg.in_channels, cfg.refine_channels,
                                    kernel_size=3, padding=1)
            self.refine_out = Conv3d(cfg.refine_channels, 1, kernel_size=3, padding=1)
        else:
            self.refine_in = None
            self.refine_out = None
        # Output de-normalization in label space, set from training data.
        self.output_mean = 0.0
        self.output_std = 1.0

    def set_output_stats(self, mean: float, std: float) -> None:
        """Record label statistics so raw network output is ~unit scale."""
        if std <= 0:
            raise ValueError("std must be positive")
        self.output_mean = float(mean)
        self.output_std = float(std)

    def forward(self, acid):
        """Photoacid (B, D, H, W) or (B, 1, D, H, W) -> label Y (B, D, H, W)."""
        if acid.ndim == 4:
            batch, depth, height, width = acid.shape
            x = T.reshape(acid, (batch, 1, depth, height, width))
        elif acid.ndim == 5:
            x = acid
        else:
            raise ValueError(f"expected 4D or 5D input, got shape {acid.shape}")
        acid_volume = x
        x = x + self.stem(x)
        skip = self.skip_proj(x) if self.skip_proj is not None else None
        features = []
        for embedding, encoder in zip(self.embeddings, self.encoders):
            x = embedding(x)
            x = encoder(x)
            features.append(x)
        fused = self.fusion(features)
        decoded = self.decoder(fused, skip=skip)
        if self.refine_in is not None:
            from repro.tensor import functional as F

            joined = T.concatenate([decoded, acid_volume], axis=1)
            decoded = decoded + self.refine_out(F.silu(self.refine_in(joined)))
        out = T.reshape(decoded, (decoded.shape[0],) + decoded.shape[2:])
        return out * self.output_std + self.output_mean

    def predict_inhibitor(self, acid: np.ndarray) -> np.ndarray:
        """Inference convenience: photoacid volume(s) -> inhibitor volume(s)."""
        from repro.tensor import Tensor, no_grad
        from repro.config import PEBConfig
        from .label import label_to_inhibitor

        squeeze = acid.ndim == 3
        batch = acid[None] if squeeze else acid
        with no_grad():
            label = self.forward(Tensor(np.asarray(batch, dtype=np.float64))).numpy()
        inhibitor = label_to_inhibitor(label, PEBConfig().catalysis_rate)
        return inhibitor[0] if squeeze else inhibitor
