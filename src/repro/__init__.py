"""SDM-PEB reproduction: Spatial-Depthwise Mamba for PEB simulation.

Subpackages
-----------
``repro.tensor``       numpy autograd engine (the PyTorch substitute)
``repro.nn``           neural-network layers and optimizers
``repro.ssm``          selective-scan state-space models (Mamba)
``repro.core``         the SDM-PEB model, losses and trainer
``repro.baselines``    DeepCNN / TEMPO-resist / FNO / DeePEB
``repro.litho``        rigorous lithography substrate (S-Litho substitute)
``repro.data``         dataset generation and caching
``repro.experiments``  regeneration of every paper table and figure
``repro.serve``        batched inference service + model registry
"""

from . import config
from .config import (
    GridConfig, OpticsConfig, ExposureConfig, PEBConfig, DevelopConfig,
    LithoConfig, tiny_test_config, paper_scale_config,
)
from . import metrics

__version__ = "0.1.0"

__all__ = [
    "config", "metrics",
    "GridConfig", "OpticsConfig", "ExposureConfig", "PEBConfig",
    "DevelopConfig", "LithoConfig", "tiny_test_config", "paper_scale_config",
    "__version__",
]
