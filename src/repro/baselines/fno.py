"""FNO baseline (Li et al. [19]): 3D Fourier Neural Operator.

Lift -> N Fourier layers (spectral conv + pointwise linear path, GELU)
-> projection head.  Normalized grid coordinates are appended to the
input, as in the original FNO.  Strong on the smooth low-frequency
component of the PEB operator; Table II shows it misses high-frequency
detail near contact edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import tensor as T
from repro.tensor import Tensor
from repro.tensor import functional as F
from repro.nn.conv import Conv3d
from repro.nn.module import Module, ModuleList
from .common import SurrogateBase
from .spectral import SpectralConv3d


@dataclass(frozen=True)
class FNOConfig:
    width: int = 10
    num_layers: int = 3
    modes: tuple = (3, 6, 6)
    use_coordinates: bool = True


def coordinate_channels(shape: tuple[int, int, int]) -> np.ndarray:
    """(3, D, H, W) normalized coordinate volume in [0, 1]."""
    axes = [np.linspace(0.0, 1.0, n) for n in shape]
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack(grids, axis=0)


class FourierLayer(Module):
    """Spectral conv + pointwise (1x1x1) conv, summed, GELU."""

    def __init__(self, width: int, modes):
        super().__init__()
        self.spectral = SpectralConv3d(width, width, modes)
        self.pointwise = Conv3d(width, width, 1)

    def forward(self, x):
        return F.gelu(self.spectral(x) + self.pointwise(x))


class FNO3d(SurrogateBase):
    """The Fourier Neural Operator surrogate."""

    def __init__(self, config: FNOConfig | None = None):
        super().__init__()
        self.config = config if config is not None else FNOConfig()
        cfg = self.config
        in_channels = 1 + (3 if cfg.use_coordinates else 0)
        self.lift = Conv3d(in_channels, cfg.width, 1)
        self.layers = ModuleList([FourierLayer(cfg.width, cfg.modes)
                                  for _ in range(cfg.num_layers)])
        self.project = Conv3d(cfg.width, 1, 1)

    def body(self, x):
        if self.config.use_coordinates:
            batch = x.shape[0]
            coords = coordinate_channels(x.shape[2:])
            coords = np.broadcast_to(coords[None], (batch,) + coords.shape).copy()
            x = T.concatenate([x, Tensor(coords)], axis=1)
        x = self.lift(x)
        for layer in self.layers:
            x = layer(x)
        return self.project(x)
