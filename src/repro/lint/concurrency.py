"""REP100-series concurrency-safety rules.

The serving stack spans four execution lanes — HTTP handler threads,
the ``MicroBatcher`` worker, the ``ShadowAuditor`` daemon and forked
``runtime.pool`` workers — plus ``atexit``/signal handlers.  State that
crosses a lane boundary must be owned by a lock (or be immutable), and
lane hand-offs must be explicit.  These rules encode that policy
statically so races are caught by tooling rather than by flaky traces.

Two analysis passes feed the rules, both computed once per file and
cached on the :class:`~repro.lint.core.LintFile`:

* the **lane model** (:func:`lane_model`) — entry points seeded from
  the known lane spawners: ``threading.Thread`` targets, ``atexit`` /
  ``signal`` / ``os.register_at_fork`` handlers, ``BaseHTTPRequestHandler``
  ``do_*`` methods, and callables dispatched through ``parallel_map`` /
  ``os.fork`` / ``multiprocessing`` pools;
* the **shared-state inventory** (:func:`concurrency_model`) — per
  class (and per module), which attributes/globals are lock protected
  where, which names hold locks/conditions, and which hold daemon
  threads.

Rules (see ``docs/static_analysis.md`` for the catalog with examples):

* REP101 — shared attribute/global written outside its owning lock;
* REP102 — fork/pool dispatch while holding a lock;
* REP103 — unbounded blocking call while holding a lock;
* REP104 — check-then-act lazy initialization of shared state;
* REP105 — ``ContextVar.set`` without a token reset;
* REP106 — daemon thread with no drain/join path.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .core import LintFile, Rule, register_rule

#: constructors that produce a lock-like object (stdlib + repro.runtime.sync)
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "make_lock", "make_rlock"})
CONDITION_CONSTRUCTORS = frozenset({"Condition", "make_condition"})

#: callables whose invocation forks or dispatches to a process pool
FORK_DISPATCHERS = frozenset({"fork", "parallel_map", "Pool", "ProcessPoolExecutor"})

#: handler-registration entry points that create implicit lanes
HANDLER_REGISTRARS = frozenset({"register", "signal", "register_at_fork"})
HANDLER_MODULES = frozenset({"atexit", "signal", "os"})


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, anything else -> None."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _call_tail(node: ast.Call) -> str:
    """Last dotted component of a call's target ('threading.Lock' -> 'Lock')."""
    return _dotted(node.func).rsplit(".", 1)[-1]


# ----------------------------------------------------------------------
# Lane model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LaneEntry:
    """One execution-lane entry point found in a file."""

    kind: str       # "thread" | "daemon-thread" | "fork" | "atexit" | "signal" | "at-fork" | "http"
    owner: str      # enclosing class name, or "<module>"
    name: str       # target function / handler / dispatcher description
    line: int


@dataclass
class LaneModel:
    """Every lane entry point in one file, plus the owners that spawn lanes."""

    entries: list[LaneEntry] = field(default_factory=list)

    def owners(self) -> set[str]:
        """Class names (and possibly ``<module>``) that spawn extra lanes."""
        return {e.owner for e in self.entries}

    def multi_lane(self, owner: str) -> bool:
        """Whether code owned by ``owner`` runs in more than one lane.

        Spawning a thread (or registering a handler) means the spawner's
        attributes are reachable from both the creating lane and the new
        one, so every such owner is multi-lane by construction.
        """
        return owner in self.owners()


def _thread_target(call: ast.Call) -> tuple[str, bool]:
    """(target description, is_daemon) for a ``threading.Thread(...)`` call."""
    target = "<unknown>"
    daemon = False
    for kw in call.keywords:
        if kw.arg == "target":
            target = _dotted(kw.value) or "<lambda>"
        elif kw.arg == "daemon":
            daemon = bool(getattr(kw.value, "value", False))
    return target, daemon


def lane_model(file: LintFile) -> LaneModel:
    """Build (and cache) the execution-lane model for one file."""
    cached = getattr(file, "_lane_model", None)
    if cached is not None:
        return cached
    model = LaneModel()

    def visit(node: ast.AST, owner: str) -> None:
        for child in ast.iter_child_nodes(node):
            child_owner = owner
            if isinstance(child, ast.ClassDef):
                child_owner = child.name
                for base in child.bases:
                    if _dotted(base).rsplit(".", 1)[-1] == "BaseHTTPRequestHandler":
                        model.entries.append(LaneEntry(
                            "http", child.name, f"{child.name}.do_*", child.lineno))
            elif isinstance(child, ast.Call):
                tail = _call_tail(child)
                dotted = _dotted(child.func)
                if tail == "Thread":
                    target, daemon = _thread_target(child)
                    model.entries.append(LaneEntry(
                        "daemon-thread" if daemon else "thread",
                        owner, target, child.lineno))
                elif tail in FORK_DISPATCHERS:
                    arg = _dotted(child.args[0]) if child.args else ""
                    model.entries.append(LaneEntry(
                        "fork", owner, arg or dotted, child.lineno))
                elif (tail in HANDLER_REGISTRARS
                        and dotted.split(".")[0] in HANDLER_MODULES):
                    kinds = {"register": "atexit", "signal": "signal",
                             "register_at_fork": "at-fork"}
                    handler = _dotted(child.args[-1]) if child.args else ""
                    model.entries.append(LaneEntry(
                        kinds[tail], owner, handler or dotted, child.lineno))
            visit(child, child_owner)

    visit(file.tree, "<module>")
    file._lane_model = model  # type: ignore[attr-defined]
    return model


# ----------------------------------------------------------------------
# Shared-state inventory
# ----------------------------------------------------------------------
@dataclass
class AttrAccess:
    """Where one shared attribute is written/read, split by lock context."""

    locked_writes: list[ast.AST] = field(default_factory=list)
    unlocked_writes: list[ast.AST] = field(default_factory=list)
    unlocked_augassigns: list[ast.AST] = field(default_factory=list)
    locked_reads: list[ast.AST] = field(default_factory=list)

    @property
    def lock_associated(self) -> bool:
        return bool(self.locked_writes or self.locked_reads)


@dataclass
class ClassModel:
    """Locks, threads and attribute accesses of one class."""

    name: str
    node: ast.ClassDef
    locks: set[str] = field(default_factory=set)        # self.X holding a Lock/RLock
    conditions: set[str] = field(default_factory=set)   # self.X holding a Condition
    daemon_threads: dict[str, ast.AST] = field(default_factory=dict)  # attr -> assign
    joined_attrs: set[str] = field(default_factory=set)  # self.X.join(...) seen
    accesses: dict[str, AttrAccess] = field(default_factory=dict)

    def lock_like(self) -> set[str]:
        return self.locks | self.conditions


@dataclass
class ModuleModel:
    """File-level inventory: module locks/globals plus every class model."""

    locks: set[str] = field(default_factory=set)
    conditions: set[str] = field(default_factory=set)
    contextvars: set[str] = field(default_factory=set)
    daemon_threads: dict[str, ast.AST] = field(default_factory=dict)
    joined_names: set[str] = field(default_factory=set)
    global_accesses: dict[str, AttrAccess] = field(default_factory=dict)
    classes: dict[str, ClassModel] = field(default_factory=dict)

    def lock_like(self) -> set[str]:
        return self.locks | self.conditions


def _lock_kind(value: ast.AST) -> str | None:
    """'lock' / 'condition' when ``value`` constructs a lock-like object."""
    if not isinstance(value, ast.Call):
        return None
    tail = _call_tail(value)
    if tail in LOCK_CONSTRUCTORS:
        return "lock"
    if tail in CONDITION_CONSTRUCTORS:
        return "condition"
    return None


def _is_daemon_thread(value: ast.AST) -> bool:
    if not (isinstance(value, ast.Call) and _call_tail(value) == "Thread"):
        return False
    return _thread_target(value)[1]


class _AccessCollector(ast.NodeVisitor):
    """Walks one function body tracking the stack of held lock names.

    ``lock_names`` maps an AST lock expression to a canonical name:
    ``self.X`` for instance locks, bare ``X`` for module locks.  Every
    attribute/global write and lock-scoped read is recorded into the
    supplied access maps.
    """

    def __init__(self, class_locks: set[str], module_locks: set[str],
                 attr_accesses: dict[str, AttrAccess],
                 global_accesses: dict[str, AttrAccess],
                 in_init: bool):
        self.class_locks = class_locks
        self.module_locks = module_locks
        self.attr_accesses = attr_accesses
        self.global_accesses = global_accesses
        self.in_init = in_init
        self.held: list[str] = []
        self.locked_regions: list[tuple[ast.With, str]] = []
        self.calls_in_lock: list[tuple[ast.Call, str]] = []

    # -- lock-region tracking ------------------------------------------
    def _lock_name(self, expr: ast.AST) -> str | None:
        attr = _is_self_attr(expr)
        if attr is not None and attr in self.class_locks:
            return f"self.{attr}"
        if isinstance(expr, ast.Name) and expr.id in self.module_locks:
            return expr.id
        return None

    def visit_With(self, node: ast.With) -> None:
        names = [self._lock_name(item.context_expr) for item in node.items]
        names = [n for n in names if n]
        for name in names:
            self.held.append(name)
            self.locked_regions.append((node, name))
        for stmt in node.body:
            self.visit(stmt)
        for item in node.items:
            self.visit(item.context_expr)
        for _ in names:
            self.held.pop()

    # -- writes / reads ------------------------------------------------
    def _record_write(self, target: ast.AST, node: ast.AST, aug: bool) -> None:
        attr = _is_self_attr(target)
        record = None
        if attr is not None:
            record = self.attr_accesses.setdefault(attr, AttrAccess())
        elif isinstance(target, ast.Name) and target.id in self.global_accesses:
            record = self.global_accesses[target.id]
        if record is None:
            return
        if self.held:
            record.locked_writes.append(node)
        elif self.in_init:
            pass  # construction happens-before any lane hand-off
        elif aug:
            record.unlocked_augassigns.append(node)
        else:
            record.unlocked_writes.append(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node, aug=False)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node, aug=True)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self.held and isinstance(node.ctx, ast.Load):
            attr = _is_self_attr(node)
            if attr is not None:
                self.attr_accesses.setdefault(attr, AttrAccess()).locked_reads.append(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            self.calls_in_lock.append((node, self.held[-1]))
        self.generic_visit(node)

    # nested defs get their own lane analysis; don't leak lock context
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef


def _collect_class(cls: ast.ClassDef, module: ModuleModel) -> ClassModel:
    model = ClassModel(name=cls.name, node=cls)
    # first pass: find lock/condition/thread attributes anywhere in the class
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = _is_self_attr(node.targets[0])
            if attr is None:
                continue
            kind = _lock_kind(node.value)
            if kind == "lock":
                model.locks.add(attr)
            elif kind == "condition":
                model.conditions.add(attr)
            if _is_daemon_thread(node.value):
                model.daemon_threads[attr] = node
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted.startswith("self.") and dotted.endswith(".join"):
                middle = dotted[len("self."):-len(".join")]
                if middle and "." not in middle:
                    model.joined_attrs.add(middle)
    return model


def concurrency_model(file: LintFile) -> ModuleModel:
    """Build (and cache) the shared-state inventory for one file."""
    cached = getattr(file, "_concurrency_model", None)
    if cached is not None:
        return cached
    module = ModuleModel()
    for node in file.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            kind = _lock_kind(node.value)
            if kind == "lock":
                module.locks.add(name)
            elif kind == "condition":
                module.conditions.add(name)
            if (isinstance(node.value, ast.Call)
                    and _call_tail(node.value) == "ContextVar"):
                module.contextvars.add(name)
            if _is_daemon_thread(node.value):
                module.daemon_threads[name] = node
            # module globals become interesting once a module lock exists
            module.global_accesses.setdefault(name, AttrAccess())
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted.endswith(".join") and "." in dotted:
                module.joined_names.add(dotted.rsplit(".", 1)[0])
    for node in file.tree.body:
        if isinstance(node, ast.ClassDef):
            module.classes[node.name] = _collect_class(node, module)
    file._concurrency_model = module  # type: ignore[attr-defined]
    return module


def _iter_methods(cls: ast.ClassDef):
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _collect_accesses(file: LintFile, cls: ClassModel,
                      module: ModuleModel) -> list[_AccessCollector]:
    """Run the lock-context collector over every method of one class."""
    collectors = []
    for method in _iter_methods(cls.node):
        collector = _AccessCollector(
            class_locks=cls.lock_like(), module_locks=module.lock_like(),
            attr_accesses=cls.accesses, global_accesses=module.global_accesses,
            in_init=method.name == "__init__")
        for stmt in method.body:
            collector.visit(stmt)
        collectors.append(collector)
    return collectors


def _module_collectors(file: LintFile, module: ModuleModel) -> list[_AccessCollector]:
    collectors = []
    for node in file.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            collector = _AccessCollector(
                class_locks=set(), module_locks=module.lock_like(),
                attr_accesses={}, global_accesses=module.global_accesses,
                in_init=False)
            for stmt in node.body:
                collector.visit(stmt)
            collectors.append(collector)
    return collectors


def _analysis(file: LintFile):
    """All collectors for one file, cached (rules share one traversal)."""
    cached = getattr(file, "_concurrency_collectors", None)
    if cached is not None:
        return cached
    module = concurrency_model(file)
    per_class = {name: _collect_accesses(file, cls, module)
                 for name, cls in module.classes.items()}
    at_module = _module_collectors(file, module)
    result = (module, per_class, at_module)
    file._concurrency_collectors = result  # type: ignore[attr-defined]
    return result


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@register_rule
class SharedWriteOutsideLock(Rule):
    """REP101: shared state must be written under its owning lock."""

    id = "REP101"
    severity = "error"
    description = ("in a class that spawns another execution lane, attributes "
                   "accessed under a lock (and all read-modify-write updates) "
                   "must not also be written outside it")

    def check(self, file: LintFile):
        lanes = lane_model(file)
        module, per_class, at_module = _analysis(file)
        for name, cls in module.classes.items():
            if not cls.lock_like() or not lanes.multi_lane(name):
                continue
            for attr, record in sorted(cls.accesses.items()):
                if attr in cls.lock_like() or attr in cls.daemon_threads:
                    continue
                if record.lock_associated:
                    for node in record.unlocked_writes + record.unlocked_augassigns:
                        yield self.report(
                            file, node,
                            f"`self.{attr}` of {name} is accessed under a lock "
                            f"elsewhere but written here without it; move the "
                            f"write inside the owning lock")
                else:
                    for node in record.unlocked_augassigns:
                        yield self.report(
                            file, node,
                            f"read-modify-write of shared `self.{attr}` in "
                            f"multi-lane class {name} outside any lock; += is "
                            f"not atomic across lanes")
        if lanes.multi_lane("<module>") and module.lock_like():
            for name, record in sorted(module.global_accesses.items()):
                if not record.lock_associated or name in module.lock_like():
                    continue
                for node in record.unlocked_writes + record.unlocked_augassigns:
                    yield self.report(
                        file, node,
                        f"module global `{name}` is accessed under a lock "
                        f"elsewhere but written here without it")


@register_rule
class LockHeldAcrossFork(Rule):
    """REP102: never fork or dispatch to a process pool while locked."""

    id = "REP102"
    severity = "error"
    description = ("os.fork / parallel_map / multiprocessing pool dispatch inside "
                   "a `with <lock>:` block forks the lock in an owned state — "
                   "children deadlock on first acquire")

    def check(self, file: LintFile):
        module, per_class, at_module = _analysis(file)
        collectors = [c for cs in per_class.values() for c in cs] + at_module
        for collector in collectors:
            for call, lock in collector.calls_in_lock:
                tail = _call_tail(call)
                dotted = _dotted(call.func)
                if tail in FORK_DISPATCHERS or dotted == "os.fork":
                    yield self.report(
                        file, call,
                        f"`{dotted or tail}` dispatched while holding `{lock}`; "
                        f"release the lock before forking (a forked child "
                        f"inherits it locked and deadlocks)")


#: blocking-call method names REP103 flags when called with no timeout
_BLOCKING_METHODS = frozenset({"get", "join", "recv", "wait"})


@register_rule
class BlockingCallUnderLock(Rule):
    """REP103: blocking calls under a lock must carry a timeout."""

    id = "REP103"
    severity = "error"
    description = ("queue.get()/socket.recv()/Thread.join()/Event.wait() without "
                   "a timeout while holding a lock can block every other lane "
                   "on that lock forever")

    def _has_timeout(self, call: ast.Call) -> bool:
        if any(kw.arg in ("timeout", "timeout_s") for kw in call.keywords):
            return True
        tail = _call_tail(call)
        if tail == "get":
            # queue-style blocking get is `get()` / `get(True)` /
            # `get(block=True)`; anything else (dict.get(key),
            # get(block, timeout), get(False)) does not block forever
            if not call.args and not call.keywords:
                return False
            if (len(call.args) == 1 and isinstance(call.args[0], ast.Constant)
                    and call.args[0].value is True):
                return False
            if any(kw.arg == "block"
                   and not (isinstance(kw.value, ast.Constant) and kw.value.value is True)
                   for kw in call.keywords):
                return True
            if (len(call.args) == 1 and isinstance(call.args[0], ast.Constant)
                    and call.args[0].value is False):
                return True
            return len(call.args) >= 1  # dict.get(key) / get(block, timeout)
        # positional timeout: join(timeout), wait(timeout)
        return len(call.args) >= 1

    def check(self, file: LintFile):
        module, per_class, at_module = _analysis(file)
        jobs = [(cls, c) for name, cs in per_class.items()
                for c in cs for cls in [module.classes[name]]]
        jobs += [(None, c) for c in at_module]
        for cls, collector in jobs:
            for call, lock in collector.calls_in_lock:
                tail = _call_tail(call)
                if tail not in _BLOCKING_METHODS or self._has_timeout(call):
                    continue
                dotted = _dotted(call.func)
                receiver = dotted.rsplit(".", 1)[0] if "." in dotted else ""
                if tail == "wait":
                    # Condition.wait releases the lock while blocked — the
                    # canonical pattern, not a violation.
                    attr = receiver[len("self."):] if receiver.startswith("self.") else receiver
                    conditions = (cls.conditions if cls else set()) | module.conditions
                    if attr in conditions or receiver == lock or f"self.{attr}" == lock:
                        continue
                if tail == "get" and not receiver:
                    continue  # bare get() — nothing to reason about
                if tail == "recv" and len(call.args) >= 1:
                    pass  # recv(bufsize) still blocks; keep flagging
                yield self.report(
                    file, call,
                    f"`{dotted or tail}(...)` blocks without a timeout while "
                    f"holding `{lock}`; pass a timeout or move the call "
                    f"outside the lock")


@register_rule
class CheckThenActLazyInit(Rule):
    """REP104: lazy init of shared state needs a lock (or double-check)."""

    id = "REP104"
    severity = "error"
    description = ("`if self.x is None: self.x = ...` on shared state outside a "
                   "lock is a check-then-act race; hold the lock, or "
                   "double-check under it")

    def _none_check_target(self, test: ast.AST) -> ast.AST | None:
        """The checked expression for `X is None` / `not X` tests."""
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Is)
                and isinstance(test.comparators[0], ast.Constant)
                and test.comparators[0].value is None):
            return test.left
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return test.operand
        if (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotIn)):
            return test.comparators[0]
        return None

    def _body_enters_lock(self, body: list[ast.stmt], locks: set[str],
                          module_locks: set[str]) -> bool:
        """Double-checked locking: the body immediately re-checks under a lock."""
        for stmt in body:
            if isinstance(stmt, ast.With):
                for item in stmt.items:
                    expr = item.context_expr
                    attr = _is_self_attr(expr)
                    if attr is not None and attr in locks:
                        return True
                    if isinstance(expr, ast.Name) and expr.id in module_locks:
                        return True
        return False

    def _body_assigns(self, body: list[ast.stmt], attr: str | None,
                      name: str | None) -> ast.AST | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if attr is not None and _is_self_attr(target) == attr:
                            return node
                        if (name is not None and isinstance(target, ast.Name)
                                and target.id == name):
                            return node
                if isinstance(node, ast.Subscript):
                    base = node.value
                    if isinstance(node.ctx, ast.Store):
                        if attr is not None and _is_self_attr(base) == attr:
                            return node
                        if (name is not None and isinstance(base, ast.Name)
                                and base.id == name):
                            return node
        return None

    def check(self, file: LintFile):
        lanes = lane_model(file)
        module, per_class, at_module = _analysis(file)
        for cls_name, cls in module.classes.items():
            if not (cls.lock_like() or lanes.multi_lane(cls_name)):
                continue
            for method in _iter_methods(cls.node):
                yield from self._check_body(file, method, cls, module, cls_name)

    def _check_body(self, file: LintFile, method: ast.FunctionDef,
                    cls: ClassModel, module: ModuleModel, cls_name: str):
        held_stack: list[bool] = []

        def walk(node: ast.AST) -> None:
            if isinstance(node, ast.With):
                lockish = any(
                    (_is_self_attr(i.context_expr) in cls.lock_like())
                    or (isinstance(i.context_expr, ast.Name)
                        and i.context_expr.id in module.lock_like())
                    for i in node.items)
                held_stack.append(lockish)
                for stmt in node.body:
                    walk(stmt)
                held_stack.pop()
                return
            if isinstance(node, ast.If) and not any(held_stack):
                target = self._none_check_target(node.test)
                if target is not None:
                    attr = _is_self_attr(target)
                    name = target.id if isinstance(target, ast.Name) else None
                    checked = attr is not None or name in module.global_accesses
                    if checked:
                        assign = self._body_assigns(node.body, attr, name)
                        if assign is not None and not self._body_enters_lock(
                                node.body, cls.lock_like(), module.lock_like()):
                            label = f"self.{attr}" if attr else name
                            findings.append((node, label))
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Lambda)):
                    continue
                walk(child)

        findings: list[tuple[ast.AST, str]] = []
        if method.name != "__init__":
            for stmt in method.body:
                walk(stmt)
        for node, label in findings:
            yield self.report(
                file, node,
                f"check-then-act lazy init of `{label}` in {cls_name}."
                f"{method.name} races between lanes; initialize under "
                f"the owning lock (double-checked locking is fine)")


def _scoped_nodes(scope: ast.AST):
    """Descendants of ``scope`` without entering nested function bodies."""
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule
class ContextVarSetWithoutReset(Rule):
    """REP105: ContextVar.set must keep and reset its token."""

    id = "REP105"
    severity = "error"
    description = ("ContextVar.set() whose token is discarded (or never reset) "
                   "leaks request identity across lane hand-offs; reset the "
                   "token in a finally block")

    def check(self, file: LintFile):
        module = concurrency_model(file)
        if not module.contextvars:
            return
        for scope in ast.walk(file.tree):
            if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.Module)):
                continue
            yield from self._check_scope(file, scope, module.contextvars)

    def _check_scope(self, file: LintFile, scope: ast.AST, names: set[str]):
        sets: list[tuple[ast.Call, str | None]] = []  # (call, token name)
        resets: set[str] = set()
        for node in _scoped_nodes(scope):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                call = node.value
                if self._is_var_method(call, names, "set"):
                    sets.append((call, None))
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                call = node.value
                if self._is_var_method(call, names, "set"):
                    target = node.targets[0]
                    token = target.id if isinstance(target, ast.Name) else None
                    sets.append((call, token))
            elif isinstance(node, ast.Call) and self._is_var_method(node, names, "reset"):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        resets.add(arg.id)
        for call, token in sets:
            if token is None:
                yield self.report(
                    file, call,
                    f"`{_dotted(call.func)}(...)` discards its reset token; "
                    f"keep it and reset in a finally block so the context "
                    f"cannot leak into the next request on this lane")
            elif token not in resets:
                yield self.report(
                    file, call,
                    f"token `{token}` from `{_dotted(call.func)}(...)` is never "
                    f"passed to .reset(); the context leaks on this lane")

    def _is_var_method(self, call: ast.Call, names: set[str], method: str) -> bool:
        dotted = _dotted(call.func)
        return ("." in dotted and dotted.rsplit(".", 1)[1] == method
                and dotted.rsplit(".", 1)[0] in names)


@register_rule
class DaemonThreadWithoutJoin(Rule):
    """REP106: daemon threads need an explicit drain/join path."""

    id = "REP106"
    severity = "error"
    description = ("a daemon thread stored on self/module state with no "
                   ".join(...) anywhere leaves mutations unfinished at "
                   "interpreter exit; provide a close()/drain() that joins it")

    def check(self, file: LintFile):
        module = concurrency_model(file)
        for cls in module.classes.values():
            for attr, node in sorted(cls.daemon_threads.items()):
                if attr not in cls.joined_attrs:
                    yield self.report(
                        file, node,
                        f"daemon thread `self.{attr}` of {cls.name} is never "
                        f"joined; add a bounded close()/drain() path so "
                        f"shutdown is deterministic")
        for name, node in sorted(module.daemon_threads.items()):
            if name not in module.joined_names:
                yield self.report(
                    file, node,
                    f"module-level daemon thread `{name}` is never joined; "
                    f"register a bounded shutdown path")
