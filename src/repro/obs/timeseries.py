"""In-process ring-buffer time-series database over the metric registry.

``/metrics`` and ``/healthz`` are point-in-time: they answer "what is
the cumulative count *now*", which is useless ten minutes after an
incident started.  This module adds history without any external
dependency: a background :class:`TelemetrySampler` thread snapshots
every counter/gauge/timer/histogram in the registry at a fixed interval
into a :class:`TimeSeriesDB` of fixed-size rolling windows (default
10 s × 360 slots = one hour of history in a few hundred kilobytes).

From the raw cumulative samples the DB derives what operators actually
ask for:

* **per-interval rates** — ``rate(serve.requests)`` from successive
  counter samples (restarts clamp to zero, never negative);
* **sliding-window quantiles** — ``window_quantile`` subtracts the
  histogram bucket vector at the window's left edge from the newest one
  and interpolates inside the winning bucket, so "p99 over the last
  5 minutes" is exact up to bucket resolution;
* **windowed deltas** — ``counter_delta`` / ``histogram_delta`` feed the
  SLO burn-rate evaluation (:mod:`repro.obs.slo`).

Everything here is observation-only: the sampler thread reads metric
snapshots (plain Python numbers) and touches no simulation state.  The
determinism matrix in ``tests/serve/test_determinism.py`` pins that a
sampler-on server serves bitwise-identical bytes.
"""

from __future__ import annotations

import threading
import time

from .metrics import metrics_snapshot

__all__ = ["Ring", "TimeSeriesDB", "TelemetrySampler"]


class Ring:
    """A fixed-capacity append-only ring; oldest values fall off."""

    __slots__ = ("capacity", "_values", "_start", "total_pushed")

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError("ring capacity must be >= 2")
        self.capacity = capacity
        self._values: list = []
        self._start = 0
        self.total_pushed = 0

    def push(self, value) -> None:
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            self._values[self._start] = value
            self._start = (self._start + 1) % self.capacity
        self.total_pushed += 1

    def values(self) -> list:
        """Oldest-first contents."""
        return self._values[self._start:] + self._values[:self._start]

    def latest(self):
        if not self._values:
            return None
        return self._values[(self._start - 1) % len(self._values)]

    def __len__(self) -> int:
        return len(self._values)


#: snapshot fields kept per metric kind (cumulative, so deltas derive rates)
_TRACKED_FIELDS = {
    "counter": ("value",),
    "gauge": ("value",),
    "timer": ("count", "total_s"),
    "histogram": ("count", "total", "bucket_counts"),
}


class TimeSeriesDB:
    """Rolling windows of metric samples, one slot per sampling interval.

    ``record(snapshot)`` appends one sample per metric; every read-side
    method (``series``, ``rate``, ``window_quantile``, ``counter_delta``,
    ``histogram_delta``) works over the retained window.  All methods
    are thread-safe: the sampler thread writes while HTTP handler
    threads read.
    """

    def __init__(self, interval_s: float = 10.0, slots: int = 360):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = float(interval_s)
        self.slots = int(slots)
        self._lock = threading.Lock()
        self._times = Ring(self.slots)
        #: name -> {"kind": str, "fields": {field -> Ring}}
        self._series: dict[str, dict] = {}
        #: histogram name -> bucket bounds (fixed after first sample)
        self._bounds: dict[str, tuple] = {}

    # -- write side (sampler thread) -----------------------------------
    def record(self, snapshot: dict | None = None,
               t_wall_s: float | None = None) -> None:
        """Append one sample of every metric in ``snapshot``."""
        snapshot = metrics_snapshot() if snapshot is None else snapshot
        t_wall_s = time.time() if t_wall_s is None else t_wall_s
        with self._lock:
            samples_before = self._times.total_pushed
            self._times.push(round(t_wall_s, 3))
            for name, metric in snapshot.items():
                kind = metric.get("type")
                fields = _TRACKED_FIELDS.get(kind)
                if fields is None:
                    continue
                entry = self._series.get(name)
                if entry is None:
                    entry = self._series[name] = {
                        "kind": kind,
                        "fields": {f: Ring(self.slots) for f in fields},
                        # a metric registered mid-flight starts later than
                        # the DB; remember the offset so its slots align
                        "first_sample": samples_before,
                    }
                    if kind == "histogram":
                        self._bounds[name] = tuple(metric.get("bounds", ()))
                for field in fields:
                    value = metric.get(field)
                    if field == "bucket_counts":
                        value = list(value or ())
                    entry["fields"][field].push(value)

    # -- read side ------------------------------------------------------
    @property
    def samples(self) -> int:
        with self._lock:
            return self._times.total_pushed

    def names(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(n for n in self._series if n.startswith(prefix))

    def times(self) -> list[float]:
        with self._lock:
            return self._times.values()

    def _window_slots(self, window_s: float | None) -> int:
        """How many sampling intervals ``window_s`` spans (>= 1)."""
        if window_s is None:
            return self.slots
        return max(1, int(round(window_s / self.interval_s)))

    def _field_values(self, name: str, field: str) -> list:
        entry = self._series.get(name)
        if entry is None:
            return []
        ring = entry["fields"].get(field)
        return ring.values() if ring is not None else []

    def _delta(self, values: list, window_slots: int):
        """(newest - value at window left edge); None when < 2 samples."""
        if len(values) < 2:
            return None
        left = max(0, len(values) - 1 - window_slots)
        return values[-1], values[left]

    def counter_delta(self, name: str, window_s: float | None = None) -> float:
        """Increase of a counter/timer-count over the window (>= 0)."""
        with self._lock:
            entry = self._series.get(name)
            if entry is None:
                return 0.0
            field = "count" if entry["kind"] == "timer" else "value"
            pair = self._delta(self._field_values(name, field),
                               self._window_slots(window_s))
        if pair is None:
            return 0.0
        newest, oldest = pair
        return max(0.0, float(newest) - float(oldest))

    def counter_delta_prefix(self, prefix: str,
                             window_s: float | None = None) -> float:
        """Summed :meth:`counter_delta` over every name with ``prefix``."""
        return sum(self.counter_delta(name, window_s)
                   for name in self.names(prefix))

    def rate(self, name: str, window_s: float | None = None) -> float:
        """Per-second increase of a cumulative metric over the window."""
        with self._lock:
            entry = self._series.get(name)
            if entry is None:
                return 0.0
            field = "count" if entry["kind"] == "timer" else "value"
            values = self._field_values(name, field)
            window_slots = self._window_slots(window_s)
            pair = self._delta(values, window_slots)
            if pair is None:
                return 0.0
            left = max(0, len(values) - 1 - window_slots)
            elapsed = (len(values) - 1 - left) * self.interval_s
        newest, oldest = pair
        if elapsed <= 0:
            return 0.0
        return max(0.0, float(newest) - float(oldest)) / elapsed

    def rate_series(self, name: str) -> list[float]:
        """Per-interval rate at every retained slot (len(samples)-1 points)."""
        with self._lock:
            entry = self._series.get(name)
            if entry is None:
                return []
            field = "count" if entry["kind"] == "timer" else "value"
            values = self._field_values(name, field)
        return [max(0.0, (float(b) - float(a))) / self.interval_s
                for a, b in zip(values, values[1:])]

    def gauge_series(self, name: str) -> list[float]:
        """Raw sampled values (levels, not rates)."""
        with self._lock:
            values = self._field_values(name, "value")
        return [float(v) for v in values]

    def histogram_delta(self, name: str, window_s: float | None = None):
        """``(bounds, bucket_deltas, count_delta, sum_delta)`` over the
        window, or None when the histogram has under two samples."""
        with self._lock:
            entry = self._series.get(name)
            if entry is None or entry["kind"] != "histogram":
                return None
            window_slots = self._window_slots(window_s)
            counts = self._delta(self._field_values(name, "count"),
                                 window_slots)
            totals = self._delta(self._field_values(name, "total"),
                                 window_slots)
            buckets = self._delta(self._field_values(name, "bucket_counts"),
                                  window_slots)
            bounds = self._bounds.get(name, ())
        if counts is None or buckets is None or totals is None:
            return None
        newest_b, oldest_b = buckets
        if len(newest_b) != len(oldest_b):
            return None
        deltas = [max(0, int(n) - int(o)) for n, o in zip(newest_b, oldest_b)]
        return (bounds, deltas,
                max(0, int(counts[0]) - int(counts[1])),
                max(0.0, float(totals[0]) - float(totals[1])))

    def window_quantile(self, name: str, q: float,
                        window_s: float | None = None) -> float | None:
        """The ``q``-quantile of a histogram over the sliding window.

        Linear interpolation inside the winning bucket (Prometheus
        ``histogram_quantile`` semantics); the overflow bucket reports
        its lower bound.  None when there is no data in the window.
        """
        delta = self.histogram_delta(name, window_s)
        if delta is None:
            return None
        bounds, bucket_deltas, count, _ = delta
        if count <= 0 or not bounds:
            return None
        target = q * count
        cumulative = 0
        for index, bucket in enumerate(bucket_deltas):
            previous = cumulative
            cumulative += bucket
            if cumulative >= target and bucket > 0:
                if index >= len(bounds):      # overflow bucket: no upper edge
                    return float(bounds[-1])
                lower = bounds[index - 1] if index > 0 else 0.0
                upper = bounds[index]
                fraction = (target - previous) / bucket
                return float(lower + (upper - lower) * min(1.0, fraction))
        return float(bounds[-1])

    def series(self, prefix: str = "", window_s: float | None = None,
               quantiles: tuple = (0.5, 0.99)) -> dict:
        """JSON-ready dump of every retained series (the ``/v1/telemetry``
        payload): raw samples plus derived rates and quantiles."""
        window_slots = self._window_slots(window_s)
        with self._lock:
            names = sorted(n for n in self._series if n.startswith(prefix))
            times = self._times.values()
        out: dict = {
            "interval_s": self.interval_s,
            "slots": self.slots,
            "samples": self.samples,
            "t_wall_s": times[-window_slots - 1:],
            "series": {},
        }
        for name in names:
            with self._lock:
                entry = self._series.get(name)
                if entry is None:
                    continue
                kind = entry["kind"]
            record: dict = {"kind": kind}
            if kind == "gauge":
                record["values"] = self.gauge_series(name)[-window_slots:]
            else:
                record["rate_per_s"] = self.rate_series(name)[-window_slots:]
            if kind == "timer":
                with self._lock:
                    counts = self._field_values(name, "count")
                    totals = self._field_values(name, "total_s")
                means = []
                for (c0, c1), (t0, t1) in zip(zip(counts, counts[1:]),
                                              zip(totals, totals[1:])):
                    dc = float(c1) - float(c0)
                    means.append((float(t1) - float(t0)) / dc if dc > 0 else 0.0)
                record["mean_s"] = means[-window_slots:]
            if kind == "histogram":
                record["quantiles"] = {
                    f"p{q * 100:.10g}":
                        self.window_quantile(name, q, window_s)
                    for q in quantiles
                }
            out["series"][name] = record
        return out


class TelemetrySampler:
    """Background thread feeding a :class:`TimeSeriesDB` at a fixed cadence.

    The thread is a daemon waiting on an Event, so ``close`` returns
    promptly and an abandoned sampler cannot keep a process alive.  An
    injectable ``snapshot_fn`` keeps tests clock-free: call
    :meth:`sample_once` directly instead of racing the thread.
    """

    def __init__(self, db: TimeSeriesDB | None = None,
                 interval_s: float = 10.0, slots: int = 360,
                 snapshot_fn=None, name: str = "default"):
        self.db = db if db is not None else TimeSeriesDB(interval_s, slots)
        self._snapshot_fn = snapshot_fn if snapshot_fn is not None \
            else metrics_snapshot
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, daemon=True,
            name=f"repro-telemetry-sampler-{name}")
        self._state_lock = threading.Lock()
        self._started = False
        self._errors = 0

    def start(self) -> "TelemetrySampler":
        with self._state_lock:
            if self._started:
                return self
            self._started = True
        self.sample_once()              # slot 0: a baseline for first deltas
        self._thread.start()
        return self

    def sample_once(self) -> None:
        """Record one sample now (also what the thread does every tick)."""
        try:
            self.db.record(self._snapshot_fn())
        except Exception:  # noqa: BLE001 - sampling must never kill serving
            with self._state_lock:
                self._errors += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.db.interval_s):
            self.sample_once()

    def stats(self) -> dict:
        return {
            "interval_s": self.db.interval_s,
            "slots": self.db.slots,
            "samples": self.db.samples,
            "running": self._thread.is_alive(),
            "sample_errors": self._errors,
        }

    def close(self) -> None:
        self._stop.set()
        with self._state_lock:
            started = self._started
        if started and self._thread.is_alive():
            self._thread.join(timeout=5.0)
