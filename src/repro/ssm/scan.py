"""Diagonal linear recurrence (the selective-scan kernel).

The heart of Mamba is the per-channel diagonal recurrence

    h_t = a_t * h_{t-1} + b_t,          (elementwise over states)

applied along the sequence axis.  Two interchangeable kernels are
provided:

* ``sequential`` — the obvious time loop; the correctness reference.
* ``chunked`` — a blocked closed-form evaluation that processes ``K``
  steps per python iteration using cumulative products.  This plays the
  role of Mamba's "hardware-aware parallel scan": identical numerics
  (to floating-point roundoff), much less interpreter overhead.

Both are wrapped into a single differentiable op,
:func:`diagonal_scan`, with a hand-derived backward pass (the reverse
recurrence is itself a scan on the time-reversed sequence, so the same
kernels are reused).

Array layout: ``a`` and ``b`` are ``(B, L, C, N)`` — batch, sequence,
channels, SSM state dimension.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor, ensure_tensor

SCAN_MODES = ("sequential", "chunked")
DEFAULT_CHUNK = 16


def scan_sequential(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference kernel: one python iteration per timestep."""
    h = np.empty_like(b)
    carry = np.zeros_like(b[:, 0])
    for t in range(b.shape[1]):
        carry = a[:, t] * carry + b[:, t]
        h[:, t] = carry
    return h


def scan_chunked(a: np.ndarray, b: np.ndarray, chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Blocked kernel: closed-form evaluation inside chunks of ``chunk`` steps.

    Within a chunk starting with carry ``h0``:

        h_k = P_k * h0 + P_k * sum_{j<=k} b_j / P_j,   P_k = prod_{i<=k} a_i.

    ``a`` values are decay factors in (0, 1]; with the default chunk of
    16 the ratio ``P_k / P_j`` stays far away from overflow in float64.
    """
    batch, length = b.shape[:2]
    if length == 0:
        return b.copy()
    pad = (-length) % chunk
    if pad:
        a = np.concatenate([a, np.ones((batch, pad) + a.shape[2:], dtype=a.dtype)], axis=1)
        b = np.concatenate([b, np.zeros((batch, pad) + b.shape[2:], dtype=b.dtype)], axis=1)
    chunks = a.shape[1] // chunk
    a_blocks = a.reshape(batch, chunks, chunk, *a.shape[2:])
    b_blocks = b.reshape(batch, chunks, chunk, *b.shape[2:])
    prods = np.cumprod(a_blocks, axis=2)
    safe = np.maximum(prods, np.finfo(a.dtype).tiny)
    inner = prods * np.cumsum(b_blocks / safe, axis=2)
    h = np.empty_like(inner)
    carry = np.zeros_like(inner[:, 0, 0])
    for c in range(chunks):
        h[:, c] = inner[:, c] + prods[:, c] * carry[:, None]
        carry = h[:, c, -1]
    h = h.reshape(batch, chunks * chunk, *a.shape[2:])
    return h[:, :length] if pad else h


def run_scan(a: np.ndarray, b: np.ndarray, mode: str = "chunked", chunk: int = DEFAULT_CHUNK) -> np.ndarray:
    """Dispatch to the requested kernel."""
    if mode == "sequential":
        return scan_sequential(a, b)
    if mode == "chunked":
        return scan_chunked(a, b, chunk=chunk)
    raise ValueError(f"unknown scan mode {mode!r}; expected one of {SCAN_MODES}")


def _reverse_scan(a: np.ndarray, grad_h: np.ndarray, mode: str, chunk: int) -> np.ndarray:
    """Solve ``lam_t = grad_h_t + a_{t+1} * lam_{t+1}`` for all t.

    Implemented as a forward scan on the time-reversed sequence with the
    decay sequence shifted by one step.
    """
    a_flipped = np.flip(a, axis=1)
    a_shifted = np.concatenate([np.ones_like(a_flipped[:, :1]), a_flipped[:, :-1]], axis=1)
    lam_reversed = run_scan(a_shifted, np.flip(grad_h, axis=1), mode=mode, chunk=chunk)
    return np.flip(lam_reversed, axis=1)


def diagonal_scan(a, b, mode: str = "chunked", chunk: int = DEFAULT_CHUNK) -> Tensor:
    """Differentiable diagonal recurrence ``h_t = a_t h_{t-1} + b_t``.

    Parameters are ``(B, L, C, N)`` tensors; returns ``h`` of the same
    shape.  The backward pass uses the adjoint recurrence

        lam_t = dL/dh_t + a_{t+1} lam_{t+1},
        dL/db_t = lam_t,    dL/da_t = lam_t * h_{t-1}.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    if a.shape != b.shape:
        raise ValueError(f"scan inputs must match: {a.shape} vs {b.shape}")
    h = run_scan(a.data, b.data, mode=mode, chunk=chunk)

    def grad_b(grad_h):
        return _reverse_scan(a.data, grad_h, mode, chunk)

    def grad_a(grad_h):
        lam = _reverse_scan(a.data, grad_h, mode, chunk)
        h_prev = np.concatenate([np.zeros_like(h[:, :1]), h[:, :-1]], axis=1)
        return lam * h_prev

    return Tensor.from_op(h, [(a, grad_a), (b, grad_b)])
