"""Shared pytest configuration for the unit-test suite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# CPU-bound numerical tests easily trip hypothesis' default deadline on
# loaded machines; disable it suite-wide and keep example counts local.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _fail_on_numpy_warnings_in_core():
    """Keep accidental NaN/overflow regressions visible in test output."""
    with np.errstate(invalid="warn", over="warn"):
        yield
