"""Convolution primitives: values vs scipy, gradients vs finite differences."""

import numpy as np
import pytest
from scipy import signal

from repro import tensor as T
from repro.tensor import ops_nn
from repro.tensor.gradcheck import gradcheck

RNG = np.random.default_rng(3)


def rand(*shape):
    return RNG.standard_normal(shape)


def reference_conv3d(x, w, stride, padding):
    """Direct (slow) grouped=1 conv3d via scipy correlate, for cross-checking."""
    b, cin, d, h, wd = x.shape
    cout = w.shape[0]
    pd, ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (pd, pd), (ph, ph), (pw, pw)))
    outs = []
    for bi in range(b):
        per_out = []
        for oc in range(cout):
            acc = np.zeros(tuple(xp.shape[2 + i] - w.shape[2 + i] + 1 for i in range(3)))
            for ic in range(cin):
                acc += signal.correlate(xp[bi, ic], w[oc, ic], mode="valid")
            per_out.append(acc[:: stride[0], :: stride[1], :: stride[2]])
        outs.append(np.stack(per_out))
    return np.stack(outs)


class TestConv3dForward:
    @pytest.mark.parametrize("stride,padding", [((1, 1, 1), (0, 0, 0)), ((2, 2, 2), (1, 1, 1)), ((1, 2, 1), (0, 1, 2))])
    def test_matches_scipy(self, stride, padding):
        x, w = rand(2, 3, 5, 6, 7), rand(4, 3, 3, 3, 3)
        out = ops_nn.conv3d_forward(x, w, stride, padding, groups=1)
        assert np.allclose(out, reference_conv3d(x, w, stride, padding))

    def test_grouped_matches_blockwise(self):
        x, w = rand(1, 4, 4, 4, 4), rand(6, 2, 3, 3, 3)
        out = ops_nn.conv3d_forward(x, w, 1, 1, groups=2)
        expected_a = reference_conv3d(x[:, :2], w[:3], (1, 1, 1), (1, 1, 1))
        expected_b = reference_conv3d(x[:, 2:], w[3:], (1, 1, 1), (1, 1, 1))
        assert np.allclose(out, np.concatenate([expected_a, expected_b], axis=1))

    def test_depthwise_shape(self):
        x, w = rand(1, 4, 4, 5, 5), rand(4, 1, 3, 3, 3)
        out = ops_nn.conv3d_forward(x, w, 1, 1, groups=4)
        assert out.shape == (1, 4, 4, 5, 5)


class TestConv3dGrad:
    def test_gradcheck_basic(self):
        w = rand(1, 2, 2, 2, 2)
        gradcheck(
            lambda ts: (T.conv3d(ts[0], ts[1]) * w).sum(),
            [rand(1, 2, 3, 3, 3), rand(2, 2, 2, 2, 2)],
        )

    def test_gradcheck_stride_padding(self):
        gradcheck(
            lambda ts: T.conv3d(ts[0], ts[1], stride=2, padding=1).sum(),
            [rand(1, 1, 4, 4, 4), rand(2, 1, 3, 3, 3)],
        )

    def test_gradcheck_grouped(self):
        gradcheck(
            lambda ts: T.conv3d(ts[0], ts[1], padding=1, groups=2).sum(),
            [rand(1, 2, 3, 3, 3), rand(2, 1, 3, 3, 3)],
        )

    def test_gradcheck_bias(self):
        gradcheck(
            lambda ts: T.conv3d(ts[0], ts[1], bias=ts[2]).sum(),
            [rand(1, 1, 3, 3, 3), rand(2, 1, 2, 2, 2), rand(2)],
        )


class TestConvTranspose3d:
    def test_is_adjoint_of_conv(self):
        """<conv(x), y> == <x, conv_transpose(y)> for matching parameters."""
        x = rand(1, 2, 5, 5, 5)
        # One array, two roles: (Cout=3, Cin=2, k...) for conv is exactly
        # (in=3, out=2, k...) for the transposed conv that is its adjoint.
        w = rand(3, 2, 3, 3, 3)
        for stride, padding in [(1, 0), (2, 1), (2, 0)]:
            fwd = ops_nn.conv3d_forward(x, w, stride, padding, 1)
            y = rand(*fwd.shape)
            back = ops_nn.conv_transpose3d_forward(y, w, stride, padding, 0, 1)
            assert np.isclose((fwd * y).sum(), (x * back).sum())

    def test_output_shape_with_output_padding(self):
        x = rand(1, 2, 3, 3, 3)
        w = rand(2, 4, 2, 2, 2)
        out = ops_nn.conv_transpose3d_forward(x, w, 2, 0, 1, 1)
        assert out.shape == (1, 4, 7, 7, 7)

    def test_gradcheck(self):
        gradcheck(
            lambda ts: T.conv_transpose3d(ts[0], ts[1], stride=2, padding=1).sum(),
            [rand(1, 2, 3, 3, 3), rand(2, 2, 3, 3, 3)],
        )

    def test_gradcheck_bias_output_padding(self):
        gradcheck(
            lambda ts: T.conv_transpose3d(ts[0], ts[1], bias=ts[2], stride=2, output_padding=1).sum(),
            [rand(1, 1, 2, 2, 2), rand(1, 2, 2, 2, 2), rand(2)],
        )


class TestConv1d:
    def test_matches_numpy_correlate(self):
        x, w = rand(1, 1, 8), rand(1, 1, 3)
        out = T.conv1d(T.Tensor(x), T.Tensor(w))
        assert np.allclose(out.data[0, 0], np.correlate(x[0, 0], w[0, 0], mode="valid"))

    def test_gradcheck(self):
        gradcheck(
            lambda ts: T.conv1d(ts[0], ts[1], padding=1).sum(),
            [rand(2, 2, 5), rand(3, 2, 3)],
        )

    def test_gradcheck_depthwise(self):
        gradcheck(
            lambda ts: T.conv1d(ts[0], ts[1], padding=2, groups=3).sum(),
            [rand(1, 3, 6), rand(3, 1, 3)],
        )


class TestUpsample:
    def test_values(self):
        x = T.Tensor(np.arange(8.0).reshape(1, 1, 2, 2, 2))
        out = T.upsample_nearest3d(x, 2)
        assert out.shape == (1, 1, 4, 4, 4)
        assert np.allclose(out.data[0, 0, :2, :2, :2], x.data[0, 0, 0, 0, 0])

    def test_gradcheck(self):
        w = rand(1, 1, 2, 4, 4)
        gradcheck(
            lambda ts: (T.upsample_nearest3d(ts[0], (1, 2, 2)) * w).sum(),
            [rand(1, 1, 2, 2, 2)],
        )
