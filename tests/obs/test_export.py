"""Trace analytics: Chrome export, span forests, critical path, requests."""

import json

from repro.obs.export import (
    build_span_forest, critical_path, format_critical_path, format_requests,
    request_summaries, self_times, to_chrome_trace, write_chrome_trace,
)


def ev(name, uid, parent=None, trace=None, t=0.0, dur=1.0, pid=1, tid=1,
       attrs=None, type="span"):
    event = {"type": type, "name": name, "pid": pid, "tid": tid, "id": uid,
             "parent": parent, "t_wall_s": t, "dur_s": dur, "attrs": attrs or {}}
    if trace is not None:
        event["trace"] = trace
    return event


class TestChromeExport:
    def test_span_becomes_complete_event(self):
        out = to_chrome_trace([ev("peb.solve", "1-1", t=2.5, dur=0.004,
                                  trace="abc", attrs={"steps": 9})])
        (record,) = out["traceEvents"]
        assert record["ph"] == "X"
        assert record["ts"] == 2.5e6 and record["dur"] == 4000.0
        assert record["cat"] == "peb"
        assert record["args"]["steps"] == 9
        assert record["args"]["id"] == "1-1" and record["args"]["trace"] == "abc"

    def test_point_event_becomes_instant(self):
        out = to_chrome_trace([{"type": "event", "name": "cache.hit",
                                "pid": 7, "tid": 9, "t_wall_s": 1.0,
                                "attrs": {"hits": 3}}])
        (record,) = out["traceEvents"]
        assert record["ph"] == "i" and record["s"] == "t"
        assert record["pid"] == 7 and record["tid"] == 9

    def test_unknown_lines_skipped_and_output_sorted(self):
        out = to_chrome_trace([
            ev("late", "1-2", t=5.0), {"type": "metrics", "noise": True},
            ev("early", "1-1", t=1.0),
        ])
        assert [r["name"] for r in out["traceEvents"]] == ["early", "late"]

    def test_write_parses_as_json(self, tmp_path):
        path = tmp_path / "chrome.json"
        count = write_chrome_trace([ev("a", "1-1"), ev("b", "1-2")], path)
        assert count == 2
        payload = json.loads(path.read_text())
        assert len(payload["traceEvents"]) == 2
        assert payload["displayTimeUnit"] == "ms"


class TestSpanForest:
    def test_connected_tree(self):
        roots = build_span_forest([
            ev("root", "1-1", t=0.0, dur=3.0),
            ev("childB", "1-3", parent="1-1", t=2.0, dur=1.0),
            ev("childA", "1-2", parent="1-1", t=1.0, dur=1.0),
        ])
        (root,) = roots
        assert root.name == "root" and not root.orphaned
        assert [c.name for c in root.children] == ["childA", "childB"]  # by start

    def test_orphan_parent_kept_as_root(self):
        roots = build_span_forest([ev("lost", "1-5", parent="1-404")])
        (lost,) = roots
        assert lost.orphaned and lost.name == "lost"

    def test_cross_pid_parent_link(self):
        roots = build_span_forest([
            ev("dispatch", "10-1", pid=10, t=0.0, dur=2.0),
            ev("worker", "11-1", pid=11, parent="10-1", t=0.5, dur=1.0),
        ])
        (root,) = roots
        assert root.children[0].name == "worker"

    def test_legacy_int_ids_normalized_per_pid(self):
        roots = build_span_forest([
            {"type": "span", "name": "old_root", "pid": 4, "id": 1,
             "parent": None, "t_wall_s": 0.0, "dur_s": 1.0, "attrs": {}},
            {"type": "span", "name": "old_child", "pid": 4, "id": 2,
             "parent": 1, "t_wall_s": 0.1, "dur_s": 0.5, "attrs": {}},
        ])
        (root,) = roots
        assert root.uid == "4-1"
        assert root.children[0].name == "old_child"


class TestCriticalPath:
    def test_follows_largest_child(self):
        (root,) = build_span_forest([
            ev("root", "1-1", dur=10.0),
            ev("small", "1-2", parent="1-1", dur=2.0),
            ev("big", "1-3", parent="1-1", dur=7.0),
            ev("leaf", "1-4", parent="1-3", dur=6.0),
        ])
        assert [n.name for n in critical_path(root)] == ["root", "big", "leaf"]

    def test_format_picks_largest_root(self):
        roots = build_span_forest([ev("minor", "1-1", dur=1.0),
                                   ev("major", "1-2", dur=5.0)])
        text = format_critical_path(roots)
        assert text.splitlines()[0].startswith("critical path from 'major'")

    def test_format_empty(self):
        assert "no span events" in format_critical_path([])


class TestSelfTimes:
    def test_excludes_child_time(self):
        totals = self_times([
            ev("root", "1-1", dur=10.0),
            ev("child", "1-2", parent="1-1", dur=4.0),
        ])
        assert totals["root"] == 6.0 and totals["child"] == 4.0

    def test_concurrent_children_clamp_to_zero(self):
        # two pool workers overlapping in wall time sum past the dispatch
        totals = self_times([
            ev("dispatch", "1-1", dur=5.0),
            ev("task", "2-1", parent="1-1", pid=2, dur=4.0),
            ev("task", "3-1", parent="1-1", pid=3, dur=4.0),
        ])
        assert totals["dispatch"] == 0.0
        assert totals["task"] == 8.0


class TestRequestSummaries:
    def _request(self, rid, t0):
        return [
            ev("serve.request", f"1-{t0}", trace=rid, t=t0, dur=0.05,
               attrs={"request_id": rid}),
            ev("serve.batch", f"2-{t0}", parent=f"1-{t0}", trace=rid,
               pid=2, t=t0 + 0.01, dur=0.03),
            ev("serve.forward", f"2-{t0 + 1}", parent=f"2-{t0}", trace=rid,
               pid=2, t=t0 + 0.015, dur=0.02),
        ]

    def test_groups_by_trace_and_orders_by_start(self):
        events = self._request("req-b", 100) + self._request("req-a", 50)
        summaries = request_summaries(events)
        assert [s["request_id"] for s in summaries] == ["req-a", "req-b"]
        first = summaries[0]
        assert first["root"] == "serve.request"
        assert first["total_s"] == 0.05
        assert first["batch_s"] == 0.03 and first["forward_s"] == 0.02
        assert first["spans"] == 3 and first["pids"] == 2

    def test_untraced_spans_ignored(self):
        assert request_summaries([ev("solo", "1-1")]) == []

    def test_format_limit(self):
        summaries = request_summaries(
            self._request("r1", 1) + self._request("r2", 2))
        text = format_requests(summaries, limit=1)
        assert "r1" in text and "r2" not in text
        assert "1 more request(s)" in text

    def test_format_empty(self):
        assert "no request-scoped spans" in format_requests([])
