"""Fig. 6 bench: value-distribution imbalance of photoacid vs inhibitor.

Regenerates the Fig. 6 histograms over the benchmark dataset and
verifies the claim that motivates the PEB focal loss: the inhibitor
distribution is imbalanced by orders of magnitude more than the
photoacid distribution.
"""

import numpy as np

from repro.experiments.fig6 import histogram, imbalance_ratio, format_figure


def test_bench_histograms(benchmark, data):
    train_set, _ = data
    inputs = train_set.inputs()

    result = benchmark(histogram, inputs)
    assert np.isclose(result.sum(), 1.0)


def test_fig6_imbalance_claim(data):
    train_set, test_set = data
    acid = np.concatenate([train_set.inputs().ravel(), test_set.inputs().ravel()])
    inhibitor = np.concatenate([train_set.inhibitors().ravel(),
                                test_set.inhibitors().ravel()])
    frequencies = {"photoacid": histogram(acid), "inhibitor": histogram(inhibitor)}
    print("\n" + format_figure(frequencies))
    acid_ratio = imbalance_ratio(frequencies["photoacid"])
    inhibitor_ratio = imbalance_ratio(frequencies["inhibitor"])
    # Fig. 6's shape: inhibitor frequencies span orders of magnitude
    # (the paper's log-scale panel b) and are more imbalanced than the
    # photoacid's.
    assert inhibitor_ratio > 100.0
    assert inhibitor_ratio > acid_ratio
    # inhibitor mass concentrates in the top bin (protected resist)
    assert frequencies["inhibitor"][-1] > 0.5
