"""Trainer validation tracking, early stopping and best-weights restore."""

import numpy as np
import pytest

from repro import nn
from repro.core import Trainer, TrainConfig
from repro.baselines import DeepCNN, DeepCNNConfig

RNG = np.random.default_rng(53)


def tiny_model():
    nn.init.seed(0)
    return DeepCNN(DeepCNNConfig(width=4, num_blocks=1))


def data(n=4):
    inputs = RNG.random((n, 2, 8, 8))
    return inputs, 2.0 * inputs + 1.0


class TestValidation:
    def test_val_losses_recorded(self):
        x, y = data()
        vx, vy = data(2)
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=3),
                          val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert len(history.val_losses) == 3
        assert all(np.isfinite(v) for v in history.val_losses)

    def test_val_requires_both_arrays(self):
        x, y = data()
        with pytest.raises(ValueError):
            Trainer(tiny_model(), x, y, TrainConfig(), val_inputs=x)

    def test_validation_loss_without_data_raises(self):
        x, y = data()
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.validation_loss()

    def test_best_epoch_tracked(self):
        x, y = data()
        vx, vy = data(2)
        trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=5),
                          val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert 1 <= history.best_epoch <= 5


class TestValidationChunking:
    def _trainer(self, n_val=4):
        x, y = data()
        vx, vy = data(n_val)
        return Trainer(tiny_model(), x, y, TrainConfig(epochs=1),
                       val_inputs=vx, val_targets=vy)

    def test_default_is_bitwise_identical_to_full_batch(self):
        """val_batch_size=0 (the default) and any chunk covering the whole
        set must reproduce the historical single-forward value exactly."""
        trainer = self._trainer()
        full = trainer.validation_loss()
        assert trainer.validation_loss(batch_size=0) == full
        assert trainer.validation_loss(batch_size=4) == full
        assert trainer.validation_loss(batch_size=100) == full

    def test_config_chunk_size_used(self):
        trainer = self._trainer()
        full = trainer.validation_loss()
        trainer.config.val_batch_size = 2
        chunked = trainer.validation_loss()
        assert np.isfinite(chunked)
        # per-voxel terms are exact under chunking; the batch-global MaxSE
        # becomes a mean of per-chunk maxima, which can only shrink
        assert chunked <= full + 1e-9

    def test_chunked_close_to_full(self):
        trainer = self._trainer()
        full = trainer.validation_loss()
        chunked = trainer.validation_loss(batch_size=1)
        assert np.isfinite(chunked)
        assert chunked <= full + 1e-9
        assert chunked == pytest.approx(full, rel=0.5)

    def test_uneven_chunks_weighted_correctly(self):
        """3 validation samples with chunk 2 → chunks of 2 and 1; the
        result is the sample-weighted mean, not the chunk mean."""
        trainer = self._trainer(n_val=3)
        chunked = trainer.validation_loss(batch_size=2)
        # recompute by hand from per-chunk single-forward losses
        first = Trainer(trainer.model, trainer.inputs, trainer.targets,
                        TrainConfig(epochs=1),
                        val_inputs=trainer.val_inputs[:2],
                        val_targets=trainer.val_targets[:2])
        second = Trainer(trainer.model, trainer.inputs, trainer.targets,
                         TrainConfig(epochs=1),
                         val_inputs=trainer.val_inputs[2:],
                         val_targets=trainer.val_targets[2:])
        expected = (first.validation_loss() * 2 + second.validation_loss() * 1) / 3
        assert chunked == pytest.approx(expected, rel=1e-12)


class TestEarlyStopping:
    def test_requires_validation(self):
        x, y = data()
        with pytest.raises(ValueError):
            Trainer(tiny_model(), x, y, TrainConfig(early_stop_patience=2))

    def test_stops_when_no_improvement(self):
        """Zero learning rate means no improvement is possible, so the
        loop must stop after `patience` epochs."""
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=50, learning_rate=0.0, early_stop_patience=3)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert history.stopped_early
        assert history.epochs[-1] <= 6

    def test_runs_full_schedule_when_improving(self):
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=6, learning_rate=3e-3, early_stop_patience=6)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        assert not history.stopped_early or history.epochs[-1] == 6


class TestBestRestore:
    def test_restored_weights_match_best_val(self):
        x, y = data()
        vx, vy = data(2)
        config = TrainConfig(epochs=8, learning_rate=3e-3, restore_best=True)
        trainer = Trainer(tiny_model(), x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        final_val = trainer.validation_loss()
        assert np.isclose(final_val, min(history.val_losses), rtol=1e-6)

    def test_no_restore_keeps_last(self):
        x, y = data()
        vx, vy = data(2)
        nn.init.seed(0)
        model = tiny_model()
        config = TrainConfig(epochs=4, learning_rate=0.05, restore_best=False,
                             shuffle_seed=3)
        trainer = Trainer(model, x, y, config, val_inputs=vx, val_targets=vy)
        history = trainer.fit()
        # with a large lr the last epoch is usually not the best; either
        # way the final weights must produce the *last* recorded val loss
        assert np.isclose(trainer.validation_loss(), history.val_losses[-1], rtol=1e-6)
