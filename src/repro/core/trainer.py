"""Training loop for SDM-PEB and the baseline surrogates.

Mirrors the paper's recipe scaled to CPU: Adam (the paper used SGD-style
step decay at lr 0.03 on GPUs; Adam at a lower rate is the stable
equivalent for the numpy substrate), step-decay schedule, gradient
accumulation over clips, and the combined SDM-PEB objective.  Targets
are standardized in label space; the model's output affine restores the
original scale so losses/metrics are computed in true label units.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.obs import set_span_attrs, span, timer
from repro.tensor import Tensor, no_grad
from .losses import LossConfig, SDMPEBLoss


@dataclass
class TrainConfig:
    """Optimization hyperparameters."""

    epochs: int = 30
    learning_rate: float = 3e-3
    #: step-decay schedule (paper: step 100, gamma 0.7 over 500 epochs)
    lr_step_size: int = 10
    lr_gamma: float = 0.7
    batch_size: int = 2
    #: validation forward chunk size; 0 = the whole validation set in one
    #: forward, which is bitwise-identical to the historical behavior.
    #: Positive values bound the forward-pass memory spike (it scales
    #: with the chunk, not the validation-set size) at the cost of the
    #: batch-global MaxSE term becoming a per-chunk weighted mean.
    val_batch_size: int = 0
    grad_clip: float = 10.0
    weight_decay: float = 0.0
    loss: LossConfig = field(default_factory=LossConfig)
    shuffle_seed: int = 0
    log_every: int = 0   # epochs between log records; 0 = every epoch
    #: stop after this many epochs without validation improvement (0 = off;
    #: requires validation data to be passed to the Trainer)
    early_stop_patience: int = 0
    #: restore the best-validation-loss parameters after fit()
    restore_best: bool = True


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    epochs: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    learning_rates: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    best_epoch: int = 0
    stopped_early: bool = False
    wall_time_s: float = 0.0


class Trainer:
    """Trains a label-space surrogate on (photoacid, label) pairs.

    ``inputs`` and ``targets`` are arrays of shape (N, D, H, W).  Any
    model with a ``set_output_stats`` method and a (B, D, H, W) ->
    (B, D, H, W) forward works — SDM-PEB and all baselines share this
    interface.
    """

    def __init__(self, model, inputs: np.ndarray, targets: np.ndarray,
                 config: TrainConfig | None = None,
                 val_inputs: np.ndarray | None = None,
                 val_targets: np.ndarray | None = None):
        if len(inputs) != len(targets):
            raise ValueError("inputs and targets must have the same length")
        if len(inputs) == 0:
            raise ValueError("empty training set")
        if (val_inputs is None) != (val_targets is None):
            raise ValueError("validation inputs and targets must be given together")
        self.model = model
        self.inputs = np.asarray(inputs, dtype=np.float64)
        self.targets = np.asarray(targets, dtype=np.float64)
        self.val_inputs = None if val_inputs is None else np.asarray(val_inputs, dtype=np.float64)
        self.val_targets = None if val_targets is None else np.asarray(val_targets, dtype=np.float64)
        self.config = config if config is not None else TrainConfig()
        if self.config.early_stop_patience and self.val_inputs is None:
            raise ValueError("early stopping requires validation data")
        mean, std = float(self.targets.mean()), float(self.targets.std())
        model.set_output_stats(mean, max(std, 1e-8))
        self.loss_fn = SDMPEBLoss(self.config.loss)
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.learning_rate,
                                 weight_decay=self.config.weight_decay)
        self.scheduler = nn.StepDecay(self.optimizer, self.config.lr_step_size,
                                      self.config.lr_gamma)
        self.history = TrainHistory()

    def _batches(self, rng: np.random.Generator):
        order = rng.permutation(len(self.inputs))
        size = self.config.batch_size
        for start in range(0, len(order), size):
            index = order[start:start + size]
            yield self.inputs[index], self.targets[index]

    def train_epoch(self, rng: np.random.Generator) -> tuple[float, float]:
        """One pass over the data; returns (mean loss, last grad norm)."""
        self.model.train()
        epoch_loss, batches, grad_norm = 0.0, 0, 0.0
        for batch_inputs, batch_targets in self._batches(rng):
            with span("trainer.step", batch=len(batch_inputs)):
                self.optimizer.zero_grad()
                prediction = self.model(Tensor(batch_inputs))
                loss = self.loss_fn(prediction, Tensor(batch_targets))
                loss.backward()
                grad_norm = nn.clip_grad_norm(self.model.parameters(), self.config.grad_clip)
                self.optimizer.step()
                epoch_loss += float(loss.data)
                batches += 1
                set_span_attrs(loss=float(loss.data), grad_norm=float(grad_norm))
        return epoch_loss / max(batches, 1), grad_norm

    def validation_loss(self, batch_size: int | None = None) -> float:
        """Combined objective on the validation set (no gradients).

        The validation set is run through the same chunked forward as
        :meth:`predict`; ``batch_size`` overrides
        ``config.val_batch_size`` (<= 0 or >= the set size means one
        chunk covering the whole set, which reproduces the historical
        single-forward value bit for bit).  With smaller chunks the
        result is the sample-weighted mean of per-chunk losses — exact
        for the per-voxel terms, an approximation for the batch-global
        MaxSE term.
        """
        if self.val_inputs is None:
            raise ValueError("no validation data")
        self.model.eval()
        total = len(self.val_inputs)
        size = self.config.val_batch_size if batch_size is None else batch_size
        if size <= 0 or size >= total:
            size = total
        with span("trainer.validation", samples=total, chunk=size), no_grad():
            if size == total:
                prediction = self.model(Tensor(self.val_inputs))
                loss = self.loss_fn(prediction, Tensor(self.val_targets))
                return float(loss.data)
            weighted = 0.0
            for start in range(0, total, size):
                chunk_inputs = self.val_inputs[start:start + size]
                chunk_targets = self.val_targets[start:start + size]
                loss = self.loss_fn(self.model(Tensor(chunk_inputs)), Tensor(chunk_targets))
                weighted += float(loss.data) * len(chunk_inputs)
        return weighted / total

    def fit(self, verbose: bool = False) -> TrainHistory:
        """Run the full schedule; returns the training history.

        With validation data, the validation loss is tracked per epoch;
        with ``early_stop_patience`` set, training stops after that many
        epochs without improvement, and (if ``restore_best``) the best
        parameters are restored at the end.
        """
        rng = np.random.default_rng(self.config.shuffle_seed)
        start = time.perf_counter()
        every = self.config.log_every or 1
        best_val, best_state, best_epoch, stale = np.inf, None, 0, 0
        with span("trainer.fit", epochs=self.config.epochs,
                  samples=len(self.inputs), batch_size=self.config.batch_size):
            for epoch in range(1, self.config.epochs + 1):
                epoch_start = time.perf_counter()
                with span("trainer.epoch", epoch=epoch):
                    mean_loss, grad_norm = self.train_epoch(rng)
                    self.scheduler.step()
                    val_loss = self.validation_loss() if self.val_inputs is not None else None
                    set_span_attrs(loss=mean_loss, grad_norm=float(grad_norm),
                                   lr=self.optimizer.lr,
                                   **({} if val_loss is None else {"val_loss": val_loss}))
                timer("trainer.epoch").observe(time.perf_counter() - epoch_start)
                if val_loss is not None and val_loss < best_val:
                    best_val, best_epoch, stale = val_loss, epoch, 0
                    if self.config.restore_best:
                        best_state = self.model.state_dict()
                elif val_loss is not None:
                    stale += 1
                if epoch % every == 0 or epoch == self.config.epochs:
                    self.history.epochs.append(epoch)
                    self.history.losses.append(mean_loss)
                    self.history.learning_rates.append(self.optimizer.lr)
                    self.history.grad_norms.append(grad_norm)
                    if val_loss is not None:
                        self.history.val_losses.append(val_loss)
                    if verbose:
                        val_text = f"  val {val_loss:.5f}" if val_loss is not None else ""
                        print(f"epoch {epoch:4d}  loss {mean_loss:.5f}  "
                              f"lr {self.optimizer.lr:.2e}  |g| {grad_norm:.3f}{val_text}")
                if (self.config.early_stop_patience
                        and stale >= self.config.early_stop_patience):
                    self.history.stopped_early = True
                    break
            if best_state is not None and self.config.restore_best:
                self.model.load_state_dict(best_state)
            self.history.best_epoch = best_epoch
            self.history.wall_time_s = time.perf_counter() - start
            set_span_attrs(best_epoch=best_epoch, wall_time_s=self.history.wall_time_s,
                           stopped_early=self.history.stopped_early)
        return self.history

    def predict(self, inputs: np.ndarray, batch_size: int | None = None) -> np.ndarray:
        """Batched inference in label space, gradients disabled."""
        self.model.eval()
        size = batch_size if batch_size is not None else self.config.batch_size
        outputs = []
        with span("trainer.predict", samples=len(inputs), chunk=size), no_grad():
            for start in range(0, len(inputs), size):
                chunk = np.asarray(inputs[start:start + size], dtype=np.float64)
                outputs.append(self.model(Tensor(chunk)).numpy())
        return np.concatenate(outputs, axis=0)
