"""Rule-based OPC: per-contact mask bias calibration.

The paper motivates fast PEB surrogates with design-loop integration
(Section I).  This module closes that loop: iteratively resize each
mask contact so its *printed* CD converges to the design target, with
the PEB step computed either by the rigorous solver or by any trained
surrogate — the surrogate makes the loop cheap, which is exactly the
acceleration story of the paper.

The controller is a damped proportional update on each contact's mask
bias, the standard rule-based OPC baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

import numpy as np

from repro.config import LithoConfig
from .mask import MaskClip, rasterize
from .optics import aerial_image_stack
from .exposure import initial_photoacid
from .peb import RigorousPEBSolver
from .profile import contact_cds, development_arrival


class RigorousPEBBackend:
    """PEB via the reaction-diffusion solver (slow, exact)."""

    def __init__(self, config: LithoConfig, time_step_s: float = 0.5,
                 splitting: str = "strang"):
        self.config = config
        self._solver = RigorousPEBSolver(config.grid, config.peb,
                                         splitting=splitting, time_step_s=time_step_s)

    def inhibitor(self, acid: np.ndarray) -> np.ndarray:
        return self._solver.solve(acid).inhibitor


class SurrogatePEBBackend:
    """PEB via a trained surrogate (fast).

    ``model`` is any module with ``predict_inhibitor`` (SDM-PEB or a
    baseline); this is the drop-in acceleration the paper targets.
    """

    def __init__(self, model):
        self.model = model

    def inhibitor(self, acid: np.ndarray) -> np.ndarray:
        return self.model.predict_inhibitor(acid)


@dataclass
class OPCResult:
    """Outcome of a mask-bias calibration run."""

    clip: MaskClip                     # the corrected mask
    biases_nm: np.ndarray              # final per-contact bias (applied to both axes)
    cd_errors_nm: list[np.ndarray]     # per-iteration signed CD error (x+y mean)
    iterations: int

    @property
    def initial_rms_nm(self) -> float:
        return float(np.sqrt(np.mean(self.cd_errors_nm[0] ** 2)))

    @property
    def final_rms_nm(self) -> float:
        return float(np.sqrt(np.mean(self.cd_errors_nm[-1] ** 2)))


def _printed_cds(contacts, config: LithoConfig, backend) -> dict[str, np.ndarray]:
    pattern = rasterize(contacts, config.grid)
    aerial = aerial_image_stack(pattern, config.grid, config.optics)
    acid = initial_photoacid(aerial, config.exposure)
    inhibitor = backend.inhibitor(acid)
    arrival = development_arrival(inhibitor, config.grid, config.develop)
    return contact_cds(arrival, contacts, config.grid, config.develop)


def calibrate_mask_bias(clip: MaskClip, config: LithoConfig, backend,
                        iterations: int = 3, gain: float = 0.7,
                        max_bias_nm: float = 60.0) -> OPCResult:
    """Iteratively bias each contact so printed CD matches design CD.

    Each iteration simulates the current mask, measures per-contact
    printed CDs, and grows/shrinks each contact by
    ``gain * (design - printed)`` (mean of x and y error), clamped to
    ``±max_bias_nm``.  Unopened contacts receive the maximum positive
    step.  Returns the corrected clip and per-iteration error traces.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    targets_x = np.array([c.width_nm for c in clip.contacts])
    targets_y = np.array([c.height_nm for c in clip.contacts])
    biases = np.zeros(len(clip.contacts), dtype=np.float64)
    current = list(clip.contacts)
    errors: list[np.ndarray] = []
    for _ in range(iterations):
        cds = _printed_cds(current, config, backend)
        error_x = cds["x"] - targets_x
        error_y = cds["y"] - targets_y
        mean_error = (error_x + error_y) / 2.0
        closed = cds["x"] <= 0.0
        errors.append(np.where(closed, -targets_x, mean_error))
        step = np.where(closed, max_bias_nm * 0.5, -gain * mean_error)
        biases = np.clip(biases + step, -max_bias_nm, max_bias_nm)
        current = [
            dc_replace(c, width_nm=max(c.width_nm + b, 10.0),
                       height_nm=max(c.height_nm + b, 10.0))
            for c, b in zip(clip.contacts, biases)
        ]
    # Measure the corrected mask so cd_errors_nm[-1] reflects the result.
    final_cds = _printed_cds(current, config, backend)
    final_error = ((final_cds["x"] - targets_x) + (final_cds["y"] - targets_y)) / 2.0
    errors.append(np.where(final_cds["x"] <= 0.0, -targets_x, final_error))
    corrected = MaskClip(pattern=rasterize(current, config.grid),
                         contacts=tuple(current), grid=config.grid,
                         seed=clip.seed, kind=clip.kind)
    return OPCResult(clip=corrected, biases_nm=biases, cd_errors_nm=errors,
                     iterations=iterations)
