"""Physics health monitors: invariants, CD metrology, shadow audits."""

import numpy as np
import pytest

from repro.config import GridConfig, PEBConfig
from repro.core.label import inhibitor_to_label
from repro.litho.peb import RigorousPEBSolver
from repro.obs import (
    HealthConfig, HealthMonitor, ShadowAuditor, check_prediction, counter,
    disable_tracing, metrics_snapshot, reset_metrics, threshold_cd_nm,
)

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
#: short bake so shadow audits stay test-fast
PEB = PEBConfig(duration_s=3.0, time_step_s=1.0)


@pytest.fixture(autouse=True)
def _clean_obs():
    reset_metrics()
    yield
    disable_tracing()
    reset_metrics()


def physical_pair(seed=0):
    """A (acid, inhibitor) pair that satisfies every invariant by
    construction: Eq. 1's closed form over a smooth acid field."""
    rng = np.random.default_rng(seed)
    acid = rng.random(GRID.shape)
    inhibitor = np.exp(-0.9 * acid * 3.0)
    return acid, inhibitor


class TestThresholdCD:
    def test_no_crossing_is_zero(self):
        assert threshold_cd_nm(np.ones(GRID.shape), GRID) == 0.0

    def test_known_width(self):
        # deprotect exactly 4 interior columns of the center row: the
        # sharp-edge CD spans from mid-transition to mid-transition
        inhibitor = np.ones(GRID.shape)
        inhibitor[0, GRID.ny // 2, 6:10] = 0.0
        cd = threshold_cd_nm(inhibitor, GRID, threshold=0.5)
        assert cd == pytest.approx(4.0 * GRID.dx_nm, rel=1e-12)

    def test_wider_feature_wider_cd(self):
        narrow, wide = np.ones(GRID.shape), np.ones(GRID.shape)
        narrow[0, GRID.ny // 2, 7:9] = 0.0
        wide[0, GRID.ny // 2, 5:11] = 0.0
        assert threshold_cd_nm(wide, GRID) > threshold_cd_nm(narrow, GRID)


class TestCheckPrediction:
    def test_physical_prediction_passes(self):
        acid, inhibitor = physical_pair()
        verdict = check_prediction(acid, inhibitor, HealthConfig())
        assert verdict["finite"] and verdict["range"] and verdict["monotone"]
        assert verdict["range_excess"] == 0.0

    def test_nan_fails_everything(self):
        acid, inhibitor = physical_pair()
        inhibitor[0, 0, 0] = np.nan
        verdict = check_prediction(acid, inhibitor, HealthConfig())
        assert not verdict["finite"]
        assert not verdict["range"] and not verdict["monotone"]

    def test_out_of_range_reports_excess(self):
        acid, inhibitor = physical_pair()
        inhibitor[0, 0, 0] = 1.25
        verdict = check_prediction(acid, inhibitor, HealthConfig())
        assert verdict["finite"] and not verdict["range"]
        assert verdict["range_excess"] == pytest.approx(0.25)

    def test_tolerance_absorbs_float_noise(self):
        acid, inhibitor = physical_pair()
        inhibitor[0, 0, 0] = 1.0 + 1e-12
        assert check_prediction(acid, inhibitor, HealthConfig())["range"]

    def test_anti_monotone_prediction_fails(self):
        # inhibitor *rising* with acid inverts Eq. 1's deprotection
        acid, _ = physical_pair()
        rising = 1.0 - np.exp(-3.0 * acid)
        verdict = check_prediction(acid, rising, HealthConfig())
        assert not verdict["monotone"]
        assert verdict["monotone_excess"] > 0.0

    def test_monotonicity_check_disabled_by_zero_bins(self):
        acid, _ = physical_pair()
        rising = 1.0 - np.exp(-3.0 * acid)
        config = HealthConfig(monotonicity_bins=0)
        assert check_prediction(acid, rising, config)["monotone"]

    def test_pure_and_read_only(self):
        acid, inhibitor = physical_pair()
        acid_before, inh_before = acid.copy(), inhibitor.copy()
        check_prediction(acid, inhibitor, HealthConfig())
        assert np.array_equal(acid, acid_before)
        assert np.array_equal(inhibitor, inh_before)


class TestShadowAuditor:
    def test_audit_of_rigorous_output_has_zero_rmse(self):
        rng = np.random.default_rng(1)
        acid = rng.random(GRID.shape)
        rigorous = RigorousPEBSolver(GRID, PEB, time_step_s=1.0).solve(acid)
        config = HealthConfig(shadow_every=1, shadow_time_step_s=1.0)
        auditor = ShadowAuditor(GRID, peb=PEB, config=config)
        try:
            assert auditor.offer(acid, rigorous.inhibitor, request_id="r1")
            assert auditor.drain(timeout_s=60.0)
            assert auditor.audits_done == 1
            snapshot = metrics_snapshot()
            rmse = snapshot["health.shadow.rmse"]
            assert rmse["count"] == 1 and rmse["max"] == 0.0
            assert snapshot["health.shadow.cd_error_nm"]["count"] == 1
        finally:
            auditor.close()

    def test_full_backlog_drops_instead_of_queueing(self):
        config = HealthConfig(shadow_every=1, shadow_backlog=0)
        auditor = ShadowAuditor(GRID, peb=PEB, config=config)
        try:
            acid, inhibitor = physical_pair()
            assert not auditor.offer(acid, inhibitor)
            assert counter("health.shadow.dropped").value == 1
        finally:
            auditor.close()

    def test_closed_auditor_rejects(self):
        auditor = ShadowAuditor(GRID, peb=PEB, config=HealthConfig(shadow_every=1))
        auditor.close()
        acid, inhibitor = physical_pair()
        assert not auditor.offer(acid, inhibitor)


class TestHealthMonitor:
    def make_monitor(self, **kwargs):
        config = HealthConfig(**kwargs)
        return HealthMonitor(GRID, PEB.catalysis_rate, config=config, peb=PEB)

    def batch_from_inhibitor(self, inhibitor):
        """Label-space model outputs whose implied concentration is
        exactly ``inhibitor`` (up to the transform's clipping)."""
        return inhibitor_to_label(inhibitor, PEB.catalysis_rate)

    def test_healthy_batch_counts_no_violations(self):
        monitor = self.make_monitor()
        acid, inhibitor = physical_pair()
        monitor.observe_batch(acid[None], self.batch_from_inhibitor(inhibitor)[None])
        stats = monitor.stats()
        assert stats["checked"] == 1 and stats["violations"] == 0
        monitor.close()

    def test_nonfinite_prediction_counted(self):
        monitor = self.make_monitor()
        acid, _ = physical_pair()
        labels = np.full((1,) + GRID.shape, np.nan)
        monitor.observe_batch(acid[None], labels)
        assert monitor.stats()["violations"] == 1
        assert counter("health.violations.finite").value == 1
        monitor.close()

    def test_never_mutates_the_batch(self):
        monitor = self.make_monitor()
        acid, inhibitor = physical_pair()
        acids = acid[None].copy()
        labels = self.batch_from_inhibitor(inhibitor)[None].copy()
        acids_before, labels_before = acids.copy(), labels.copy()
        monitor.observe_batch(acids, labels, request_ids=["r1"], ctxs=[None])
        assert np.array_equal(acids, acids_before)
        assert np.array_equal(labels, labels_before)
        monitor.close()

    def test_never_raises_on_garbage(self):
        monitor = self.make_monitor()
        monitor.observe_batch(np.ones((2, 3)), None)  # not even an array
        assert counter("health.monitor_errors").value == 1
        monitor.close()

    def test_shadow_sampling_every_n(self):
        monitor = self.make_monitor(shadow_every=2, shadow_time_step_s=1.0)
        acid, inhibitor = physical_pair()
        labels = self.batch_from_inhibitor(inhibitor)
        for _ in range(4):
            monitor.observe_batch(acid[None], labels[None])
        assert monitor.auditor is not None
        assert monitor.auditor.drain(timeout_s=60.0)
        # requests 1 and 3 of 4 sampled at shadow_every=2
        assert monitor.auditor.audits_done == 2
        assert monitor.stats()["shadow_audits"] == 2
        monitor.close()

    def test_invariants_off_still_counts_checks(self):
        monitor = self.make_monitor(check_invariants=False)
        acid, _ = physical_pair()
        monitor.observe_batch(acid[None], np.full((1,) + GRID.shape, np.nan))
        stats = monitor.stats()
        assert stats["checked"] == 1 and stats["violations"] == 0
        monitor.close()
