"""Dihedral data augmentation for PEB samples.

The reaction-diffusion physics is equivariant under the 8 symmetries of
the square (flips and 90° rotations in the x-y plane): transforming the
photoacid transforms the inhibitor identically.  Augmenting the small
training sets with these symmetries is therefore *exact* — no label
noise — and matters at reproduction scale where only tens of clips are
simulated.  Contact geometry is transformed consistently so CD
evaluation stays valid on augmented samples.
"""

from __future__ import annotations

import numpy as np

from repro.config import GridConfig
from .dataset import PEBDataset, PEBSample
from repro.litho.mask import Contact

#: the dihedral group D4 as (number of 90° rotations, flip-x?) pairs
DIHEDRAL_OPS = tuple((rotations, flip) for rotations in range(4) for flip in (False, True))


def transform_volume(volume: np.ndarray, rotations: int, flip: bool) -> np.ndarray:
    """Apply a D4 element to a (nz, ny, nx) volume (x-y plane only)."""
    out = np.rot90(volume, k=rotations, axes=(1, 2))
    if flip:
        out = np.flip(out, axis=2)
    return np.ascontiguousarray(out)


def transform_contact(contact: Contact, rotations: int, flip: bool,
                      grid: GridConfig) -> Contact:
    """Apply the same D4 element to a contact's geometry."""
    extent = grid.size_um * 1000.0
    x, y = contact.center_x_nm, contact.center_y_nm
    w, h = contact.width_nm, contact.height_nm
    for _ in range(rotations % 4):
        # rot90 in array space (axes y, x) maps (x, y) -> (y, extent - x)
        x, y = y, extent - x
        w, h = h, w
    if flip:
        x = extent - x
    return Contact(center_x_nm=x, center_y_nm=y, width_nm=w, height_nm=h)


def augment_sample(sample: PEBSample, rotations: int, flip: bool,
                   grid: GridConfig) -> PEBSample:
    """One transformed copy of a sample (identity op returns a copy)."""
    return PEBSample(
        seed=sample.seed,
        acid=transform_volume(sample.acid, rotations, flip),
        inhibitor=transform_volume(sample.inhibitor, rotations, flip),
        label=transform_volume(sample.label, rotations, flip),
        contacts=tuple(transform_contact(c, rotations, flip, grid)
                       for c in sample.contacts),
        rigorous_seconds=sample.rigorous_seconds,
    )


def augment_dataset(dataset: PEBDataset, ops=DIHEDRAL_OPS) -> PEBDataset:
    """Expand a dataset by the given D4 elements (8x by default).

    The identity element should be included in ``ops`` if the original
    samples are to be retained (it is, in ``DIHEDRAL_OPS``).
    """
    if dataset.config.grid.nx != dataset.config.grid.ny:
        raise ValueError("dihedral augmentation requires square x-y grids")
    augmented = PEBDataset(dataset.config)
    for rotations, flip in ops:
        for sample in dataset.samples:
            augmented.samples.append(
                augment_sample(sample, rotations, flip, dataset.config.grid))
    return augmented
