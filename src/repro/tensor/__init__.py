"""A small reverse-mode autograd engine on numpy.

This package is the substrate replacing PyTorch for this reproduction:
a :class:`Tensor` with a dynamic tape, the primitive operator set, and
the convolution kernels needed by the SDM-PEB architecture and its
baselines.  Import order matters slightly: the ``ops_*`` modules attach
operator methods onto :class:`Tensor` when imported.
"""

from .tensor import (
    Tensor, no_grad, is_grad_enabled, as_array, ensure_tensor, DEFAULT_DTYPE,
    sanitize, is_sanitize_enabled, SanitizeError,
)
from . import ops_basic, ops_shape, ops_reduce  # noqa: F401  (method installation)
from .ops_basic import (
    add, sub, mul, div, neg, pow_, exp, log, sqrt, tanh, sigmoid, abs_,
    maximum, minimum, clip, where, matmul, einsum,
)
from .ops_shape import (
    reshape, transpose, swapaxes, moveaxis, concatenate, stack, pad, flip,
    broadcast_to, repeat_interleave, split,
)
from .ops_reduce import sum_, mean, max_, min_, var
from .ops_nn import (
    conv1d, conv3d, conv_transpose3d, upsample_nearest3d,
)
from . import functional
from . import plan  # noqa: F401  (built-in plan kernels register on import)
from .plan import Plan, PlanError, PlanCaptureError, PlanExecutionError, capture

__all__ = [
    "plan", "Plan", "PlanError", "PlanCaptureError", "PlanExecutionError",
    "capture",
    "Tensor", "no_grad", "is_grad_enabled", "as_array", "ensure_tensor", "DEFAULT_DTYPE",
    "sanitize", "is_sanitize_enabled", "SanitizeError",
    "add", "sub", "mul", "div", "neg", "pow_", "exp", "log", "sqrt", "tanh",
    "sigmoid", "abs_", "maximum", "minimum", "clip", "where", "matmul", "einsum",
    "reshape", "transpose", "swapaxes", "moveaxis", "concatenate", "stack",
    "pad", "flip", "broadcast_to", "repeat_interleave", "split",
    "sum_", "mean", "max_", "min_", "var",
    "conv1d", "conv3d", "conv_transpose3d", "upsample_nearest3d",
    "functional",
]
