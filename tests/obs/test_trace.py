"""Span tracing: enable/disable, nesting, JSONL schema, env config."""

import json
import os

import pytest

from repro.obs import (
    disable_tracing, enable_tracing, configure_from_env, current_trace_path,
    profiled, set_span_attrs, span, trace_enabled, trace_event, timer,
    reset_metrics,
)
from repro.obs import trace as trace_module


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    disable_tracing()
    reset_metrics()


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


class TestDisabled:
    def test_disabled_by_default(self):
        assert not trace_enabled()
        assert current_trace_path() is None

    def test_disabled_span_is_shared_noop(self):
        disable_tracing()
        a, b = span("x"), span("y", attr=1)
        assert a is b  # the shared no-op singleton: no allocation per call
        with a:
            pass

    def test_disabled_event_and_attrs_are_noops(self):
        trace_event("nothing", n=1)
        set_span_attrs(ignored=True)


class TestEnabled:
    def test_span_written_with_schema(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        with span("outer", label="L"):
            with span("inner"):
                pass
        events = read_events(path)
        assert [e["name"] for e in events] == ["inner", "outer"]  # close order
        inner, outer = events
        for e in events:
            assert e["type"] == "span"
            assert e["pid"] == os.getpid()
            assert e["dur_s"] >= 0.0
        assert inner["parent"] == outer["id"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["attrs"] == {"label": "L"}

    def test_set_span_attrs_lands_on_innermost(self, tmp_path):
        enable_tracing(tmp_path / "t.jsonl")
        with span("outer"):
            with span("inner"):
                set_span_attrs(loss=1.5)
        inner = read_events(tmp_path / "t.jsonl")[0]
        assert inner["attrs"] == {"loss": 1.5}

    def test_point_event(self, tmp_path):
        enable_tracing(tmp_path / "t.jsonl")
        trace_event("cache", hits=3)
        event = read_events(tmp_path / "t.jsonl")[0]
        assert event["type"] == "event"
        assert event["attrs"] == {"hits": 3}

    def test_exception_recorded_and_propagated(self, tmp_path):
        enable_tracing(tmp_path / "t.jsonl")
        with pytest.raises(RuntimeError):
            with span("boom"):
                raise RuntimeError("x")
        event = read_events(tmp_path / "t.jsonl")[0]
        assert event["attrs"]["error"] == "RuntimeError"

    def test_enable_truncates_by_default(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        with span("first"):
            pass
        enable_tracing(path)
        with span("second"):
            pass
        assert [e["name"] for e in read_events(path)] == ["second"]

    def test_disable_stops_writing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        enable_tracing(path)
        disable_tracing()
        with span("after"):
            pass
        assert read_events(path) == []


class TestEnvConfig:
    def test_repro_trace_env_enables(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        assert configure_from_env()
        with span("via_env"):
            pass
        assert [e["name"] for e in read_events(path)] == ["via_env"]

    def test_env_sink_appends(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        path.write_text('{"type":"span","name":"old","dur_s":0}\n')
        monkeypatch.setenv("REPRO_TRACE", str(path))
        configure_from_env()
        with span("new"):
            pass
        assert [e["name"] for e in read_events(path)] == ["old", "new"]

    def test_empty_env_stays_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        disable_tracing()
        trace_module._CONFIGURED = False
        assert not configure_from_env()
        assert not trace_enabled()


class TestProfiled:
    def test_wall_time_recorded(self):
        with profiled("block"):
            sum(range(1000))
        assert timer("profile.block").count == 1
        assert timer("profile.block").total_s > 0.0

    def test_memory_peak_recorded(self):
        from repro.obs import counter

        with profiled("alloc", memory=True):
            data = [0.0] * 50_000
            del data
        assert counter("profile.alloc.peak_bytes").value > 0

    def test_profiled_span_emitted_when_tracing(self, tmp_path):
        enable_tracing(tmp_path / "t.jsonl")
        with profiled("traced"):
            pass
        events = read_events(tmp_path / "t.jsonl")
        assert events[0]["name"] == "profile.traced"
