"""Learning-rate schedulers.

The paper trains with "a step decay scheduler, beginning at a learning
rate of 0.03 with a step size of 100 and a decay factor of 0.7";
:class:`StepDecay` implements exactly that schedule.
"""

from __future__ import annotations

from .optim import Optimizer


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer's learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:
        """Learning rate the schedule assigns to ``epoch``."""
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineDecay:
    """Cosine annealing from the base LR to ``min_lr`` over ``total_epochs``.

    Not used by the headline experiments but handy for ablations.
    """

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0):
        import math

        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self._math = math
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch / self.total_epochs, 1.0)
        cos = 0.5 * (1.0 + self._math.cos(self._math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cos
