"""Module/Parameter abstractions for building networks."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural-network modules.

    Submodules and parameters assigned as attributes are registered
    automatically, mirroring the torch ``nn.Module`` contract:
    ``parameters()``, ``named_parameters()``, ``train()/eval()``,
    ``state_dict()/load_state_dict()`` all work on the attribute tree.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """All parameters in the module tree, depth-first."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter data in-place; shapes must match exactly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.shape}")
            param.data = value.astype(param.data.dtype).copy()

    def save(self, path: str) -> None:
        """Save parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters from an ``.npz`` file."""
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """Holds submodules in a list, registering them for traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        setattr(self, f"item{index}", module)

    def __iter__(self):
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]


class Identity(Module):
    """Pass-through module."""

    def forward(self, x):
        return x
