"""Neural-network library built on :mod:`repro.tensor`."""

from .module import Module, Parameter, Sequential, ModuleList, Identity, normalize_weights_path
from .linear import Linear, MLP
from .conv import Conv1d, Conv3d, ConvTranspose3d, DepthwiseConv3d
from .norm import LayerNorm, ChannelLayerNorm
from .attention import EfficientSpatialSelfAttention
from .optim import Optimizer, SGD, Adam, clip_grad_norm
from .scheduler import StepDecay, CosineDecay
from . import init

__all__ = [
    "Module", "Parameter", "Sequential", "ModuleList", "Identity",
    "normalize_weights_path",
    "Linear", "MLP",
    "Conv1d", "Conv3d", "ConvTranspose3d", "DepthwiseConv3d",
    "LayerNorm", "ChannelLayerNorm",
    "EfficientSpatialSelfAttention",
    "Optimizer", "SGD", "Adam", "clip_grad_norm",
    "StepDecay", "CosineDecay",
    "init",
]
