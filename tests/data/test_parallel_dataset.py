"""Parallel dataset generation: bitwise identity and pool discipline."""

import numpy as np

from repro.config import GridConfig, LithoConfig
from repro.data import generate_dataset
from repro.data import dataset as dataset_module
from repro.runtime import pool as pool_module

TINY = LithoConfig(grid=GridConfig(size_um=1.0, nx=16, ny=16, nz=2))


class TestBitwiseIdentity:
    def test_serial_and_parallel_identical(self):
        serial = generate_dataset(3, TINY, time_step_s=1.0, cache_dir=None, workers=1)
        parallel = generate_dataset(3, TINY, time_step_s=1.0, cache_dir=None, workers=3)
        for a, b in zip(serial.samples, parallel.samples):
            assert a.seed == b.seed
            assert np.array_equal(a.acid, b.acid)
            assert np.array_equal(a.inhibitor, b.inhibitor)
            assert np.array_equal(a.label, b.label)
            assert a.contacts == b.contacts

    def test_env_worker_count_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        from_env = generate_dataset(2, TINY, time_step_s=1.0, cache_dir=None)
        monkeypatch.setenv("REPRO_WORKERS", "1")
        serial = generate_dataset(2, TINY, time_step_s=1.0, cache_dir=None)
        for a, b in zip(from_env.samples, serial.samples):
            assert np.array_equal(a.acid, b.acid)
            assert np.array_equal(a.label, b.label)


class TestPoolDiscipline:
    def test_cache_hits_skip_pool(self, tmp_path, monkeypatch):
        generate_dataset(2, TINY, time_step_s=1.0, cache_dir=tmp_path, workers=1)

        def forbid(fn, items, workers=None):
            raise AssertionError("fully cached datasets must not reach the pool")

        monkeypatch.setattr(dataset_module, "parallel_map", forbid)
        reloaded = generate_dataset(2, TINY, time_step_s=1.0, cache_dir=tmp_path)
        assert len(reloaded) == 2

    def test_workers_one_never_spawns(self, monkeypatch):
        def forbid(*args, **kwargs):
            raise AssertionError("workers=1 must not create a pool")

        monkeypatch.setattr(pool_module.multiprocessing, "get_context", forbid)
        dataset = generate_dataset(2, TINY, time_step_s=1.0, cache_dir=None, workers=1)
        assert len(dataset) == 2

    def test_partial_cache_only_simulates_misses(self, tmp_path):
        generate_dataset(1, TINY, time_step_s=1.0, cache_dir=tmp_path, workers=1)
        calls = []
        original = dataset_module.parallel_map

        def spy(fn, items, workers=None):
            calls.append([task[0] for task in items])
            return original(fn, items, workers=workers)

        try:
            dataset_module.parallel_map = spy
            dataset = generate_dataset(3, TINY, time_step_s=1.0,
                                       cache_dir=tmp_path, workers=1)
        finally:
            dataset_module.parallel_map = original
        assert calls == [[1, 2]]
        assert [s.seed for s in dataset.samples] == [0, 1, 2]
