"""Inference engines for the serving hot path.

The batcher's worker thread can run a forward in one of two ways:

* ``tape`` — the ordinary define-by-run autograd tape under
  :func:`~repro.tensor.no_grad` (the historical path, always available);
* ``plan`` — a compiled :class:`repro.tensor.Plan`: the first batch of
  each (checkpoint, batch shape) traces one tape forward, compiles it
  into an arena-backed in-place kernel program, and every later batch of
  that shape replays the program without touching the tape at all.

Plans are **shape-specialized**, so the cache key is the checkpoint's
content hash (weights identity) plus the exact batch shape and dtype.
The cache is process-global: two :class:`ServedModel` instances over the
same published checkpoint share compiled plans.

The contract is strict: a replayed output is bitwise identical to the
tape forward (``capture`` validates this on two inputs before a plan is
ever served), and anything the compiler cannot prove — an op without a
registered kernel, a data-dependent shape — aborts capture and pins that
(checkpoint, shape) bucket to the tape forever.  Falling back is always
silent and counted (``serve.plan.fallbacks``), never an error.

Everything is observable: ``serve.plan.capture`` / ``serve.plan.replay``
spans and timers, capture/fallback counters, and
:func:`plan_cache_stats` for ``/healthz`` and ``/metrics``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.obs import counter, span, timer
from repro.runtime.sync import make_lock
from repro.tensor import PlanError, no_grad
from repro.tensor import plan as _planmod

__all__ = [
    "ENGINES", "PlanExecutor", "clear_plan_cache", "plan_cache_stats",
    "resolve_engine",
]

ENGINES = ("tape", "plan")

#: environment opt-in mirroring how ``REPRO_SANITIZE`` is parsed
PLAN_ENV_VAR = "REPRO_INFER_PLAN"

# cache values: a compiled Plan, _CAPTURING (someone is tracing this
# bucket right now), or _FAILED (capture or replay broke; tape forever)
_CAPTURING = "capturing"
_FAILED = "failed"

_cache: dict[tuple, object] = {}
_cache_lock = make_lock("serve.engine.plans")
_fallbacks = 0
_capture_failures = 0


def resolve_engine(engine: str | None = None) -> str:
    """Normalize an engine choice; ``None`` consults ``REPRO_INFER_PLAN``."""
    if engine is None:
        raw = os.environ.get(PLAN_ENV_VAR, "")
        engine = "plan" if raw not in ("", "0", "false", "False") else "tape"
    if engine not in ENGINES:
        raise ValueError(f"unknown inference engine {engine!r} "
                         f"(choose from {ENGINES})")
    return engine


def clear_plan_cache() -> None:
    """Drop every compiled plan (tests; frees the arenas)."""
    global _fallbacks, _capture_failures
    with _cache_lock:
        _cache.clear()
        _fallbacks = 0
        _capture_failures = 0


def plan_cache_stats() -> dict:
    """Snapshot for ``/healthz`` and the Prometheus exposition."""
    with _cache_lock:
        entries = list(_cache.items())
        fallbacks = _fallbacks
        capture_failures = _capture_failures
    plans = [value for _, value in entries if isinstance(value, _planmod.Plan)]
    stats = [plan.stats() for plan in plans]
    return {
        "plans": len(plans),
        "capturing": sum(1 for _, v in entries if v is _CAPTURING),
        "failed": sum(1 for _, v in entries if v is _FAILED),
        "fallbacks": fallbacks,
        "capture_failures": capture_failures,
        "replays": sum(s["replays"] for s in stats),
        "arena_bytes": sum(s["arena_bytes"] for s in stats),
        "capture_s_total": round(sum(s["capture_s"] + s["validate_s"]
                                     for s in stats), 6),
        "replay_s_total": round(sum(s["replay_s_total"] for s in stats), 6),
        "entries": stats,
    }


class PlanExecutor:
    """One served checkpoint's view over the global plan cache.

    :meth:`run` either replays a compiled plan for the batch's exact
    shape or returns ``None``, which tells the caller to take the tape
    path.  The first batch of a new shape pays the capture cost inline
    (worker thread); concurrent callers of the same bucket fall back to
    tape rather than blocking behind the capture.
    """

    def __init__(self, model, content_hash: str, label: str):
        self._model = model
        self._content_hash = content_hash
        self._label = label

    def run(self, batch: np.ndarray) -> np.ndarray | None:
        plan = self._plan_for(batch)
        if plan is None:
            self._count_fallback()
            return None
        try:
            with span("serve.plan.replay", label=plan.label,
                      batch=batch.shape[0]), \
                    timer("serve.plan.replay").time():
                return plan.run(batch)
        except PlanError:
            # a replay failure means the plan no longer matches reality
            # (should not happen — the key pins shape and dtype); poison
            # the bucket and let the tape serve the batch
            self._poison(batch)
            self._count_fallback()
            return None

    # -- cache internals ----------------------------------------------
    def _key(self, batch: np.ndarray) -> tuple:
        return (self._content_hash, tuple(batch.shape), str(batch.dtype))

    def _plan_for(self, batch: np.ndarray):
        key = self._key(batch)
        with _cache_lock:
            entry = _cache.get(key)
            if entry is None:
                _cache[key] = _CAPTURING
            elif isinstance(entry, _planmod.Plan):
                return entry
            else:  # _CAPTURING or _FAILED
                return None
        return self._capture(key, batch)

    def _capture(self, key: tuple, batch: np.ndarray):
        global _capture_failures
        label = f"{self._label}:{'x'.join(map(str, batch.shape))}"
        try:
            with span("serve.plan.capture", label=label,
                      shape=list(batch.shape)), \
                    timer("serve.plan.capture").time(), no_grad():
                plan = _planmod.capture(lambda t: self._model(t), batch,
                                        label=label)
        except PlanError:
            with _cache_lock:
                _cache[key] = _FAILED
                _capture_failures += 1
            counter("serve.plan.capture_failures").inc()
            return None
        with _cache_lock:
            _cache[key] = plan
        counter("serve.plan.captures").inc()
        return plan

    def _poison(self, batch: np.ndarray) -> None:
        with _cache_lock:
            _cache[self._key(batch)] = _FAILED

    @staticmethod
    def _count_fallback() -> None:
        global _fallbacks
        with _cache_lock:
            _fallbacks += 1
        counter("serve.plan.fallbacks").inc()
