"""CLI: every subcommand exercised end-to-end at micro scale."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro import cli


def run_cli(args) -> int:
    return cli.main(args)


COMMON = ["--clips", "3", "--nx", "16", "--nz", "2", "--clip-um", "0.8"]


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    base = tmp_path_factory.mktemp("cli")
    cache = str(base / "cache")
    weights = str(base / "model.npz")
    # simulate + train once for the whole module
    assert run_cli(["simulate", *COMMON, "--cache", cache]) == 0
    assert run_cli(["train", *COMMON, "--cache", cache, "--method", "DeepCNN",
                    "--epochs", "2", "--weights", weights]) == 0
    return base, cache, weights


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["train", "--method", "GPT-7"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["simulate"])
        assert args.clips == 12 and args.nx == 32


class TestSimulate:
    def test_cache_populated(self, workspace):
        _, cache, _ = workspace
        assert len(list(Path(cache).glob("clip_*.npz"))) >= 3


class TestTrain:
    def test_weights_and_metadata_written(self, workspace):
        base, _, weights = workspace
        assert Path(weights).exists()
        meta = json.loads(Path(weights).with_suffix(".json").read_text())
        assert meta["method"] == "DeepCNN"
        assert "output_mean" in meta and "output_std" in meta


class TestPredict:
    def test_prediction_file(self, workspace):
        base, cache, weights = workspace
        out = str(base / "prediction.npz")
        code = run_cli(["predict", *COMMON, "--cache", cache,
                        "--weights", weights, "--clip", "0", "--out", out])
        assert code == 0
        with np.load(out) as archive:
            assert archive["inhibitor"].shape == (2, 16, 16)
            assert np.all(np.isfinite(archive["inhibitor"]))


class TestEvaluate:
    def test_evaluation_runs(self, workspace, capsys):
        base, cache, weights = workspace
        code = run_cli(["evaluate", *COMMON, "--cache", cache, "--weights", weights])
        assert code == 0
        output = capsys.readouterr().out
        assert "NRMSE(I)" in output and "CD error" in output


class TestFriendlyErrors:
    """Missing/broken weights must produce a short message, not a traceback."""

    def test_predict_missing_weights(self, workspace, capsys):
        base, cache, _ = workspace
        code = run_cli(["predict", *COMMON, "--cache", cache,
                        "--weights", str(base / "nope.npz"),
                        "--out", str(base / "p.npz")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nope.npz" in err
        assert "Traceback" not in err
        assert "train" in err  # points at the command that produces weights

    def test_evaluate_missing_weights(self, workspace, capsys):
        base, cache, _ = workspace
        code = run_cli(["evaluate", *COMMON, "--cache", cache,
                        "--weights", str(base / "missing" / "w.npz")])
        assert code == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_corrupt_weights_file(self, workspace, capsys):
        base, cache, _ = workspace
        bad = base / "corrupt.npz"
        bad.write_bytes(b"definitely not a zip archive")
        code = run_cli(["evaluate", *COMMON, "--cache", cache,
                        "--weights", str(bad)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err

    def test_serve_missing_checkpoint(self, capsys):
        code = run_cli(["serve", "--ckpt", "/nonexistent/model.npz"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "Traceback" not in err


class TestReport:
    """Trace analytics CLI: friendly on broken input, Chrome export valid."""

    def trace_lines(self):
        return [
            {"type": "span", "name": "serve.request", "pid": 1, "tid": 1,
             "id": "1-1", "parent": None, "trace": "req-1", "t_wall_s": 10.0,
             "dur_s": 0.05, "attrs": {"request_id": "req-1"}},
            {"type": "span", "name": "serve.batch", "pid": 1, "tid": 2,
             "id": "1-2", "parent": "1-1", "trace": "req-1", "t_wall_s": 10.01,
             "dur_s": 0.03, "attrs": {}},
            # multi-pid child and an orphan from a killed process
            {"type": "span", "name": "pool.worker_task", "pid": 9, "tid": 9,
             "id": "9-1", "parent": "1-2", "trace": "req-1", "t_wall_s": 10.02,
             "dur_s": 0.01, "attrs": {}},
            {"type": "span", "name": "lost.child", "pid": 3, "tid": 3,
             "id": "3-1", "parent": "3-999", "t_wall_s": 11.0,
             "dur_s": 0.002, "attrs": {}},
        ]

    @pytest.fixture
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("".join(json.dumps(line) + "\n"
                                for line in self.trace_lines()))
        return path

    def test_missing_file_is_friendly(self, tmp_path, capsys):
        code = run_cli(["report", str(tmp_path / "nope.jsonl")])
        assert code == 1
        out = capsys.readouterr().out
        assert "no trace file" in out and "Traceback" not in out

    def test_empty_file_exits_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert run_cli(["report", str(empty)]) == 0
        assert "no trace events" in capsys.readouterr().out

    def test_summary_table(self, trace_file, capsys):
        assert run_cli(["report", str(trace_file)]) == 0
        assert "serve.request" in capsys.readouterr().out

    def test_export_chrome_parses_as_json(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert run_cli(["report", str(trace_file),
                        "--export-chrome", str(out)]) == 0
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert len(events) == 4
        assert all(e["ph"] == "X" for e in events)
        assert {e["pid"] for e in events} == {1, 3, 9}

    def test_critical_path_tolerates_orphans_and_pids(self, trace_file, capsys):
        assert run_cli(["report", str(trace_file), "--critical-path"]) == 0
        out = capsys.readouterr().out
        assert "critical path from 'serve.request'" in out
        assert "pool.worker_task" in out  # followed across the pid hop

    def test_requests_view(self, trace_file, capsys):
        assert run_cli(["report", str(trace_file), "--requests"]) == 0
        out = capsys.readouterr().out
        assert "req-1" in out and "serve.request" in out


class TestTrainManifest:
    def test_train_writes_manifest_sidecar(self, workspace):
        _, _, weights = workspace
        manifest_file = Path(weights).with_suffix("").with_name("model.manifest.json")
        assert manifest_file.exists()
        manifest = json.loads(manifest_file.read_text())
        assert manifest["model_class"] == "DeepCNN"
        assert manifest["content_hash"].startswith("sha256:")


class TestJobsCLI:
    """`repro jobs …` against a live in-process server with a job queue."""

    @pytest.fixture(scope="class")
    def jobs_server(self, tmp_path_factory):
        from repro import nn
        from repro.config import GridConfig
        from repro.experiments import build_method
        from repro.jobs import JobExecutorConfig
        from repro.serve import (
            BatchPolicy, JobService, ModelRegistry, PredictServer,
            ServeConfig, ServedModel,
        )

        grid = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)
        registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
        nn.init.seed(0)
        model, _ = build_method("DeepCNN", grid)
        model.set_output_stats(0.5, 1.0)
        registry.publish(model, "DeepCNN", grid, "peb")
        loaded, manifest = registry.load("peb")
        served = ServedModel(loaded, manifest, BatchPolicy(max_wait_ms=2.0))
        jobs = JobService(tmp_path_factory.mktemp("jobs"),
                          JobExecutorConfig(poll_interval_s=0.02))
        server = PredictServer(served, ServeConfig(port=0),
                               jobs=jobs).start()
        yield server
        server.shutdown()

    def url(self, jobs_server):
        host, port = jobs_server.address
        return f"http://{host}:{port}"

    def test_submit_watch_and_list(self, jobs_server, capsys):
        url = self.url(jobs_server)
        code = run_cli(["jobs", "submit", "--url", url, "--type", "counter",
                        "--params", '{"iterations": 4}', "--watch",
                        "--poll-s", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "submitted" in out and "completed" in out
        assert '"checksum"' in out

        assert run_cli(["jobs", "list", "--url", url]) == 0
        assert "counter" in capsys.readouterr().out

    def test_status_and_cancel(self, jobs_server, capsys):
        url = self.url(jobs_server)
        assert run_cli(["jobs", "submit", "--url", url, "--type", "counter",
                        "--params", '{"iterations": 100000}']) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert run_cli(["jobs", "status", "--url", url, job_id]) == 0
        assert job_id in capsys.readouterr().out
        assert run_cli(["jobs", "cancel", "--url", url, job_id]) == 0
        assert job_id in capsys.readouterr().out

    def test_unknown_type_is_friendly(self, jobs_server, capsys):
        code = run_cli(["jobs", "submit", "--url", self.url(jobs_server),
                        "--type", "nope"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "unknown job type" in err
        assert "Traceback" not in err

    def test_unreachable_server_is_friendly(self, capsys):
        code = run_cli(["jobs", "list", "--url", "http://127.0.0.1:1",
                        "--timeout", "2"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "is the server running" in err

    def test_serve_parser_jobs_flags(self):
        args = cli.build_parser().parse_args(["serve"])
        assert args.jobs_dir == ".repro_jobs"
        assert not args.no_jobs
        args = cli.build_parser().parse_args(["serve", "--no-jobs"])
        assert args.no_jobs
