"""Mask clip generation and rasterization."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import GridConfig
from repro.litho import mask


class TestRasterize:
    def test_pixel_aligned_rectangle_exact(self):
        grid = GridConfig(nx=8, ny=8, nz=1, size_um=0.008)  # 1 nm pixels
        contact = mask.Contact(4.0, 4.0, 2.0, 2.0)
        pattern = mask.rasterize([contact], grid)
        assert pattern.sum() == 4.0
        assert pattern.max() == 1.0

    def test_half_pixel_coverage(self):
        grid = GridConfig(nx=4, ny=4, nz=1, size_um=0.004)
        contact = mask.Contact(2.0, 2.0, 1.0, 1.0)  # straddles 4 pixels equally
        pattern = mask.rasterize([contact], grid)
        assert np.allclose(pattern[1:3, 1:3], 0.25)

    def test_total_area_preserved(self):
        grid = GridConfig(nx=32, ny=32, nz=1, size_um=0.064)
        contact = mask.Contact(31.7, 29.3, 7.3, 5.1)
        pattern = mask.rasterize([contact], grid)
        pixel_area = grid.dx_nm * grid.dy_nm
        assert np.isclose(pattern.sum() * pixel_area, 7.3 * 5.1)

    def test_overlapping_contacts_clip_to_one(self):
        grid = GridConfig(nx=8, ny=8, nz=1, size_um=0.008)
        contact = mask.Contact(4.0, 4.0, 2.0, 2.0)
        pattern = mask.rasterize([contact, contact], grid)
        assert pattern.max() == 1.0


class TestGenerateClip:
    def test_deterministic_given_seed(self):
        a = mask.generate_clip(42)
        b = mask.generate_clip(42)
        assert np.array_equal(a.pattern, b.pattern)
        assert a.contacts == b.contacts

    def test_different_seeds_differ(self):
        assert not np.array_equal(mask.generate_clip(1).pattern, mask.generate_clip(2).pattern)

    def test_contacts_respect_margin(self):
        clip = mask.generate_clip(7, edge_margin_nm=150.0)
        extent = clip.grid.size_um * 1000.0
        for contact in clip.contacts:
            x0, x1 = contact.x_range
            y0, y1 = contact.y_range
            assert x0 > 0 and y0 > 0 and x1 < extent and y1 < extent

    def test_cd_range_respected(self):
        clip = mask.generate_clip(3, cd_range_nm=(50.0, 80.0))
        for contact in clip.contacts:
            assert 50.0 <= contact.width_nm <= 80.0
            assert 50.0 <= contact.height_nm <= 80.0

    def test_at_least_one_contact(self):
        clip = mask.generate_clip(0, density_range=(0.0, 0.0))
        assert len(clip.contacts) == 1

    def test_library_seeds_sequential(self):
        library = mask.generate_library(3, base_seed=10)
        assert [clip.seed for clip in library] == [10, 11, 12]

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_pattern_in_unit_range(self, seed):
        grid = GridConfig(nx=32, ny=32, nz=2)
        clip = mask.generate_clip(seed, grid=grid)
        assert clip.pattern.min() >= 0.0 and clip.pattern.max() <= 1.0
        assert clip.pattern.shape == (32, 32)
