"""Resist-surface height map and OBJ export."""

import numpy as np

from repro.config import DevelopConfig, GridConfig
from repro.litho import surface

DEV = DevelopConfig()
GRID = GridConfig(size_um=0.08, nx=4, ny=4, nz=4)  # 20 nm pixels, 80 nm thick


class TestHeightMap:
    def test_untouched_resist_full_thickness(self):
        arrival = np.full(GRID.shape, 10.0 * DEV.duration_s)
        heights = surface.height_map(arrival, GRID, DEV)
        assert np.allclose(heights, GRID.thickness_nm)

    def test_fully_developed_zero(self):
        arrival = np.zeros(GRID.shape)
        heights = surface.height_map(arrival, GRID, DEV)
        assert np.allclose(heights, 0.0)

    def test_partial_development_interpolates(self):
        """Front exactly at the boundary between layers 1 and 2."""
        arrival = np.full(GRID.shape, 10.0 * DEV.duration_s)
        arrival[0] = 0.3 * DEV.duration_s
        arrival[1] = DEV.duration_s        # exactly at threshold -> removed
        heights = surface.height_map(arrival, GRID, DEV)
        # layers 0,1 removed (40 nm of 80), front within layer 2's band
        assert np.all(heights < GRID.thickness_nm - 20.0)
        assert np.all(heights > 0.0)

    def test_column_independence(self):
        arrival = np.full(GRID.shape, 10.0 * DEV.duration_s)
        arrival[:, 0, 0] = 0.0   # one column fully developed
        heights = surface.height_map(arrival, GRID, DEV)
        assert heights[0, 0] == 0.0
        assert np.allclose(heights[1:, 1:], GRID.thickness_nm)

    def test_monotone_in_development_time(self):
        rng = np.random.default_rng(0)
        arrival = rng.uniform(0.0, 2.0 * DEV.duration_s, size=GRID.shape)
        arrival.sort(axis=0)  # arrival increases with depth (causal)
        fast = surface.height_map(arrival, GRID, DEV)
        slower_dev = DevelopConfig(duration_s=DEV.duration_s / 2.0)
        partial = surface.height_map(arrival, GRID, slower_dev)
        assert np.all(partial >= fast - 1e-9)


class TestObjExport:
    def test_file_structure(self, tmp_path):
        heights = np.full((4, 4), 40.0)
        path = tmp_path / "surface.obj"
        faces = surface.export_obj(heights, GRID, path)
        text = path.read_text()
        assert faces == 2 * 3 * 3
        assert text.count("\nv ") + text.startswith("v ") == 16
        assert text.count("\nf ") == faces

    def test_vertex_coordinates(self, tmp_path):
        heights = np.zeros((2, 2))
        heights[0, 0] = 55.0
        path = tmp_path / "s.obj"
        surface.export_obj(heights, GridConfig(size_um=0.04, nx=2, ny=2, nz=1), path)
        first_vertex = path.read_text().split("\n")[1]
        assert first_vertex == "v 10.00 10.00 55.00"
