"""Prediction-error analysis tools.

The paper argues about *where* surrogates fail: FNO misses
high-frequency detail, TEMPO-resist misses cross-depth interactions,
and errors concentrate at contact edges (Figs. 8-9 discussion).  This
module quantifies those claims for any predicted/true inhibitor pair:

* :func:`error_by_depth` — RMSE per resist layer;
* :func:`radial_error_spectrum` — radially-averaged power spectrum of
  the error field (low vs high spatial frequency content);
* :func:`error_by_region` — error split into contact-interior,
  contact-edge and background bands;
* :func:`depth_coupling_score` — how much a model's prediction at one
  layer uses *other* layers' inputs (probe-based).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GridConfig


def error_by_depth(predicted: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-depth-layer RMSE of a (nz, ny, nx) pair (or batches thereof)."""
    predicted, truth = np.asarray(predicted), np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError("shape mismatch")
    squared = (predicted - truth) ** 2
    depth_axis = -3
    other_axes = tuple(i for i in range(squared.ndim) if i != squared.ndim + depth_axis)
    return np.sqrt(squared.mean(axis=other_axes))


def radial_error_spectrum(predicted: np.ndarray, truth: np.ndarray,
                          num_bins: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Radially-averaged 2D power spectrum of the per-layer error.

    Returns ``(frequencies, power)`` where frequencies are in cycles
    per pixel, averaged over depth layers.  A model that only captures
    low frequencies shows a power excess at the high-frequency end.
    """
    predicted, truth = np.asarray(predicted), np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError("shape mismatch")
    error = predicted - truth
    if error.ndim == 2:
        error = error[None]
    nz, ny, nx = error.shape[-3:]
    error = error.reshape(-1, ny, nx)
    spectrum = np.abs(np.fft.fft2(error)) ** 2
    fy = np.fft.fftfreq(ny)
    fx = np.fft.fftfreq(nx)
    radius = np.hypot(fy[:, None], fx[None, :])
    # bins reach the spectrum corner (Nyquist in both axes)
    edges = np.linspace(0.0, np.sqrt(0.5), num_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    power = np.zeros(num_bins)
    for i, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        # the last bin is closed so the corner Nyquist mode is included
        upper = radius <= hi if i == num_bins - 1 else radius < hi
        mask = (radius >= lo) & upper
        power[i] = spectrum[:, mask].mean() if mask.any() else 0.0
    return centers, power


def region_masks(contacts, grid: GridConfig, edge_band_nm: float = 40.0) -> dict[str, np.ndarray]:
    """(ny, nx) boolean masks: contact interior / edge band / background."""
    x = (np.arange(grid.nx) + 0.5) * grid.dx_nm
    y = (np.arange(grid.ny) + 0.5) * grid.dy_nm
    interior = np.zeros((grid.ny, grid.nx), dtype=bool)
    dilated = np.zeros((grid.ny, grid.nx), dtype=bool)
    for contact in contacts:
        (x0, x1), (y0, y1) = contact.x_range, contact.y_range
        interior |= np.outer((y >= y0) & (y <= y1), (x >= x0) & (x <= x1))
        dilated |= np.outer((y >= y0 - edge_band_nm) & (y <= y1 + edge_band_nm),
                            (x >= x0 - edge_band_nm) & (x <= x1 + edge_band_nm))
    edge = dilated & ~interior
    return {"interior": interior, "edge": edge, "background": ~dilated}


@dataclass
class RegionErrors:
    """RMSE per spatial region."""

    interior: float
    edge: float
    background: float


def error_by_region(predicted: np.ndarray, truth: np.ndarray, contacts,
                    grid: GridConfig, edge_band_nm: float = 40.0) -> RegionErrors:
    """Split the volumetric RMSE into contact / edge / background regions."""
    predicted, truth = np.asarray(predicted), np.asarray(truth)
    if predicted.shape != truth.shape:
        raise ValueError("shape mismatch")
    masks = region_masks(contacts, grid, edge_band_nm)
    squared = (predicted - truth) ** 2

    def regional(name):
        mask = masks[name]
        if not mask.any():
            return float("nan")
        return float(np.sqrt(squared[..., mask].mean()))

    return RegionErrors(interior=regional("interior"), edge=regional("edge"),
                        background=regional("background"))


def depth_coupling_score(model, acid: np.ndarray, probe_layer: int | None = None,
                         magnitude: float = 0.5, seed: int = 0) -> float:
    """How strongly a surrogate couples depth levels, in [0, ~inf).

    Perturbs one input depth layer with noise and measures the output
    change on *all other* layers relative to the change on the
    perturbed layer itself.  A per-slice 2D model (TEMPO-resist) scores
    exactly 0; depthwise models score higher the more they mix depth.
    """
    rng = np.random.default_rng(seed)
    acid = np.asarray(acid, dtype=np.float64)
    nz = acid.shape[0]
    layer = nz // 2 if probe_layer is None else probe_layer
    base = _predict_label(model, acid)
    perturbed = acid.copy()
    perturbed[layer] += magnitude * rng.random(acid.shape[1:])
    changed = _predict_label(model, perturbed)
    delta = np.abs(changed - base)
    own = delta[layer].mean()
    others = np.concatenate([delta[:layer], delta[layer + 1:]]).mean()
    if own == 0.0:
        return 0.0
    return float(others / own)


def _predict_label(model, acid: np.ndarray) -> np.ndarray:
    from repro.tensor import Tensor, no_grad

    with no_grad():
        return model(Tensor(acid[None])).numpy()[0]
