"""Dill exposure model: aerial image → initial photoacid distribution.

In positive-tone CAR, exposure decomposes the photoacid generator; the
Dill model gives the local PAG conversion as
``[A]_0 = 1 - exp(-C * dose * I)``, with ``I`` the local aerial-image
intensity.  The result is the normalized initial acid latent image that
the PEB solver (and the learned surrogates) take as input.
"""

from __future__ import annotations

import numpy as np

from repro.config import ExposureConfig


def initial_photoacid(aerial_image: np.ndarray, exposure: ExposureConfig) -> np.ndarray:
    """Normalized initial photoacid concentration in [0, 1)."""
    if np.any(aerial_image < 0):
        raise ValueError("aerial image intensity must be non-negative")
    return 1.0 - np.exp(-exposure.dill_c * exposure.dose_mj_cm2 * aerial_image)
