"""Attention layer vs a naive reference implementation."""

import numpy as np
from scipy import special

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(61)


def naive_attention(layer: nn.EfficientSpatialSelfAttention, x: np.ndarray) -> np.ndarray:
    """Plain-numpy multi-head attention with r = 1, for cross-checking."""
    b, n, c = x.shape
    heads, hd = layer.num_heads, layer.head_dim
    q = x @ layer.q_proj.weight.data.T + layer.q_proj.bias.data
    kv = x @ layer.kv_proj.weight.data.T + layer.kv_proj.bias.data
    kv = kv.reshape(b, n, 2, heads, hd)
    k, v = kv[:, :, 0], kv[:, :, 1]
    q = q.reshape(b, n, heads, hd)
    out = np.empty((b, n, heads, hd))
    for bi in range(b):
        for h in range(heads):
            scores = q[bi, :, h] @ k[bi, :, h].T / np.sqrt(hd)
            weights = special.softmax(scores, axis=-1)
            out[bi, :, h] = weights @ v[bi, :, h]
    flat = out.reshape(b, n, c)
    return flat @ layer.out_proj.weight.data.T + layer.out_proj.bias.data


class TestAgainstReference:
    def test_single_head(self):
        nn.init.seed(0)
        layer = nn.EfficientSpatialSelfAttention(8, num_heads=1, reduction_ratio=1)
        x = RNG.standard_normal((2, 6, 8))
        assert np.allclose(layer(Tensor(x)).numpy(), naive_attention(layer, x), atol=1e-10)

    def test_multi_head(self):
        nn.init.seed(1)
        layer = nn.EfficientSpatialSelfAttention(12, num_heads=3, reduction_ratio=1)
        x = RNG.standard_normal((1, 10, 12))
        assert np.allclose(layer(Tensor(x)).numpy(), naive_attention(layer, x), atol=1e-10)

    def test_permutation_equivariance_r1(self):
        """Full attention (r=1) is permutation-equivariant over tokens."""
        nn.init.seed(2)
        layer = nn.EfficientSpatialSelfAttention(8, num_heads=2, reduction_ratio=1)
        x = RNG.standard_normal((1, 8, 8))
        perm = RNG.permutation(8)
        out = layer(Tensor(x)).numpy()
        out_permuted = layer(Tensor(x[:, perm])).numpy()
        assert np.allclose(out_permuted, out[:, perm], atol=1e-10)

    def test_reduction_breaks_permutation_equivariance(self):
        """The Eq. 15 K/V folding is position-dependent — a deliberate
        trade of symmetry for O(L^2/r) cost."""
        nn.init.seed(3)
        layer = nn.EfficientSpatialSelfAttention(8, num_heads=2, reduction_ratio=4)
        x = RNG.standard_normal((1, 8, 8))
        perm = np.roll(np.arange(8), 1)
        out = layer(Tensor(x)).numpy()
        out_permuted = layer(Tensor(x[:, perm])).numpy()
        assert not np.allclose(out_permuted, out[:, perm], atol=1e-6)
