"""Forked worker processes for the multi-process serving backend.

The single-process server serializes every forward on one core because
of the GIL.  The :class:`WorkerPool` escapes it: N forked worker
processes, each owning one core, its own compiled-plan cache and a
read-only mapping of the shared-memory weight segment published by
:mod:`repro.serve.shm`.  The parent keeps the queues (the per-shard
:class:`~repro.serve.batcher.MicroBatcher`\\ s) and ships each coalesced
batch to its shard's worker over a ``multiprocessing.Pipe``.

Lifecycle, in this module:

* **spawn** — fork (never ``spawn``: the worker needs the parent's
  imported world and the shm segment is already mapped) after a
  :func:`repro.runtime.sync.check_fork_safety` sweep;
* **health heartbeat** — a daemon monitor thread pings idle workers
  every ``heartbeat_interval_s`` and respawns any that died between
  requests;
* **crash detection** — the forwarding thread polls the pipe *and* the
  child's liveness, so a SIGKILL mid-batch surfaces within one poll
  tick as :class:`WorkerCrashedError` (the HTTP layer maps it to
  503 + ``Retry-After``; the request is never answered with garbage);
* **respawn** — the fork happens with no instrumented lock held (the
  sanitizer's fork hook would rightly object otherwise); restart
  counts feed ``/healthz``;
* **drain** — ``close`` stops the monitor, sends every worker a stop
  message, joins with a timeout, escalates to ``terminate``, and
  releases the weight segment (unlinking it when this pool held the
  last reference).

Trace identity crosses the fork per batch: the parent captures its
:class:`~repro.obs.TraceContext` inside the ``serve.batch`` span and the
worker re-activates it around its ``serve.forward`` span, so one request
still reads back from the trace as one connected tree.  The active
trace *path* rides along too — tracing toggled on after the pool
spawned still reaches workers on the next batch.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.obs import (
    capture_context, counter, current_recorder, current_trace_path,
    disable_tracing, enable_tracing, record_lane_crash, span,
    trace_enabled, use_context,
)
from repro.runtime.pool import fork_available
from repro.runtime.sync import check_fork_safety, make_lock
from repro.tensor import Tensor, no_grad

from .batcher import ServeError
from .engine import PlanExecutor, plan_cache_stats
from .registry import ModelManifest, _build_model
from .shm import ShmSpec, WeightStore, attach_views, release_weights

__all__ = ["PoolConfig", "WorkerCrashedError", "WorkerPool",
           "resolve_serve_workers"]


class WorkerCrashedError(ServeError):
    """A worker process died while (or before) running a batch.

    Mapped to HTTP 503 with ``Retry-After``: the in-flight request is
    failed fast and retried by the client against the respawned worker —
    it is never answered with a partial or stale result.
    """


def resolve_serve_workers(workers: int | None = None) -> int:
    """Resolve the serving worker count: arg > ``REPRO_SERVE_WORKERS`` > 1.

    The default is 1 — the historical in-process path with zero fork or
    pipe overhead — not the core count: multi-process serving is opt-in
    per deployment.  Non-positive or unparsable values raise so a typo'd
    environment fails loudly.
    """
    if workers is None:
        env = os.environ.get("REPRO_SERVE_WORKERS", "").strip()
        if env:
            try:
                workers = int(env)
            except ValueError as exc:
                raise ValueError(
                    f"REPRO_SERVE_WORKERS={env!r} is not an integer") from exc
        else:
            workers = 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"serve worker count must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class PoolConfig:
    """Worker-pool lifecycle knobs."""

    #: monitor-thread poll period for liveness and idle heartbeats
    heartbeat_interval_s: float = 0.25
    #: parent-side cap on one batch round trip before the worker is
    #: declared wedged and replaced
    forward_timeout_s: float = 60.0
    #: artificial pre-forward sleep inside the worker; 0 in production,
    #: raised by the fault-injection tests to widen the kill window
    forward_delay_s: float = 0.0
    #: how long ``close(drain=True)`` waits for a worker to exit before
    #: escalating to ``terminate``
    drain_timeout_s: float = 10.0
    #: pipe poll tick while waiting for a worker's reply
    poll_interval_s: float = 0.05
    #: how long a freshly forked worker gets to map weights, rebuild the
    #: model and report ready before the spawn is declared failed
    spawn_timeout_s: float = 30.0
    #: consecutive failed respawns before a shard is disabled instead of
    #: respawned in a tight loop (deterministic init failures would
    #: otherwise fork forever); surfaces as ``alive < workers`` on
    #: ``/healthz``
    max_spawn_failures: int = 3


@dataclass(frozen=True)
class _WorkerSpec:
    """Everything a forked worker needs to rebuild its serving state."""

    manifest: ModelManifest
    shm: ShmSpec
    engine: str
    label: str
    forward_delay_s: float


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _sync_tracing(path: str | None) -> None:
    """Match the worker's tracing state to the parent's current path."""
    if path is None:
        if trace_enabled():
            disable_tracing()
    elif not trace_enabled() or current_trace_path() != path:
        enable_tracing(path, truncate=False)


def _worker_main(spec: _WorkerSpec, conn, close_in_child) -> None:
    """Forked worker entry point: map weights, rebuild, serve batches."""
    # SIGINT goes to the whole foreground process group; the parent owns
    # orderly shutdown and tells workers to stop over the pipe
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # forked children inherit every other worker's pipe ends; close them
    # so a dead sibling's pipe actually reports EOF to the parent
    for other in close_in_child:
        try:
            other.close()
        except OSError:
            pass
    try:
        shm, views = attach_views(spec.shm)
        model = _build_model(spec.manifest)
        for name, param in model.named_parameters():
            param.data = views[name]
        # non-parameter state travels in the manifest, exactly as
        # load_checkpoint restores it — the segment holds parameters only
        model.set_output_stats(spec.manifest.output_mean,
                               spec.manifest.output_std)
        model.eval()
        executor = None
        if spec.engine == "plan":
            executor = PlanExecutor(model, spec.manifest.content_hash,
                                    label=spec.label)
    except Exception as error:  # noqa: BLE001 - reported to the parent
        try:
            conn.send(("fatal", 0, ServeError(
                f"worker init failed (is the manifest registry-faithful?): "
                f"{error!r}")))
        finally:
            conn.close()
        return
    conn.send(("ready", 0, {"pid": os.getpid()}))
    batches_done = 0
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # parent went away; nothing left to serve
            kind = message[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", message[1], {
                    "pid": os.getpid(),
                    "batches_done": batches_done,
                    "plan_cache": plan_cache_stats(),
                }))
                continue
            if kind != "batch":
                conn.send(("err", message[1],
                           ServeError(f"unknown pool message {kind!r}")))
                continue
            _, seq, batch, ctx, trace_path = message
            _sync_tracing(trace_path)
            if spec.forward_delay_s > 0:
                time.sleep(spec.forward_delay_s)
            try:
                with use_context(ctx), \
                        span("serve.forward", size=len(batch),
                             engine=spec.engine, worker_pid=os.getpid()):
                    output = None
                    if executor is not None:
                        output = executor.run(batch)
                    if output is None:
                        with no_grad():
                            output = model(Tensor(batch)).numpy()
                batches_done += 1
                conn.send(("ok", seq, np.asarray(output)))
            except Exception as error:  # noqa: BLE001 - forwarded to parent
                try:
                    conn.send(("err", seq, error))
                except Exception:  # noqa: BLE001 - unpicklable exception
                    conn.send(("err", seq, ServeError(repr(error))))
    finally:
        try:
            conn.close()
        finally:
            shm.close()


class _WorkerHandle:
    """Parent-side state for one worker process."""

    def __init__(self, shard: int, name: str):
        self.shard = shard
        self.name = name
        # serializes pipe use per worker; ordering: handle.lock may be
        # taken before the pool stats lock, never the reverse
        self.lock = make_lock(f"serve.pool.{name}.w{shard}")
        self.process = None
        self.conn = None
        self.child_conn = None
        self.restarts = 0
        self.batches_done = 0
        self.last_heartbeat_s: float | None = None
        self.respawning = False
        self.spawn_failures = 0
        #: set after ``max_spawn_failures`` consecutive failed respawns;
        #: a disabled shard is never forked again (no respawn storms)
        self.disabled = False
        #: True while a batch round trip is in flight on the pipe; the
        #: fault-injection tests key their kill window off this
        self.busy = False
        self.seq = 0

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def conns(self) -> list:
        return [c for c in (self.conn, self.child_conn) if c is not None]


class WorkerPool:
    """N forked serving workers, one per shard, with crash respawn."""

    def __init__(self, manifest: ModelManifest, store: WeightStore,
                 engine: str, workers: int,
                 config: PoolConfig | None = None, name: str = "default"):
        if workers < 1:
            raise ValueError(f"worker pool needs >= 1 workers, got {workers}")
        if not fork_available():
            raise RuntimeError(
                "multi-process serving requires the fork start method; "
                "run with workers=1 on this platform")
        self.manifest = manifest
        self.engine = engine
        self.config = config if config is not None else PoolConfig()
        self.name = name
        self._store = store
        self._ctx = multiprocessing.get_context("fork")
        self._spec = _WorkerSpec(
            manifest=manifest, shm=store.spec, engine=engine,
            label=f"{name}-pool", forward_delay_s=self.config.forward_delay_s)
        self._stats_lock = make_lock(f"serve.pool.{name}.stats")
        self._closed = False
        self._workers = [_WorkerHandle(shard, name) for shard in range(workers)]
        check_fork_safety()
        try:
            for handle in self._workers:
                self._spawn(handle)
        except Exception:
            # a failed first spawn (unbuildable manifest, say) must not
            # strand the siblings that did start
            for handle in self._workers:
                if handle.process is not None and handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(2.0)
                if handle.conn is not None:
                    try:
                        handle.conn.close()
                    except OSError:
                        pass
            raise
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True,
            name=f"repro-serve-pool-{name}-monitor")
        self._monitor.start()

    @property
    def workers(self) -> int:
        return len(self._workers)

    # -- spawn / respawn ----------------------------------------------
    def _spawn(self, handle: _WorkerHandle) -> None:
        """Fork a fresh process for ``handle``.  Caller must NOT hold
        ``handle.lock`` — forking under an instrumented lock is exactly
        what the sanitizer's fork hook flags."""
        parent_conn, child_conn = self._ctx.Pipe()
        close_in_child = [c for other in self._workers
                          if other is not handle for c in other.conns()]
        process = self._ctx.Process(
            target=_worker_main, args=(self._spec, child_conn, close_in_child),
            daemon=True, name=f"repro-serve-{self.name}-w{handle.shard}")
        process.start()
        child_conn.close()
        # ready handshake: the worker maps the segment and rebuilds the
        # model before reporting in — a manifest that cannot rebuild the
        # served model fails the spawn here, loudly, instead of leaving a
        # worker that dies on its first batch
        try:
            if not parent_conn.poll(self.config.spawn_timeout_s):
                raise WorkerCrashedError(
                    f"serving worker {handle.shard} (pool {self.name!r}) did "
                    f"not report ready within {self.config.spawn_timeout_s}s")
            try:
                kind, _seq, payload = parent_conn.recv()
            except (EOFError, OSError) as error:
                raise WorkerCrashedError(
                    f"serving worker {handle.shard} (pool {self.name!r}) died "
                    "during startup") from error
            if kind != "ready":
                if isinstance(payload, Exception):
                    raise payload
                raise WorkerCrashedError(
                    f"serving worker {handle.shard} failed to start: {payload}")
        except Exception:
            process.terminate()
            process.join(2.0)
            try:
                parent_conn.close()
            except OSError:
                pass
            raise
        old_conn = handle.conn
        handle.process = process
        handle.conn = parent_conn
        handle.child_conn = None
        handle.last_heartbeat_s = time.monotonic()
        if old_conn is not None:
            try:
                old_conn.close()
            except OSError:
                pass
        counter("serve.pool.spawned").inc()

    def _mark_crashed(self, handle: _WorkerHandle, why: str) -> WorkerCrashedError:
        counter("serve.pool.crashes").inc()
        error = WorkerCrashedError(
            f"serving worker {handle.shard} (pool {self.name!r}) {why}; "
            "it is being respawned — retry shortly")
        # a dead worker is exactly what the black box exists for: grab a
        # dump while the surrounding state (queues, requests, alerts) is
        # still the crash-time state.  record_crash rate-limits, so a
        # crash-looping worker costs one dump per interval, not per death.
        recorder = current_recorder()
        if recorder is not None:
            try:
                recorder.record_crash(f"pool.worker.{handle.shard}", error)
            except Exception:  # noqa: BLE001 - observing must not block respawn
                pass
        return error

    def _monitor_loop(self) -> None:
        """Respawn workers that died between requests (idle crashes)."""
        try:
            self._monitor_run()
        except BaseException as exc:
            record_lane_crash("pool.monitor", exc)
            raise

    def _monitor_run(self) -> None:
        while not self._monitor_stop.wait(self.config.heartbeat_interval_s):
            for handle in self._workers:
                if self._closed:
                    return
                if handle.disabled:
                    continue
                needs_respawn = False
                with handle.lock:
                    if not handle.alive() and not handle.respawning:
                        handle.respawning = True
                        needs_respawn = True
                if needs_respawn:
                    self._mark_crashed(handle, "died while idle")
                    self._respawn(handle)
                    continue
                self._heartbeat(handle)

    def _respawn(self, handle: _WorkerHandle) -> None:
        if self._closed:
            with handle.lock:
                handle.respawning = False
            return
        try:
            try:
                self._spawn(handle)
            except Exception:  # noqa: BLE001 - a dead shard beats a dead monitor
                counter("serve.pool.respawn_failures").inc()
                with self._stats_lock:
                    handle.spawn_failures += 1
                    if handle.spawn_failures >= self.config.max_spawn_failures:
                        handle.disabled = True
                return
            with self._stats_lock:
                handle.spawn_failures = 0
                handle.restarts += 1
            counter("serve.pool.restarts").inc()
        finally:
            with handle.lock:
                handle.respawning = False

    def _heartbeat(self, handle: _WorkerHandle) -> None:
        """Ping an idle worker; skip (without blocking) if it is busy."""
        if not handle.lock.acquire(blocking=False):
            return
        try:
            if not handle.alive():
                return
            handle.seq += 1
            seq = handle.seq
            try:
                handle.conn.send(("ping", seq))
                deadline = time.monotonic() + self.config.heartbeat_interval_s
                while time.monotonic() < deadline:
                    if handle.conn.poll(self.config.poll_interval_s):
                        kind, got_seq, _info = handle.conn.recv()
                        if kind == "pong" and got_seq == seq:
                            # batch counts stay parent-side: they span
                            # respawns, the worker's own count does not
                            handle.last_heartbeat_s = time.monotonic()
                            return
                    if not handle.alive():
                        return
            except (EOFError, OSError, BrokenPipeError):
                return  # liveness check on the next tick handles it
        finally:
            handle.lock.release()

    # -- forward path --------------------------------------------------
    def forward(self, shard: int, batch: np.ndarray) -> np.ndarray:
        """Run one batch on ``shard``'s worker; raises on crash/timeout."""
        handle = self._workers[shard]
        trace_path = current_trace_path() if trace_enabled() else None
        with handle.lock:
            if self._closed:
                raise ServeError(f"pool {self.name!r} is shut down")
            if handle.disabled:
                raise ServeError(
                    f"serving worker {handle.shard} (pool {self.name!r}) is "
                    f"disabled after {handle.spawn_failures} failed respawns")
            if not handle.alive():
                raise self._mark_crashed(handle, "was down when the batch arrived")
            handle.seq += 1
            seq = handle.seq
            handle.busy = True
            try:
                try:
                    handle.conn.send(("batch", seq, np.ascontiguousarray(batch),
                                      capture_context(), trace_path))
                except (OSError, BrokenPipeError) as error:
                    raise self._mark_crashed(handle, "pipe broke on send") from error
                deadline = time.monotonic() + self.config.forward_timeout_s
                while True:
                    reply = None
                    try:
                        if handle.conn.poll(self.config.poll_interval_s):
                            reply = handle.conn.recv()
                    except (EOFError, OSError, BrokenPipeError) as error:
                        raise self._mark_crashed(handle, "died mid-batch") from error
                    if reply is not None:
                        kind, got_seq, payload = reply
                        if got_seq != seq:
                            continue  # stale reply (a drained heartbeat, say)
                        if kind == "ok":
                            with self._stats_lock:
                                handle.batches_done += 1
                            return payload
                        raise payload
                    if not handle.alive():
                        raise self._mark_crashed(handle, "died mid-batch")
                    if time.monotonic() > deadline:
                        handle.process.terminate()
                        raise self._mark_crashed(
                            handle,
                            f"timed out after {self.config.forward_timeout_s}s")
            finally:
                handle.busy = False

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        now = time.monotonic()
        per_worker = []
        with self._stats_lock:
            counts = [(h.restarts, h.batches_done) for h in self._workers]
        for handle, (restarts, batches_done) in zip(self._workers, counts):
            beat = handle.last_heartbeat_s
            per_worker.append({
                "shard": handle.shard,
                "pid": handle.process.pid if handle.process else None,
                "alive": handle.alive(),
                "disabled": handle.disabled,
                "restarts": restarts,
                "batches_done": batches_done,
                "heartbeat_age_s": round(now - beat, 3) if beat else None,
            })
        return {
            "workers": len(self._workers),
            "engine": self.engine,
            "restarts": sum(w["restarts"] for w in per_worker),
            "alive": sum(1 for w in per_worker if w["alive"]),
            "per_worker": per_worker,
        }

    # -- lifecycle -----------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Stop the monitor, drain workers, release the weight segment."""
        if self._closed:
            return
        self._closed = True
        self._monitor_stop.set()
        self._monitor.join(timeout=5.0)
        with span("serve.pool.close", drain=drain, workers=len(self._workers)):
            for handle in self._workers:
                with handle.lock:
                    process, conn = handle.process, handle.conn
                    if conn is not None:
                        try:
                            conn.send(("stop",))
                        except (OSError, BrokenPipeError):
                            pass
                if process is not None:
                    process.join(self.config.drain_timeout_s if drain else 0.5)
                    if process.is_alive():
                        process.terminate()
                        process.join(2.0)
                with handle.lock:
                    if handle.conn is not None:
                        try:
                            handle.conn.close()
                        except OSError:
                            pass
                        handle.conn = None
            release_weights(self._store)

    @property
    def closed(self) -> bool:
        return self._closed
