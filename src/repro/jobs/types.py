"""Job types: checkpointable steppers behind a string registry.

A job type maps a JSON ``params`` dict to a **stepper** — an object
whose entire mutable state is a flat dict of numpy arrays:

* ``init_state()`` — the state before any work;
* ``step(state) -> (state, progress)`` — one resumable unit of work;
* ``done(state)`` — whether the iteration budget is exhausted;
* ``finalize(state) -> (result, state)`` — the JSON-able result.

The contract that makes jobs restartable is *purity*: ``step`` must be
a deterministic function of the state dict alone (no hidden attributes,
no RNG draws), so that a state round-tripped through ``np.savez`` —
which is exactly what a checkpoint is — continues bitwise-identically.
``repro.litho.ilt.GradientOPC`` is written to this contract.

Flagship type: ``opc_gradient`` — gradient-based ILT/OPC through the
differentiable optics → Dill → PEB → metrology chain.  ``counter`` is a
trivial deterministic stepper for exercising the queue machinery in
tests without simulator cost.
"""

from __future__ import annotations

import numpy as np

from repro.config import GridConfig, LithoConfig

__all__ = ["JobTypeError", "register_job_type", "build_stepper",
           "job_type_names", "GradientOPCJob", "CounterJob"]


class JobTypeError(Exception):
    """Unknown job type or invalid job params."""


_REGISTRY: dict[str, type] = {}


def register_job_type(name: str, factory: type) -> None:
    """Register a stepper class under ``name`` (last writer wins)."""
    _REGISTRY[name] = factory


def job_type_names() -> list[str]:
    return sorted(_REGISTRY)


def build_stepper(job_type: str, params: dict):
    """Instantiate the stepper for a job record's type + params."""
    try:
        factory = _REGISTRY[job_type]
    except KeyError:
        raise JobTypeError(
            f"unknown job type {job_type!r}; known: {job_type_names()}"
        ) from None
    try:
        return factory(params or {})
    except (TypeError, ValueError, KeyError) as error:
        raise JobTypeError(f"invalid params for {job_type!r}: {error}") from error


def _json_safe(value):
    """Numpy scalars/arrays → plain python for JSON round-trips."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class GradientOPCJob:
    """Gradient-based mask-bias OPC on a seeded contact clip.

    Params (all optional, JSON-able)::

        seed              clip seed                      (default 3)
        size_um, nx, ny, nz, edge_margin_nm              clip geometry
        iterations        optimizer steps                (default 8)
        optimizer         "gauss-newton" | "adam"
        backend           "gaussian" | "surrogate"
        effective_time_s  Gaussian backend catalysis time
        checkpoint        weights path (surrogate backend only)
        opt               extra GradientOPCConfig overrides
    """

    def __init__(self, params: dict):
        from repro.litho.ilt import (
            DifferentiableSurrogateBackend, GaussianPEBBackend, GradientOPC,
            GradientOPCConfig,
        )
        from repro.litho.mask import generate_clip

        grid = GridConfig(
            size_um=float(params.get("size_um", 0.8)),
            nx=int(params.get("nx", 32)),
            ny=int(params.get("ny", 32)),
            nz=int(params.get("nz", 2)),
        )
        config = LithoConfig(grid=grid)
        clip = generate_clip(
            int(params.get("seed", 3)), grid=grid,
            edge_margin_nm=float(params.get("edge_margin_nm", 100.0)))
        backend_name = params.get("backend", "gaussian")
        if backend_name == "gaussian":
            backend = GaussianPEBBackend(
                config,
                effective_time_s=float(params.get("effective_time_s", 1.3)))
        elif backend_name == "surrogate":
            checkpoint = params.get("checkpoint")
            if not checkpoint:
                raise ValueError(
                    "backend 'surrogate' requires a 'checkpoint' path")
            from repro.serve.registry import load_checkpoint

            model, _manifest = load_checkpoint(checkpoint)
            backend = DifferentiableSurrogateBackend(model, config.peb)
        else:
            raise ValueError(f"unknown backend {backend_name!r}")
        overrides = dict(params.get("opt", {}))
        overrides.setdefault("iterations", int(params.get("iterations", 8)))
        if "optimizer" in params:
            overrides.setdefault("optimizer", params["optimizer"])
        self.opc = GradientOPC(clip, config, backend,
                               GradientOPCConfig(**overrides))

    def init_state(self) -> dict:
        return self.opc.init_state()

    def step(self, state):
        return self.opc.step(state)

    def done(self, state) -> bool:
        return int(state["iteration"]) >= self.opc.opt.iterations

    def finalize(self, state):
        result, state = self.opc.finalize(state)
        payload = {
            "initial_rms_nm": result.initial_rms_nm,
            "final_rms_nm": result.final_rms_nm,
            "rms_history_nm": _json_safe(result.rms_history_nm),
            "bias_x_nm": _json_safe(result.bias_x_nm),
            "bias_y_nm": _json_safe(result.bias_y_nm),
            "cd_errors_nm": _json_safe(result.cd_errors_nm),
            "iterations": result.iterations,
            "forward_solves": result.forward_solves,
        }
        return payload, state


class CounterJob:
    """Deterministic toy stepper for queue/executor tests.

    Maintains a rolling checksum so tests can assert that an interrupted
    + resumed run took *exactly* the same path as an uninterrupted one:
    any lost or duplicated step changes the checksum.

    Params: ``iterations`` (default 10), ``fail_at`` (raise at that
    iteration, for failure-path tests).
    """

    def __init__(self, params: dict):
        self.iterations = int(params.get("iterations", 10))
        self.fail_at = params.get("fail_at")

    def init_state(self) -> dict:
        return {
            "iteration": np.int64(0),
            "checksum": np.int64(0),
        }

    def step(self, state):
        iteration = int(state["iteration"])
        if self.fail_at is not None and iteration == int(self.fail_at):
            raise RuntimeError(f"counter job failed at {iteration} as asked")
        checksum = (int(state["checksum"]) * 31 + iteration + 1) % (1 << 62)
        new_state = {
            "iteration": np.int64(iteration + 1),
            "checksum": np.int64(checksum),
        }
        progress = {"iteration": iteration + 1, "checksum": checksum}
        return new_state, progress

    def done(self, state) -> bool:
        return int(state["iteration"]) >= self.iterations

    def finalize(self, state):
        return {"iterations": int(state["iteration"]),
                "checksum": int(state["checksum"])}, state


register_job_type("opc_gradient", GradientOPCJob)
register_job_type("counter", CounterJob)
