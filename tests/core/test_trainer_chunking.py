"""Chunked predict/validation paths with sizes that do NOT divide N.

The ragged last chunk is the classic off-by-one surface: these tests pin
down output shape, ordering, the sample-weighted mean arithmetic, and
equivalence with the unchunked forward on a per-voxel loss.
"""

import numpy as np

from repro import nn
from repro.baselines import DeepCNN, DeepCNNConfig
from repro.core import TrainConfig, Trainer
from repro.tensor import Tensor

RNG = np.random.default_rng(31)


def tiny_model():
    nn.init.seed(0)
    return DeepCNN(DeepCNNConfig(width=4, num_blocks=1))


def data(n):
    inputs = RNG.random((n, 2, 8, 8))
    return inputs, 2.0 * inputs + 1.0


def make_trainer(n_train=4, n_val=7, **config_kwargs):
    x, y = data(n_train)
    vx, vy = data(n_val)
    trainer = Trainer(tiny_model(), x, y, TrainConfig(epochs=1, **config_kwargs),
                      val_inputs=vx, val_targets=vy)
    return trainer, vx, vy


class TestPredictChunking:
    def test_ragged_last_chunk_matches_full_forward(self):
        """batch_size=3 over 7 samples: chunks of 3, 3, 1."""
        trainer, vx, _ = make_trainer(n_val=7)
        full = trainer.predict(vx, batch_size=7)
        chunked = trainer.predict(vx, batch_size=3)
        assert chunked.shape == full.shape == vx.shape
        assert np.allclose(chunked, full, atol=1e-12)

    def test_chunk_of_one_matches_full_forward(self):
        trainer, vx, _ = make_trainer(n_val=5)
        full = trainer.predict(vx, batch_size=5)
        one_by_one = trainer.predict(vx, batch_size=1)
        assert np.allclose(one_by_one, full, atol=1e-12)

    def test_oversized_chunk_is_single_forward(self):
        trainer, vx, _ = make_trainer(n_val=3)
        assert np.allclose(trainer.predict(vx, batch_size=100),
                           trainer.predict(vx, batch_size=3), atol=1e-12)

    def test_row_order_preserved(self):
        """Each sample's prediction is independent of its batch peers for
        a pointwise CNN — so per-row forwards must land in input order."""
        trainer, vx, _ = make_trainer(n_val=5)
        chunked = trainer.predict(vx, batch_size=2)
        for i in range(len(vx)):
            single = trainer.predict(vx[i:i + 1], batch_size=1)[0]
            assert np.allclose(chunked[i], single, atol=1e-12), f"row {i}"


class TestValidationChunking:
    def test_weighted_mean_over_ragged_chunks(self):
        """validation_loss(batch_size=3) over 7 == sum(loss_c * n_c) / 7,
        recomputed manually from the same chunk boundaries."""
        trainer, vx, vy = make_trainer(n_val=7)
        got = trainer.validation_loss(batch_size=3)

        trainer.model.eval()
        weighted = 0.0
        from repro.tensor import no_grad
        with no_grad():
            for start in range(0, 7, 3):
                cx, cy = vx[start:start + 3], vy[start:start + 3]
                loss = trainer.loss_fn(trainer.model(Tensor(cx)), Tensor(cy))
                weighted += float(loss.data) * len(cx)
        assert got == weighted / 7

    def test_zero_batch_size_means_whole_set(self):
        trainer, _, _ = make_trainer(n_val=5)
        assert trainer.validation_loss(batch_size=0) == trainer.validation_loss(batch_size=5)

    def test_oversized_batch_matches_whole_set_bitwise(self):
        trainer, _, _ = make_trainer(n_val=5)
        assert trainer.validation_loss(batch_size=100) == trainer.validation_loss(batch_size=5)

    def test_chunked_close_to_full_on_smooth_loss(self):
        """Per-voxel terms are exact under the weighted mean; only the
        batch-global MaxSE term deviates, so the values stay close."""
        trainer, _, _ = make_trainer(n_val=7)
        full = trainer.validation_loss(batch_size=0)
        chunked = trainer.validation_loss(batch_size=3)
        assert np.isfinite(chunked)
        assert abs(chunked - full) < 0.5 * abs(full) + 1e-6

    def test_fit_with_ragged_val_chunks_runs(self):
        trainer, _, _ = make_trainer(n_val=7, val_batch_size=3)
        history = trainer.fit()
        assert len(history.val_losses) == 1
        assert np.isfinite(history.val_losses[0])
