"""TEMPO-resist baseline (Ye et al. [5], adapted to 3D PEB).

TEMPO predicts 3D aerial images as a stack of independent 2D slices
from a generator conditioned on the height level.  The adaptation here
keeps that per-depth-slice 2D structure: an encoder-decoder of
(1, k, k) convolutions — i.e. genuinely 2D receptive fields — plus a
learned per-depth embedding added at the bottleneck so each level can
specialize.  Depth levels never exchange information, which is the
architectural limitation Table II attributes to this method.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro import tensor as T
from repro.tensor import functional as F
from repro.nn.conv import Conv3d, ConvTranspose3d
from repro.nn.module import Parameter
from repro.nn import init
from .common import SurrogateBase


@dataclass(frozen=True)
class TempoResistConfig:
    width: int = 12
    #: number of 2x down/up sampling stages
    depth_levels: int = 8


class TempoResist(SurrogateBase):
    """Per-depth-slice 2D encoder-decoder with depth embeddings."""

    def __init__(self, config: TempoResistConfig | None = None):
        super().__init__()
        self.config = config if config is not None else TempoResistConfig()
        width = self.config.width
        # All kernels are (1, k, k): strictly per-slice 2D operations.
        self.enc1 = Conv3d(1, width, (1, 3, 3), padding=(0, 1, 1))
        self.down1 = Conv3d(width, 2 * width, (1, 2, 2), stride=(1, 2, 2))
        self.down2 = Conv3d(2 * width, 2 * width, (1, 2, 2), stride=(1, 2, 2))
        self.depth_embedding = Parameter(
            init.normal((self.config.depth_levels, 2 * width), std=0.1))
        self.mid = Conv3d(2 * width, 2 * width, (1, 3, 3), padding=(0, 1, 1))
        self.up1 = ConvTranspose3d(2 * width, 2 * width, (1, 2, 2), stride=(1, 2, 2))
        self.up2 = ConvTranspose3d(2 * width, width, (1, 2, 2), stride=(1, 2, 2))
        self.head = Conv3d(2 * width, 1, (1, 3, 3), padding=(0, 1, 1))

    def body(self, x):
        depth = x.shape[2]
        if depth > self.config.depth_levels:
            raise ValueError(f"model supports up to {self.config.depth_levels} depth levels, got {depth}")
        skip = F.relu(self.enc1(x))
        down = F.relu(self.down1(skip))
        down = F.relu(self.down2(down))
        embedding = self.depth_embedding[:depth]                  # (D, 2w)
        embedding = T.reshape(T.transpose(embedding), (1, -1, depth, 1, 1))
        down = down + embedding
        down = F.relu(self.mid(down))
        up = F.relu(self.up1(down))
        up = F.relu(self.up2(up))
        return self.head(T.concatenate([up, skip], axis=1))
