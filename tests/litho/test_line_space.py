"""Line/space pattern family."""

import numpy as np
import pytest

from repro.config import GridConfig
from repro.litho import generate_line_space_clip

GRID = GridConfig(size_um=1.0, nx=32, ny=32, nz=4)


class TestLineSpaceClip:
    def test_kind_tag(self):
        clip = generate_line_space_clip(0, grid=GRID)
        assert clip.kind == "lines"

    def test_deterministic(self):
        a = generate_line_space_clip(5, grid=GRID)
        b = generate_line_space_clip(5, grid=GRID)
        assert np.array_equal(a.pattern, b.pattern)

    def test_horizontal_lines_span_x(self):
        clip = generate_line_space_clip(1, grid=GRID, orientation="horizontal")
        for line in clip.contacts:
            assert line.width_nm > line.height_nm
            assert line.width_nm > 500.0

    def test_vertical_lines_span_y(self):
        clip = generate_line_space_clip(1, grid=GRID, orientation="vertical")
        for line in clip.contacts:
            assert line.height_nm > line.width_nm

    def test_invalid_orientation_raises(self):
        with pytest.raises(ValueError):
            generate_line_space_clip(0, grid=GRID, orientation="diagonal")

    def test_line_cd_in_range(self):
        clip = generate_line_space_clip(2, grid=GRID, orientation="horizontal",
                                        cd_range_nm=(50.0, 70.0))
        for line in clip.contacts:
            assert 50.0 <= line.height_nm <= 70.0

    def test_pattern_has_line_structure(self):
        """Row sums of a horizontal-line clip are strongly bimodal."""
        clip = generate_line_space_clip(3, grid=GRID, orientation="horizontal")
        row_fill = clip.pattern.mean(axis=1)
        assert row_fill.max() > 0.5
        assert row_fill.min() == 0.0

    def test_cd_measurement_across_line(self):
        """The contact CD chain measures the line width on the narrow axis."""
        from repro.config import DevelopConfig
        from repro.litho import development_arrival, measure_cd

        develop = DevelopConfig()
        clip = generate_line_space_clip(4, grid=GRID, orientation="horizontal")
        inhibitor = np.ones(GRID.shape)
        inhibitor[:, clip.pattern > 0.5] = 0.02  # idealized deprotection
        arrival = development_arrival(inhibitor, GRID, develop)
        line = clip.contacts[0]
        cd = measure_cd(arrival, line, GRID, develop, "y")
        assert abs(cd - line.height_nm) < 2.0 * GRID.dy_nm
