"""Serving must not perturb numerics: a clip served through the batcher and
the HTTP stack is bitwise identical to ``Trainer.predict`` offline.

One caveat the tests encode deliberately: BLAS picks its GEMM blocking by
matrix shape, so a forward at batch size 1 and a forward at batch size 4
can differ in the last ulp (measured ~3e-15 absolute).  Identity is
therefore asserted between *matching batch compositions* — the serving
path must add exactly nothing on top of the model's own numerics.
"""

import io
import threading
from http.client import HTTPConnection

import numpy as np
import pytest

from repro import nn
from repro.config import GridConfig
from repro.core import TrainConfig, Trainer
from repro.experiments import build_method
from repro.serve import (
    BatchPolicy, PredictServer, ServeConfig, ServedModel, load_checkpoint,
    save_checkpoint,
)

GRID = GridConfig(size_um=0.8, nx=16, ny=16, nz=2)


@pytest.fixture(scope="module", params=["DeepCNN", "SDM-PEB"])
def checkpoint(request, tmp_path_factory):
    """A saved checkpoint plus the Trainer wrapping the original model."""
    method = request.param
    nn.init.seed(0)
    model, _ = build_method(method, GRID)
    rng = np.random.default_rng(0)
    inputs = rng.random((4,) + GRID.shape)
    targets = 2.0 * inputs + rng.normal(0.0, 0.05, size=inputs.shape)
    trainer = Trainer(model, inputs, targets, TrainConfig(epochs=1, batch_size=2))
    path = tmp_path_factory.mktemp(f"det-{method}") / "model.npz"
    save_checkpoint(model, path, method=method, grid=GRID)
    clips = rng.random((4,) + GRID.shape)
    return trainer, path, clips


def serve_model(path, workers=1, engine=None, **policy_kwargs) -> ServedModel:
    # workers defaults to 1 (not the env) because several tests below
    # patch in-process batcher internals; the cross-worker matrix
    # parameterizes `workers` explicitly
    loaded, manifest = load_checkpoint(path)
    return ServedModel(loaded, manifest, BatchPolicy(**policy_kwargs),
                       workers=workers, engine=engine)


class TestBatchedVsSingle:
    def test_full_batch_bitwise_identical_to_trainer_predict(self, checkpoint):
        trainer, path, clips = checkpoint
        expected = trainer.predict(clips, batch_size=len(clips))
        served = serve_model(path)
        got = served._predict_batch(clips)
        assert np.array_equal(got, expected)
        served.batcher.close()

    def test_coalesced_batch_bitwise_identical(self, checkpoint):
        """Force a known batch split (1 then 3) through the real batcher and
        compare each against Trainer.predict at the matching batch size."""
        trainer, path, clips = checkpoint
        served = serve_model(path, max_batch_size=len(clips), max_wait_ms=500.0,
                             cache_entries=0)
        gate = threading.Event()
        started = threading.Event()
        inner = served.batcher._predict_fn

        def gated(batch):
            started.set()
            assert gate.wait(30.0)
            return inner(batch)

        served.batcher._predict_fn = gated
        results = [None] * len(clips)

        def run(index, payload):
            results[index] = served.batcher.submit(payload)

        threads = [threading.Thread(target=run, args=(0, clips[0]), daemon=True)]
        threads[0].start()
        assert started.wait(10.0)          # worker holds clips[0] alone
        for i in range(1, len(clips)):
            thread = threading.Thread(target=run, args=(i, clips[i]), daemon=True)
            thread.start()
            threads.append(thread)
        deadline = 500
        while served.batcher.queue_depth() < len(clips) - 1 and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert served.batcher.queue_depth() == len(clips) - 1
        gate.set()                          # release: batch [clip0], then [1..3]
        for thread in threads:
            thread.join(30.0)
        assert served.batcher.stats()["batches_run"] == 2
        expected_head = trainer.predict(clips[:1], batch_size=1)
        expected_tail = trainer.predict(clips[1:], batch_size=len(clips) - 1)
        assert np.array_equal(np.stack([results[0]]), expected_head)
        assert np.array_equal(np.stack(results[1:]), expected_tail)
        served.batcher.close()

    def test_single_requests_bitwise_identical_to_trainer_predict(self, checkpoint):
        trainer, path, clips = checkpoint
        expected = trainer.predict(clips, batch_size=1)
        served = serve_model(path, max_batch_size=1, max_wait_ms=0.0, cache_entries=0)
        singles = np.stack([served.batcher.submit(clip) for clip in clips])
        assert np.array_equal(singles, expected)
        served.batcher.close()


class TestObservationOnly:
    def test_monitors_and_tracing_do_not_perturb_predictions(
            self, checkpoint, tmp_path_factory):
        """Health monitors + tracing enabled must serve bitwise-identical
        predictions: everything in repro.obs only ever *reads* the batch."""
        from repro.obs import (
            HealthConfig, disable_tracing, enable_tracing, reset_metrics,
        )

        trainer, path, clips = checkpoint
        expected = trainer.predict(clips, batch_size=1)
        trace_path = tmp_path_factory.mktemp("obs-det") / "trace.jsonl"
        enable_tracing(trace_path)
        try:
            loaded, manifest = load_checkpoint(path)
            served = ServedModel(
                loaded, manifest,
                BatchPolicy(max_batch_size=1, max_wait_ms=0.0, cache_entries=0),
                health=HealthConfig(shadow_every=2, shadow_time_step_s=30.0))
            got = np.stack([served.batcher.submit(clip) for clip in clips])
            served.close()
        finally:
            disable_tracing()
            reset_metrics()
        assert np.array_equal(got, expected)
        # and the monitors actually ran: the trace shows health spans
        names = {line.split('"name":"')[1].split('"')[0]
                 for line in trace_path.read_text().splitlines() if line}
        assert "serve.health" in names


class TestCrossWorkerMatrix:
    """Bitwise identity across the full backend matrix.

    workers ∈ {1, 2, 4} × engine ∈ {tape, plan} × tracing on/off must
    all serve the same bytes: the process pool, the shared-memory
    weight views, the shard router and the per-worker plan caches are
    transport, never arithmetic.  Batch-1 policy pins the composition
    so the BLAS shape caveat (module docstring) cannot blur the
    comparison.
    """

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("engine", ["tape", "plan"])
    @pytest.mark.parametrize("tracing", [False, True])
    def test_bitwise_identical_across_backends(self, checkpoint, workers,
                                               engine, tracing,
                                               tmp_path_factory):
        from repro.obs import disable_tracing, enable_tracing

        trainer, path, clips = checkpoint
        expected = trainer.predict(clips, batch_size=1)
        if tracing:
            trace_path = (tmp_path_factory.mktemp("matrix-trace")
                          / f"w{workers}-{engine}.jsonl")
            enable_tracing(trace_path)
        try:
            served = serve_model(path, workers=workers, engine=engine,
                                 max_batch_size=1, max_wait_ms=0.0,
                                 cache_entries=0)
            assert served.workers == workers
            assert (served.pool is not None) == (workers > 1)
            # twice: the second pass must replay any compiled plan and
            # hit the same bytes again
            for _ in range(2):
                got = np.stack([served.batcher.submit(clip, timeout_s=60)
                                for clip in clips])
                assert np.array_equal(got, expected)
            served.close()
        finally:
            if tracing:
                disable_tracing()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_mixed_compositions_through_shard_router(self, checkpoint, workers):
        """Concurrent submits coalesce into per-shard mixed-size batches;
        each batch must equal Trainer.predict at the matching size."""
        trainer, path, clips = checkpoint
        rng = np.random.default_rng(7)
        many = rng.random((8,) + clips.shape[1:])
        served = serve_model(path, workers=workers, max_batch_size=len(many),
                             max_wait_ms=500.0, cache_entries=0)
        router = served.batcher
        groups = {}
        for index, clip in enumerate(many):
            shard, _ = router.shard_of(clip)
            groups.setdefault(shard, []).append(index)
        # gate every shard's predict so each releases exactly one batch
        # holding that shard's full group — a known mixed composition
        gate = threading.Event()
        started = []
        for shard_batcher in router.shards:
            inner = shard_batcher._predict_fn
            begun = threading.Event()
            started.append(begun)

            def gated(batch, _inner=inner, _begun=begun):
                _begun.set()
                assert gate.wait(60.0)
                return _inner(batch)

            shard_batcher._predict_fn = gated
        results = [None] * len(many)

        def run(index):
            results[index] = router.submit(many[index], timeout_s=120.0)

        threads = [threading.Thread(target=run, args=(i,), daemon=True)
                   for i in range(len(many))]
        # start each group's head first and wait until its shard's
        # worker thread holds it alone behind the gate, so the tails
        # below coalesce into exactly one follow-up batch per shard
        for indices in groups.values():
            threads[indices[0]].start()
        for shard in groups:
            assert started[shard].wait(60.0)
        for indices in groups.values():
            for index in indices[1:]:
                threads[index].start()
        deadline = 1000
        queued_target = len(many) - len(groups)
        while router.queue_depth() < queued_target and deadline:
            threading.Event().wait(0.01)
            deadline -= 1
        assert router.queue_depth() == queued_target
        gate.set()
        for thread in threads:
            thread.join(120.0)
        for shard, indices in groups.items():
            head, tail = indices[0], indices[1:]
            want_head = trainer.predict(many[[head]], batch_size=1)
            assert np.array_equal(results[head], want_head[0])
            if tail:
                want_tail = trainer.predict(many[tail], batch_size=len(tail))
                got_tail = np.stack([results[i] for i in tail])
                assert np.array_equal(got_tail, want_tail)
        served.close()


class TestTelemetryObservationOnly:
    """The telemetry stack (sampler thread, SLO evaluation, flight
    recorder span tap) must serve bitwise-identical bytes when enabled:
    it reads metric snapshots and span payloads, never the batch."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("engine", ["tape", "plan"])
    def test_bitwise_identical_with_telemetry_on_vs_off(
            self, checkpoint, workers, engine, tmp_path_factory):
        import json

        trainer, path, clips = checkpoint
        expected = trainer.predict(clips, batch_size=1)
        for telemetry in (False, True):
            config = ServeConfig(
                port=0, telemetry=telemetry, flight=telemetry,
                # aggressive cadence + tiny SLO windows so the sampler
                # and burn evaluation genuinely interleave with serving
                telemetry_interval_s=0.05,
                slo_fast_window_s=0.1, slo_slow_window_s=1.0,
                flight_dump_dir=str(tmp_path_factory.mktemp("fdump")))
            served = serve_model(path, workers=workers, engine=engine,
                                 max_batch_size=1, max_wait_ms=0.0,
                                 cache_entries=0)
            server = PredictServer(served, config).start()
            try:
                host, port = server.address
                connection = HTTPConnection(host, port, timeout=60)
                for clip, want in zip(clips, expected):
                    buffer = io.BytesIO()
                    np.savez(buffer, acid=clip)
                    connection.request(
                        "POST", "/v1/predict", body=buffer.getvalue(),
                        headers={"Content-Type":
                                 "application/octet-stream"})
                    response = connection.getresponse()
                    assert response.status == 200
                    with np.load(io.BytesIO(response.read())) as archive:
                        got = archive["prediction"]
                    assert np.array_equal(got, want)
                    if telemetry:
                        # exercise SLO evaluation concurrently with serving
                        connection.request("GET", "/healthz")
                        health = json.loads(
                            connection.getresponse().read())
                        assert health["alerts"]["state"] in (
                            "ok", "pending", "firing")
                connection.close()
                if telemetry:
                    assert server.sampler.db.samples >= 1
                    assert server.flight.stats()["requests"] >= len(clips)
            finally:
                server.shutdown()


class TestEndToEndHTTP:
    def test_http_npz_prediction_bitwise_identical(self, checkpoint):
        trainer, path, clips = checkpoint
        # a sequential client yields batches of one; compare at batch size 1
        expected = trainer.predict(clips, batch_size=1)
        served = serve_model(path, max_wait_ms=2.0)
        server = PredictServer(served, ServeConfig(port=0)).start()
        try:
            host, port = server.address
            connection = HTTPConnection(host, port, timeout=60)
            for clip, want in zip(clips, expected):
                buffer = io.BytesIO()
                np.savez(buffer, acid=clip)
                connection.request("POST", "/v1/predict", body=buffer.getvalue(),
                                   headers={"Content-Type": "application/octet-stream"})
                response = connection.getresponse()
                assert response.status == 200
                with np.load(io.BytesIO(response.read())) as archive:
                    got = archive["prediction"]
                # npz transport is lossless: bitwise equality end to end
                assert np.array_equal(got, want)
            connection.close()
        finally:
            server.shutdown()
