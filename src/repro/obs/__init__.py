"""Observability layer: metrics, span tracing, and profiling hooks.

``repro.obs`` is strictly *observation-only* infrastructure.  Nothing in
this package touches a numpy array that belongs to the simulation or the
training loop; enabling or disabling it cannot change a single bit of
any numerical output (the determinism matrix in ``tests/runtime/``
asserts exactly that).  It is disabled by default and its disabled fast
path is a single boolean check, so instrumented hot loops pay
effectively nothing when nobody is watching.

Three sub-modules:

* :mod:`repro.obs.metrics` — process-local counters, timers and
  histograms in a named registry (``counter("pool.tasks").inc()``);
* :mod:`repro.obs.trace` — nested span tracing with a JSONL event sink,
  switched on by ``REPRO_TRACE=path`` or the CLI ``--trace`` flag;
* :mod:`repro.obs.profile` — wall-time/tracemalloc profiling contexts
  and propagator-cache hit-rate collection.

``python -m repro.cli report <trace.jsonl>`` summarizes a recorded
trace into a per-span table; see ``docs/observability.md`` for the
event schema and the span/metric catalog.
"""

from .metrics import (
    Counter, Timer, Histogram, MetricsRegistry,
    counter, timer, histogram, metrics_snapshot, reset_metrics,
)
from .trace import (
    span, trace_event, set_span_attrs, trace_enabled, enable_tracing,
    disable_tracing, current_trace_path, configure_from_env,
)
from .profile import profiled, propagator_cache_stats

__all__ = [
    "Counter", "Timer", "Histogram", "MetricsRegistry",
    "counter", "timer", "histogram", "metrics_snapshot", "reset_metrics",
    "span", "trace_event", "set_span_attrs", "trace_enabled",
    "enable_tracing", "disable_tracing", "current_trace_path",
    "configure_from_env",
    "profiled", "propagator_cache_stats",
]
