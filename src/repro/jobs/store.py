"""Crash-safe persistent job store.

One directory per job under ``<root>/<job_id>/`` holding:

* ``job.json`` — the :class:`JobRecord`: type, params, lifecycle state,
  attempt count, latest progress, result or error;
* ``checkpoint.npz`` — the job's optimizer state (a flat dict of numpy
  arrays), written between execution chunks.

Every write goes through write-temp-then-``os.replace`` so a crash at
any instant leaves either the old file or the new file, never a torn
one.  ``recover()`` flips ``running`` jobs back to ``queued`` on boot:
a job found *running* when no executor is alive was interrupted, and
its checkpoint is the resume point.

The store is the single source of truth the HTTP API, the executor and
the CLI all read through; all mutation happens under one lock.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.runtime.sync import make_lock

JOB_STATES = ("queued", "running", "completed", "failed", "cancelled")

#: states a job can never leave
TERMINAL_STATES = ("completed", "failed", "cancelled")


class JobError(Exception):
    """A job-store operation failed."""


class JobNotFound(JobError):
    """No job with the requested id exists."""


@dataclass
class JobRecord:
    """One job's durable metadata (everything except the checkpoint)."""

    id: str
    type: str
    params: dict
    state: str = "queued"
    created_s: float = 0.0
    updated_s: float = 0.0
    attempts: int = 0
    progress: dict = field(default_factory=dict)
    result: dict | None = None
    error: str | None = None
    cancel_requested: bool = False
    #: trace identity of the submitting request
    #: ({"trace_id", "request_id", "parent_uid"}); the executor adopts it
    #: so the whole job reads back as one tree under the submit request
    trace: dict | None = None

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in payload.items() if k in known})


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


class JobStore:
    """Directory-backed job store; every method is thread-safe."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = make_lock("jobs.store")

    # -- paths ----------------------------------------------------------
    def _job_dir(self, job_id: str) -> Path:
        return self.root / job_id

    def _record_path(self, job_id: str) -> Path:
        return self._job_dir(job_id) / "job.json"

    def _checkpoint_path(self, job_id: str) -> Path:
        return self._job_dir(job_id) / "checkpoint.npz"

    # -- record IO (callers hold the lock) ------------------------------
    def _read(self, job_id: str) -> JobRecord:
        path = self._record_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return JobRecord.from_dict(json.load(handle))
        except FileNotFoundError:
            raise JobNotFound(f"no job {job_id!r}") from None
        except json.JSONDecodeError as error:
            raise JobError(f"corrupt job record {path}: {error}") from error

    def _write(self, record: JobRecord) -> None:
        record.updated_s = time.time()
        payload = json.dumps(record.to_dict(), indent=2, sort_keys=True)
        _atomic_write_bytes(self._record_path(record.id),
                            payload.encode("utf-8"))

    # -- public API -----------------------------------------------------
    def submit(self, job_type: str, params: dict,
               trace: dict | None = None) -> JobRecord:
        """Create a new queued job and persist it."""
        job_id = uuid.uuid4().hex[:12]
        record = JobRecord(id=job_id, type=job_type, params=dict(params),
                           created_s=time.time(), trace=trace)
        with self._lock:
            self._job_dir(job_id).mkdir(parents=True, exist_ok=True)
            self._write(record)
        return record

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._read(job_id)

    def list(self) -> list[JobRecord]:
        """All jobs, oldest first."""
        with self._lock:
            records = []
            if not self.root.exists():
                return records
            for entry in sorted(self.root.iterdir()):
                if not (entry / "job.json").exists():
                    continue
                try:
                    records.append(self._read(entry.name))
                except JobError:
                    continue
            records.sort(key=lambda r: (r.created_s, r.id))
            return records

    def update(self, record: JobRecord) -> JobRecord:
        with self._lock:
            if not self._record_path(record.id).exists():
                raise JobNotFound(f"no job {record.id!r}")
            self._write(record)
        return record

    def transition(self, job_id: str, state: str, **updates) -> JobRecord:
        """Atomically read-modify-write a job's state plus extra fields."""
        if state not in JOB_STATES:
            raise ValueError(f"unknown job state {state!r}")
        with self._lock:
            record = self._read(job_id)
            record.state = state
            for key, value in updates.items():
                if not hasattr(record, key):
                    raise AttributeError(f"JobRecord has no field {key!r}")
                setattr(record, key, value)
            self._write(record)
            return record

    def request_cancel(self, job_id: str) -> JobRecord:
        """Flag a job for cancellation.

        Queued jobs are cancelled immediately; running jobs are
        cancelled cooperatively by the executor at the next chunk
        boundary.  Terminal jobs are returned unchanged.
        """
        with self._lock:
            record = self._read(job_id)
            if record.state in TERMINAL_STATES:
                return record
            record.cancel_requested = True
            if record.state == "queued":
                record.state = "cancelled"
            self._write(record)
            return record

    # -- checkpoints ----------------------------------------------------
    def save_checkpoint(self, job_id: str, state: dict) -> None:
        """Persist the job's optimizer state atomically."""
        import io

        buffer = io.BytesIO()
        np.savez(buffer, **state)
        with self._lock:
            if not self._job_dir(job_id).exists():
                raise JobNotFound(f"no job {job_id!r}")
            _atomic_write_bytes(self._checkpoint_path(job_id),
                                buffer.getvalue())

    def load_checkpoint(self, job_id: str) -> dict | None:
        """The job's last checkpoint, or None if none was written."""
        with self._lock:
            path = self._checkpoint_path(job_id)
            if not path.exists():
                return None
            with np.load(path) as archive:
                return {key: archive[key] for key in archive.files}

    def checkpoint_age_s(self, job_id: str) -> float | None:
        """Seconds since the job's checkpoint was written, or None."""
        with self._lock:
            path = self._checkpoint_path(job_id)
            try:
                return max(0.0, time.time() - path.stat().st_mtime)
            except FileNotFoundError:
                return None

    # -- boot / health --------------------------------------------------
    def recover(self) -> int:
        """Requeue jobs found ``running`` with no executor alive.

        Called once on boot, before the executor starts.  Returns the
        number of jobs requeued; each resumes from its checkpoint.
        """
        requeued = 0
        with self._lock:
            for entry in sorted(self.root.iterdir()):
                if not (entry / "job.json").exists():
                    continue
                try:
                    record = self._read(entry.name)
                except JobError:
                    continue
                if record.state != "running":
                    continue
                record.state = "cancelled" if record.cancel_requested \
                    else "queued"
                self._write(record)
                requeued += 1
        return requeued

    def stats(self) -> dict:
        """State counts plus the oldest live checkpoint age, for /healthz."""
        counts = {state: 0 for state in JOB_STATES}
        oldest_age = None
        for record in self.list():
            counts[record.state] = counts.get(record.state, 0) + 1
            if record.state in ("queued", "running"):
                age = self.checkpoint_age_s(record.id)
                if age is not None and (oldest_age is None or age > oldest_age):
                    oldest_age = age
        return {
            "counts": counts,
            "total": sum(counts.values()),
            "oldest_checkpoint_age_s": oldest_age,
        }
